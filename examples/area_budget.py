#!/usr/bin/env python
"""Area-constrained instruction selection (the paper's Section 9
future-work item, implemented).

Sweeps a silicon budget (in 32-bit-MAC-equivalent area units) and prints
the speedup the exact knapsack selection achieves within it — the
area/performance Pareto front of the custom-instruction design space.

Run:  python examples/area_budget.py [workload]
"""

import sys

from repro import Constraints, prepare_application, select_area_constrained
from repro.hwmodel import CostModel, cut_area

MODEL = CostModel()
CONS = Constraints(nin=4, nout=2, ninstr=16)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcm-decode"
    app = prepare_application(name, n=128)
    print(f"{name}: speedup vs AFU area budget (Nin=4, Nout=2)\n")
    print(f"{'budget (MAC)':>12s} {'area used':>10s} {'#AFUs':>6s} "
          f"{'speedup':>8s}")
    for budget in (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        result = select_area_constrained(app.dfgs, CONS, budget, MODEL)
        used = sum(cut_area(c.dfg, c.nodes, MODEL) for c in result.cuts)
        print(f"{budget:12.2f} {used:10.2f} {len(result.cuts):6d} "
              f"{result.speedup:8.3f}")
    print()
    print("Most of the speedup is available within ~2 MACs of area —")
    print("the paper's Section 8 observation, now as a selection")
    print("constraint rather than an after-the-fact report.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design-space exploration: speedup vs. register-file port budget.

Sweeps the (Nin, Nout) grid for every registered workload and prints a
Fig. 11-style matrix comparing the exact Iterative algorithm against the
Clubbing and MaxMISO baselines — the table an SoC architect would use to
decide how many ports the AFU interface needs.

Run:  python examples/design_space_exploration.py [workload ...]
"""

import sys

from repro import (
    Constraints,
    SearchLimits,
    prepare_application,
    select_clubbing,
    select_iterative,
    select_maxmiso,
)
from repro.workloads import WORKLOADS

GRID = [(2, 1), (3, 1), (4, 2), (6, 3)]
LIMITS = SearchLimits(max_considered=400_000)
NINSTR = 8


def explore(name: str) -> None:
    app = prepare_application(name, n=128)
    print(f"== {name} "
          f"(hot block {app.hot_dfg.n} nodes) ==")
    print(f"  {'Nin':>3s} {'Nout':>4s} | {'Iterative':>9s} "
          f"{'Clubbing':>8s} {'MaxMISO':>8s}")
    for nin, nout in GRID:
        cons = Constraints(nin=nin, nout=nout, ninstr=NINSTR)
        iterative = select_iterative(app.dfgs, cons, limits=LIMITS)
        clubbing = select_clubbing(app.dfgs, cons)
        maxmiso = select_maxmiso(app.dfgs, cons)
        print(f"  {nin:3d} {nout:4d} | {iterative.speedup:9.3f} "
              f"{clubbing.speedup:8.3f} {maxmiso.speedup:8.3f}")
    print()


def main() -> None:
    names = sys.argv[1:] or sorted(WORKLOADS)
    for name in names:
        explore(name)


if __name__ == "__main__":
    main()

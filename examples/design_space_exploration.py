#!/usr/bin/env python
"""Design-space exploration: speedup vs. register-file port budget.

Sweeps the (Nin, Nout) grid for the requested workloads through the
batch exploration engine (``repro.explore``) and prints a Fig. 11-style
matrix comparing the exact Iterative algorithm against the Clubbing and
MaxMISO baselines — the table an SoC architect would use to decide how
many ports the AFU interface needs.

Each workload is compiled and profiled once, and the per-block
identification searches are memoized across the whole grid, so this
runs an order of magnitude faster than invoking the CLI per point (see
``benchmarks/bench_sweep.py`` for the measured trajectory).  The same
sweep is available as ``repro sweep`` with JSON/CSV artifacts.

Run:  python examples/design_space_exploration.py [workload ...]
"""

import sys

from repro.explore import SweepSpec, format_table, run_sweep
from repro.workloads import WORKLOADS

GRID = ((2, 1), (3, 1), (4, 2), (6, 3))
NINSTR = 8


def main() -> None:
    names = sys.argv[1:] or sorted(WORKLOADS)
    spec = SweepSpec(
        workloads=tuple(names),
        ports=GRID,
        ninstrs=(NINSTR,),
        algorithms=("iterative", "clubbing", "maxmiso"),
        limit=400_000,
        n=128,
    )
    outcome = run_sweep(spec)
    print(format_table(outcome.rows))
    print(f"\n{len(outcome.rows)} grid points in {outcome.sweep_s:.2f}s "
          f"({outcome.points_per_second:.1f} points/s, "
          f"{outcome.cache_stats['hits']} cache hits)")


if __name__ == "__main__":
    main()

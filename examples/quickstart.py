#!/usr/bin/env python
"""Quickstart: identify custom instructions for a DSP kernel.

Compiles the 8-tap FIR workload, profiles it, runs the paper's exact
identification under a 4-read/2-write port budget, and prints the chosen
instruction-set extensions together with the estimated speedup.

Run:  python examples/quickstart.py
"""

from repro import Constraints, prepare_application, select_iterative

def main() -> None:
    # 1. Compile MiniC -> IR, optimise (incl. if-conversion), execute to
    #    gather basic-block frequencies, and build weighted DFGs.
    app = prepare_application("fir", n=256)
    print(app.describe())
    print()

    # 2. Identify up to 8 custom instructions under microarchitectural
    #    constraints: at most 4 register-file reads and 2 writes each.
    constraints = Constraints(nin=4, nout=2, ninstr=8)
    result = select_iterative(app.dfgs, constraints)

    # 3. Inspect the outcome.
    print(result.describe())
    print()
    for k, cut in enumerate(result.cuts):
        print(f"instruction {k} covers: {', '.join(cut.node_labels())}")


if __name__ == "__main__":
    main()

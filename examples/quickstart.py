#!/usr/bin/env python
"""Quickstart: identify, execute and measure custom instructions.

Compiles the 8-tap FIR workload, profiles it, runs the paper's exact
identification under a 4-read/2-write port budget, then *executes* the
selected instruction-set extensions: the program is rewritten so each
chosen subgraph issues as one fused instruction, run next to the
unmodified baseline, checked bit-for-bit, and the measured cycle-count
speedup is printed next to the static estimate.

Run:  python examples/quickstart.py
"""

from repro import (
    Constraints,
    measure_selection,
    prepare_application,
    select_iterative,
)

def main() -> None:
    # 1. Compile MiniC -> IR, optimise (incl. if-conversion), execute to
    #    gather basic-block frequencies, and build weighted DFGs.
    app = prepare_application("fir", n=256)
    print(app.describe())
    print()

    # 2. Identify up to 8 custom instructions under microarchitectural
    #    constraints: at most 4 register-file reads and 2 writes each.
    constraints = Constraints(nin=4, nout=2, ninstr=8)
    result = select_iterative(app.dfgs, constraints)

    # 3. Inspect the outcome.
    print(result.describe())
    print()
    for k, cut in enumerate(result.cuts):
        print(f"instruction {k} covers: {', '.join(cut.node_labels())}")
    print()

    # 4. Execute the extensions: rewrite the program, run both versions
    #    on the same input, and measure the end-to-end speedup.
    measured = measure_selection(app, result, n=256)
    assert measured.identical, "rewritten program must be bit-identical"
    print(f"measured: {measured.baseline_cycles:.0f} -> "
          f"{measured.ise_cycles:.0f} cycles "
          f"({measured.speedup:.3f}x speedup, "
          f"{measured.num_instructions} fused instruction(s), "
          f"bit-exact outputs)")
    print(f"estimated by the static model: {result.speedup:.3f}x")


if __name__ == "__main__":
    main()

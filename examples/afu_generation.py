#!/usr/bin/env python
"""AFU generation: from C-level kernel to Verilog custom instructions.

Selects instruction-set extensions for the GSM lattice filter, builds the
combinational datapath of each, validates it functionally against random
stimulus, writes synthesisable Verilog to ``examples/out/``, and finally
*executes* the selection to report the measured end-to-end speedup.

Run:  python examples/afu_generation.py
"""

import random
from pathlib import Path

from repro import (
    Constraints,
    measure_selection,
    prepare_application,
    select_iterative,
)
from repro.afu import build_datapath, emit_verilog

OUT_DIR = Path(__file__).parent / "out"


def main() -> None:
    app = prepare_application("gsm", n=128)
    constraints = Constraints(nin=4, nout=2, ninstr=4)
    result = select_iterative(app.dfgs, constraints)
    print(result.describe())
    print()

    OUT_DIR.mkdir(exist_ok=True)
    rng = random.Random(0)
    for k, cut in enumerate(result.cuts):
        afu = build_datapath(cut, name=f"gsm_ise{k}")
        print(afu.describe())

        # Smoke-test the functional model on random port stimulus.
        for _ in range(100):
            inputs = {p: rng.randint(-(2 ** 31), 2 ** 31 - 1)
                      for p in afu.input_ports}
            outputs = afu.evaluate(inputs)
            assert set(outputs) == set(afu.output_ports)

        path = OUT_DIR / f"{afu.name}.v"
        path.write_text(emit_verilog(afu))
        print(f"  wrote {path}")
    print()
    print(f"total datapath area: "
          f"{sum(build_datapath(c).area_mac for c in result.cuts):.2f} "
          f"MAC-equivalents")

    # Close the loop: run the program with the AFUs fused in and report
    # the measured (not just estimated) speedup.
    measured = measure_selection(app, result, n=128)
    assert measured.identical, "rewritten program must be bit-identical"
    print(f"measured speedup: {measured.baseline_cycles:.0f} -> "
          f"{measured.ise_cycles:.0f} cycles = {measured.speedup:.3f}x "
          f"(estimated {result.speedup:.3f}x, bit-exact outputs)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Search-space scaling (a miniature of the paper's Fig. 8).

Runs the exact identification with ``Nout = 2`` and unbounded ``Nin`` on
every basic block of every workload and prints cuts-considered vs. block
size, annotated with N^2/N^3 reference columns.

Run:  python examples/search_space.py
"""

from repro import Constraints, SearchLimits, find_best_cut, \
    prepare_application
from repro.workloads import WORKLOADS

CONS = Constraints(nin=10_000, nout=2)
LIMITS = SearchLimits(max_considered=2_000_000)


def main() -> None:
    points = []
    for name in sorted(WORKLOADS):
        app = prepare_application(name, n=32)
        for dfg in app.dfgs:
            if dfg.n < 2:
                continue
            result = find_best_cut(dfg, CONS, limits=LIMITS)
            points.append((dfg.n, result.stats.cuts_considered,
                           result.complete, dfg.name))

    points.sort()
    print(f"{'N':>4s} {'cuts':>10s} {'N^2':>8s} {'N^3':>10s}  block")
    for n, cuts, complete, label in points:
        flag = "" if complete else " (capped)"
        print(f"{n:4d} {cuts:10d} {n**2:8d} {n**3:10d}  {label}{flag}")

    print()
    print("The counts sit in the polynomial band between N^2 and N^4 —")
    print("the paper's Fig. 8 observation — despite the worst case being")
    print("exponential.  Tighten Nout to 1 and the counts drop further.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's Fig. 3 walk-through on the real adpcm-decode benchmark.

Shows how the identified instruction changes with the port constraints:

* ``Nin=2, Nout=1`` — the M1 cluster (approximate 16x4-bit multiply);
* ``Nin=3, Nout=1`` — M2: M1 plus accumulation and saturation;
* ``Nin=4, Nout=2`` — a *disconnected* M2+M3-style instruction;

and why MaxMISO misses M1 at two input ports (it only sees the enclosing
3-input MaxMISO).

Run:  python examples/adpcm_ise.py
"""

from repro import (
    Constraints,
    SearchLimits,
    find_best_cut,
    prepare_application,
    select_maxmiso,
)

LIMITS = SearchLimits(max_considered=1_000_000)


def main() -> None:
    app = prepare_application("adpcm-decode", n=256)
    hot = app.hot_dfg
    print(f"hot block: {hot.name} with {hot.n} dataflow nodes "
          f"(executed {hot.weight:g} times)")
    print()

    for nin, nout, label in [(2, 1, "M1"), (3, 1, "M2"), (4, 2, "M2+M3")]:
        result = find_best_cut(hot, Constraints(nin=nin, nout=nout),
                               limits=LIMITS)
        cut = result.cut
        shape = "connected" if cut.is_connected() else "DISCONNECTED"
        print(f"[{label}] Nin={nin} Nout={nout}: {cut.size} ops, {shape}, "
              f"saves {cut.merit:g} cycles")
        for node_label in cut.node_labels():
            print(f"        {node_label}")
        print()

    # The MaxMISO failure mode at two input ports (Section 8 of the paper).
    narrow = select_maxmiso([hot], Constraints(nin=2, nout=1, ninstr=1))
    exact = find_best_cut(hot, Constraints(nin=2, nout=1), limits=LIMITS)
    print("MaxMISO at Nin=2 finds merit "
          f"{narrow.total_merit:g}; the exact search finds "
          f"{exact.cut.merit:g} — M1 is invisible to MaxMISO because it "
          "is buried inside the 3-input MaxMISO M2.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Section 9 extension: loop unrolling before identification.

The paper's conclusions propose feeding the identifier larger basic blocks
obtained "by applying instruction-level parallelism techniques (e.g.
unrolling)".  This example unrolls the GSM lattice filter's 8-stage inner
loop at increasing factors and shows the effect on the hot block size and
on the speedup of the selected extensions.

Run:  python examples/unrolling_extension.py
"""

from repro import Constraints, SearchLimits, prepare_application, \
    select_iterative

CONS = Constraints(nin=4, nout=2, ninstr=8)
LIMITS = SearchLimits(max_considered=500_000)


def main() -> None:
    print(f"{'unroll':>6s} {'hot-block nodes':>16s} {'speedup':>8s} "
          f"{'complete':>9s}")
    for factor in (None, 2, 4, 8):
        app = prepare_application("gsm", n=128, unroll=factor)
        result = select_iterative(app.dfgs, CONS, limits=LIMITS)
        print(f"{factor or 1:6d} {app.hot_dfg.n:16d} "
              f"{result.speedup:8.3f} {str(result.complete):>9s}")
    print()
    print("Unrolling exposes cross-iteration parallelism: the lattice")
    print("stages of consecutive samples fuse into wider AFUs, at the")
    print("price of a larger search space (watch 'complete' flip when")
    print("the budget caps the exact search).")


if __name__ == "__main__":
    main()

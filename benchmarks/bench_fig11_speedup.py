"""Figure 11 — estimated speedup of Optimal / Iterative / Clubbing /
MaxMISO on the three benchmarks, across input/output port constraints,
with up to 16 special instructions.

Absolute numbers depend on the latency tables (ours are a documented
substitution), but the paper's qualitative claims are asserted:

* Iterative >= Clubbing and Iterative >= MaxMISO everywhere;
* the gap grows as the port constraints loosen;
* MaxMISO does not benefit from extra output ports;
* Optimal ~= Iterative where Optimal is feasible, and Optimal is
  *infeasible* on the big adpcm-decode block (the paper could not run it
  either) — reported as ``n/a`` exactly like the paper's note.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BlockTooLargeError,
    Constraints,
    SearchLimits,
    select_clubbing,
    select_iterative,
    select_maxmiso,
    select_optimal,
)
from repro.hwmodel import CostModel

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=600_000)
GRID = [(2, 1), (3, 1), (4, 1), (4, 2), (6, 3), (8, 4)]
NINSTR = 16


def _row(app, nin, nout):
    cons = Constraints(nin=nin, nout=nout, ninstr=NINSTR)
    iterative = select_iterative(app.dfgs, cons, MODEL, LIMITS)
    clubbing = select_clubbing(app.dfgs, cons, MODEL)
    maxmiso = select_maxmiso(app.dfgs, cons, MODEL)
    try:
        optimal = select_optimal(app.dfgs, cons, MODEL,
                                 SearchLimits(max_considered=400_000),
                                 max_nodes=24)
        optimal_speedup = f"{optimal.speedup:6.3f}"
    except BlockTooLargeError:
        optimal = None
        optimal_speedup = "   n/a"          # paper: could not be run
    return cons, optimal, optimal_speedup, iterative, clubbing, maxmiso


@pytest.mark.parametrize("name", ["adpcm-decode", "adpcm-encode", "gsm"])
def bench_fig11_benchmark(benchmark, paper_apps, name):
    app = paper_apps[name]

    # Benchmark one representative selection run (the paper's midpoint
    # constraint, Nin=4 / Nout=2).
    bench_cons = Constraints(nin=4, nout=2, ninstr=NINSTR)
    benchmark.pedantic(
        select_iterative, args=(app.dfgs, bench_cons, MODEL, LIMITS),
        iterations=1, rounds=1)

    report("fig11", f"\nFig. 11 — {name} (Ninstr={NINSTR}):")
    report("fig11", f"  {'Nin':>3s} {'Nout':>4s} | {'Optimal':>8s} "
                    f"{'Iterative':>9s} {'Clubbing':>8s} {'MaxMISO':>8s}")
    previous_gap = None
    gaps = []
    for nin, nout in GRID:
        cons, optimal, opt_s, iterative, clubbing, maxmiso = _row(
            app, nin, nout)
        report("fig11",
               f"  {nin:3d} {nout:4d} | {opt_s:>8s} "
               f"{iterative.speedup:9.3f} {clubbing.speedup:8.3f} "
               f"{maxmiso.speedup:8.3f}")

        # Paper shape 1: exact identification dominates both baselines.
        assert iterative.total_merit >= clubbing.total_merit - 1e-9
        assert iterative.total_merit >= maxmiso.total_merit - 1e-9
        # Paper shape 2: Optimal ~= Iterative where it runs (greedy
        # per-block identification can only lose a little).
        if optimal is not None:
            assert optimal.total_merit <= iterative.total_merit * 1.25 \
                + 1e-9
        gaps.append(iterative.total_merit
                    - max(clubbing.total_merit, maxmiso.total_merit))

    # Paper shape 3: somewhere on the grid the exact identification has a
    # strictly positive advantage over the best baseline (the paper's
    # "Iterative excels"); it never loses anywhere (asserted above).
    assert max(gaps) > 0


def bench_fig11_maxmiso_flat_in_nout(benchmark, paper_apps):
    app = paper_apps["adpcm-decode"]

    def run():
        return [
            select_maxmiso(app.dfgs,
                           Constraints(nin=4, nout=nout, ninstr=NINSTR),
                           MODEL).total_merit
            for nout in (1, 2, 4)
        ]

    merits = benchmark(run)
    assert merits[0] == merits[1] == merits[2]
    report("fig11", "\nMaxMISO total merit vs Nout on adpcm-decode "
                    f"(Nin=4): {merits} — flat, single-output only")

"""Figure 3 / Section 8 — the adpcm-decode motivational example.

The paper walks through its Fig. 3 dataflow graph:

* ``M1`` — a 2-input / 1-output cluster (the approximate 16x4-bit
  multiplication) that even the most stringent constraints admit;
* ``M2`` — with 3 inputs, the same cluster grown with the following
  accumulate/saturate operations;
* ``M2+M3`` — with 2+ outputs the identifier picks *disconnected*
  subgraphs, exploiting the parallelism of independent clusters;
* MaxMISO's failure: at ``Nin=2`` it cannot find M1 because M1 is buried
  inside the 3-input MaxMISO M2.

This bench regenerates those four facts from the compiled benchmark.
"""

from __future__ import annotations


from repro.core import Constraints, SearchLimits, find_best_cut, \
    select_maxmiso
from repro.hwmodel import CostModel
from repro.ir import Opcode

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=1_500_000)


def bench_fig3_m1_m2_growth(benchmark, paper_apps):
    dfg = paper_apps["adpcm-decode"].hot_dfg

    m1_result = benchmark(find_best_cut, dfg, Constraints(nin=2, nout=1),
                          MODEL, LIMITS)
    m2_result = find_best_cut(dfg, Constraints(nin=3, nout=1), MODEL,
                              LIMITS)

    m1, m2 = m1_result.cut, m2_result.cut
    assert m1 is not None and m2 is not None
    report("fig3", "Fig. 3 walk-through on adpcm-decode hot block "
                   f"({dfg.n} nodes):")
    report("fig3", f"  M1 (Nin=2, Nout=1): {m1.describe()}")
    report("fig3", f"  M2 (Nin=3, Nout=1): {m2.describe()}")

    # M1 is a genuine multi-operation cluster, connected, 2-in/1-out.
    assert m1.size >= 4
    assert m1.is_connected()
    assert m1.num_inputs <= 2 and m1.num_outputs == 1
    # The extra input lets the cut grow (accumulation + saturation).
    assert m2.size > m1.size
    assert m2.merit > m1.merit
    # The grown cut contains selects (the saturation network of Fig. 3).
    m2_ops = {dfg.nodes[i].opcode for i in m2.nodes}
    assert Opcode.SELECT in m2_ops


def bench_fig3_disconnected_with_two_outputs(benchmark, paper_apps):
    dfg = paper_apps["adpcm-decode"].hot_dfg

    result = benchmark(find_best_cut, dfg, Constraints(nin=4, nout=2),
                       MODEL, LIMITS)

    cut = result.cut
    assert cut is not None
    report("fig3", f"  M2+M3 (Nin=4, Nout=2): {cut.describe()}")
    # Paper: "it may choose at once disconnected subgraphs such as M2+M3".
    assert not cut.is_connected()
    assert cut.num_outputs == 2

    single = find_best_cut(dfg, Constraints(nin=4, nout=1), MODEL, LIMITS)
    assert cut.merit > single.cut.merit


def bench_fig3_maxmiso_misses_m1(benchmark, paper_apps):
    """Section 8(b): MaxMISO finds M2 with 3+ input ports but nothing at
    Nin=2, while the exact identification still finds M1."""
    app = paper_apps["adpcm-decode"]
    dfg = app.hot_dfg

    def run():
        narrow = select_maxmiso([dfg], Constraints(nin=2, nout=1,
                                                   ninstr=1), MODEL)
        wide = select_maxmiso([dfg], Constraints(nin=3, nout=1,
                                                 ninstr=1), MODEL)
        return narrow, wide

    narrow, wide = benchmark(run)
    exact = find_best_cut(dfg, Constraints(nin=2, nout=1), MODEL, LIMITS)

    report("fig3", f"  MaxMISO best merit at Nin=2: "
                   f"{narrow.total_merit:g}; at Nin=3: "
                   f"{wide.total_merit:g}; exact at Nin=2: "
                   f"{exact.cut.merit:g}")
    assert exact.cut.merit > narrow.total_merit
    assert wide.total_merit >= narrow.total_merit

"""Frozen copy of the seed's recursive single-cut search.

This is the pre-engine implementation (recursive tree walk, per-edge
Python loops, reference counting, exception-based budget), preserved
verbatim as a benchmark fixture so ``bench_engine.py`` — and every later
PR — can measure the bitset engine against a stable reference path.  Do
not "improve" this file; its whole value is that it does not change.

Kept self-contained on purpose: it only borrows the public result types
from ``repro.core`` so its output is directly comparable.
"""

from __future__ import annotations

import math
import sys
from typing import Callable, List, Optional, Tuple

from repro.core import SearchLimits, SearchResult, SearchStats, evaluate_cut
from repro.core.cut import Constraints
from repro.hwmodel.latency import CostModel
from repro.ir.dfg import DataFlowGraph


class _BudgetExhausted(Exception):
    """Internal signal: stop the recursion, keep the incumbent."""


class _ReferenceSingleCutSearch:
    """One invocation of the Fig. 6 algorithm on one DFG (seed version)."""

    def __init__(self, dfg: DataFlowGraph, constraints: Constraints,
                 model: CostModel, limits: Optional[SearchLimits],
                 on_feasible: Optional[Callable] = None) -> None:
        self.dfg = dfg
        self.constraints = constraints
        self.model = model
        self.limits = limits or SearchLimits()
        self.on_feasible = on_feasible

        n = dfg.n
        self.n = n
        self.succs = dfg.succs
        self.forced_out = [node.forced_out for node in dfg.nodes]
        self.forbidden = [node.forbidden for node in dfg.nodes]
        self.sw = [0.0 if node.forbidden else model.sw(node)
                   for node in dfg.nodes]
        self.hw = [math.inf if node.forbidden else model.hw(node)
                   for node in dfg.nodes]
        # Unified producer ids: internal nodes keep their index, external
        # input variable j becomes n + j.
        self.producers = [dfg.producers_of(i) for i in range(n)]

        # Mutable search state.
        self.in_s = bytearray(n)
        self.reach = bytearray(n)       # R bit
        self.bad = bytearray(n)         # B bit
        self.refs = [0] * (n + len(dfg.input_vars))
        self.in_count = 0
        self.out_count = 0
        self.out_flag = bytearray(n)    # is node an output while included
        self.cpl = [0.0] * n
        self.cp_max = 0.0
        self.cp_stack: List[float] = []
        self.sw_sum = 0.0
        self.included: List[int] = []

        self.best_merit = 0.0           # only positive-merit cuts qualify
        self.best_nodes: Optional[Tuple[int, ...]] = None
        self.stats = SearchStats(graph_nodes=n)
        self.complete = True

    # ------------------------------------------------------------------
    def _include(self, v: int) -> bool:
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad

        is_bad = False
        for s in succs:
            if bad[s] or (not in_s[s] and reach[s]):
                is_bad = True
                break
        reach[v] = 1
        bad[v] = 1 if is_bad else 0

        is_out = self.forced_out[v]
        if not is_out:
            for s in succs:
                if not in_s[s]:
                    is_out = True
                    break
        self.out_flag[v] = 1 if is_out else 0
        if is_out:
            self.out_count += 1

        refs = self.refs
        delta = 0
        for p in self.producers[v]:
            refs[p] += 1
            if refs[p] == 1:
                delta += 1
        if refs[v] > 0:
            delta -= 1
        self.in_count += delta

        best = 0.0
        cpl = self.cpl
        for s in succs:
            if in_s[s] and cpl[s] > best:
                best = cpl[s]
        cpl[v] = self.hw[v] + best
        self.cp_stack.append(self.cp_max)
        if cpl[v] > self.cp_max:
            self.cp_max = cpl[v]

        self.sw_sum += self.sw[v]
        in_s[v] = 1
        self.included.append(v)

        convex_ok = not is_bad
        out_ok = self.out_count <= self.constraints.nout
        return convex_ok and out_ok

    def _undo_include(self, v: int) -> None:
        self.included.pop()
        self.in_s[v] = 0
        self.sw_sum -= self.sw[v]
        self.cp_max = self.cp_stack.pop()
        refs = self.refs
        for p in self.producers[v]:
            refs[p] -= 1
            if refs[p] == 0:
                self.in_count -= 1
        if refs[v] > 0:
            self.in_count += 1
        if self.out_flag[v]:
            self.out_count -= 1
            self.out_flag[v] = 0

    def _decide_exclude(self, v: int) -> None:
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad
        r = 0
        b = 0
        for s in succs:
            if reach[s]:
                r = 1
                if bad[s] or not in_s[s]:
                    b = 1
                    break
        reach[v] = r
        bad[v] = b

    def _maybe_update_best(self) -> None:
        if self.in_count > self.constraints.nin:
            return
        merit = self.dfg.weight * (
            self.sw_sum - _ceil_cycles(self.cp_max))
        if self.on_feasible is not None:
            self.on_feasible(tuple(self.included), merit)
        if merit > self.best_merit:
            self.best_merit = merit
            self.best_nodes = tuple(self.included)
            self.stats.best_updates += 1

    def _search(self, i: int) -> None:
        if i == self.n:
            return
        if not self.forbidden[i]:
            self.stats.cuts_considered += 1
            limit = self.limits.max_considered
            if (limit is not None
                    and self.stats.cuts_considered > limit):
                self.complete = False
                raise _BudgetExhausted()
            ok = self._include(i)
            if ok:
                self.stats.cuts_feasible += 1
                self._maybe_update_best()
                self._search(i + 1)
            else:
                self.stats.cuts_infeasible += 1
            self._undo_include(i)
        self._decide_exclude(i)
        self._search(i + 1)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * self.n + 1000))
        try:
            self._search(0)
        except _BudgetExhausted:
            pass
        finally:
            sys.setrecursionlimit(old_limit)
        cut = None
        if self.best_nodes is not None:
            cut = evaluate_cut(self.dfg, self.best_nodes, self.model)
        return SearchResult(cut=cut, stats=self.stats,
                            complete=self.complete)


def _ceil_cycles(critical_path: float) -> int:
    if critical_path <= 0.0:
        return 1
    return max(1, math.ceil(critical_path - 1e-9))


def find_best_cut_reference(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
) -> SearchResult:
    """The seed's recursive find_best_cut, for engine benchmarking."""
    model = model or CostModel()
    return _ReferenceSingleCutSearch(dfg, constraints, model, limits).run()

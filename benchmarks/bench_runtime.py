"""Section 8 runtime claim — "in all but extreme cases it took only some
seconds; only in a couple of cases with loose constraints, run times were
in the order of hours".

We time the full Iterative selection across the constraint grid and
confirm the same pattern *per search budget*: tight constraints finish
quickly and completely; the loosest ones exhaust a generous budget (the
stand-in for "hours" on 2003 hardware).
"""

from __future__ import annotations

import time

import pytest

from repro.core import Constraints, SearchLimits, select_iterative
from repro.hwmodel import CostModel

from _bench_utils import report

MODEL = CostModel()


@pytest.mark.parametrize("nin,nout", [(2, 1), (4, 2)])
def bench_runtime_tight_constraints(benchmark, paper_apps, nin, nout):
    """Tight constraints: complete identification in interactive time."""
    app = paper_apps["adpcm-decode"]
    cons = Constraints(nin=nin, nout=nout, ninstr=16)
    limits = SearchLimits(max_considered=2_000_000)

    result = benchmark.pedantic(
        select_iterative, args=(app.dfgs, cons, MODEL, limits),
        iterations=1, rounds=1)

    report("runtime", f"Iterative adpcm-decode Nin={nin} Nout={nout}: "
                      f"{result.stats.cuts_considered} cuts, "
                      f"complete={result.complete}")
    assert result.complete, "tight constraints must finish in budget"


def bench_runtime_loose_constraints_hit_budget(benchmark, paper_apps):
    """Loose constraints blow past a small budget (the paper's 'hours').

    The merit upper bound must let the same 400k-cut budget decide
    strictly more of the search space (pruned subtrees count as decided:
    they provably hold nothing better than the incumbent).
    """
    app = paper_apps["adpcm-decode"]
    cons = Constraints(nin=10_000, nout=6, ninstr=1)
    limits = SearchLimits(max_considered=400_000)

    result = benchmark.pedantic(
        select_iterative, args=(app.dfgs, cons, MODEL, limits),
        iterations=1, rounds=1)

    report("runtime", f"Iterative adpcm-decode unbounded-in/Nout=6: "
                      f"complete={result.complete} (budget 400k cuts)")
    assert not result.complete

    bounded = select_iterative(
        app.dfgs, cons, MODEL,
        SearchLimits(max_considered=400_000, use_upper_bound=True))
    report("runtime",
           f"  same budget with merit upper bound: "
           f"space covered {bounded.stats.space_covered:.4f} "
           f"vs {result.stats.space_covered:.4f}, "
           f"{bounded.stats.ub_pruned} subtrees pruned, "
           f"complete={bounded.complete}")
    assert bounded.stats.space_covered > result.stats.space_covered


def bench_runtime_scaling_with_nout(benchmark, paper_apps):
    """Wall-clock grows with Nout (weaker pruning)."""
    app = paper_apps["adpcm-decode"]
    dfgs = app.dfgs
    timings = {}
    for nout in (1, 2, 3):
        cons = Constraints(nin=4, nout=nout, ninstr=4)
        start = time.perf_counter()
        select_iterative(dfgs, cons, MODEL,
                         SearchLimits(max_considered=2_000_000))
        timings[nout] = time.perf_counter() - start

    benchmark.pedantic(
        select_iterative,
        args=(dfgs, Constraints(nin=4, nout=1, ninstr=4), MODEL,
              SearchLimits(max_considered=2_000_000)),
        iterations=1, rounds=1)

    report("runtime", "Iterative wall-clock vs Nout (Nin=4, Ninstr=4): "
           + ", ".join(f"Nout={k}: {v:.2f}s" for k, v in timings.items()))
    assert timings[1] <= timings[3] * 1.5   # allow noise; trend must hold

"""Figure 4/5/7 — the paper's worked example.

Regenerates the exact search trace of Fig. 7 (the 4-node graph of Fig. 4
searched with ``Nout = 1``): 11 of 16 cuts considered, 5 feasible, 6
infeasible, 4 pruned — and benchmarks the raw identification speed on the
example graph.
"""

from __future__ import annotations

from repro.core import Constraints, find_best_cut
from repro.hwmodel import CostModel
from repro.ir.synth import paper_figure4_dfg

from _bench_utils import report

MODEL = CostModel()


def bench_figure7_trace(benchmark):
    dfg = paper_figure4_dfg()
    cons = Constraints(nin=16, nout=1)

    result = benchmark(find_best_cut, dfg, cons, MODEL)

    stats = result.stats
    assert stats.cuts_considered == 11
    assert stats.cuts_feasible == 5
    assert stats.cuts_infeasible == 6
    assert stats.cuts_eliminated == 4

    report("fig7", "Fig. 7 trace (4-node example of Fig. 4, Nout=1):")
    report("fig7", f"  cuts considered : {stats.cuts_considered}  "
                   f"(paper: 11)")
    report("fig7", f"  passed checks   : {stats.cuts_feasible}  (paper: 5)")
    report("fig7", f"  failed checks   : {stats.cuts_infeasible}  "
                   f"(paper: 6)")
    report("fig7", f"  eliminated      : {stats.cuts_eliminated}  "
                   f"(paper: 4)")


def bench_figure5_full_tree(benchmark):
    """Unconstrained search visits every nonempty cut (Fig. 5's tree)."""
    dfg = paper_figure4_dfg()
    cons = Constraints(nin=16, nout=16)
    result = benchmark(find_best_cut, dfg, cons, MODEL)
    assert result.stats.cuts_considered == 15
    report("fig7", f"  unconstrained   : {result.stats.cuts_considered} "
                   f"cuts == 2^4 - 1 (Fig. 5 tree)")

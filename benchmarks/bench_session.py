"""Warm-start wall time — the whole flow, cold vs. persisted.

Runs the sweep -> identify -> speedup flow twice through the session
facade against one persistent store: the first pass populates it (cold),
the second repeats the *identical* calls from a fresh ``Session`` in the
same store (warm), exactly like a second CLI invocation.  A third pass
runs with the store disabled to price the store's overhead on a cold
run.

Gates (this benchmark fails CI, unlike the throughput trend benches):

* warm and cold results are bit-identical at every layer;
* the warm run's store hit-rate is >= 0.95 (a warm flow recomputes
  nothing);
* warm leaves zero warm-units (the store already covered the grid).

The wall-clock ratios — warm-sweep speedup (locally ~7.5x, acceptance
bar 5x) and cold-with-store overhead vs. no-store (locally ~1.0x) —
are recorded in ``benchmarks/results/BENCH_session.json`` and asserted
only with generous margins: shared-runner timing noise on sub-second
runs must never block an unrelated change (same policy as the trend
benches in ci.yml).

Runs standalone (``python benchmarks/bench_session.py``) or under the
pytest benchmark harness.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import Session, SweepSpec

try:
    from _bench_utils import report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import report

RESULTS_DIR = Path(__file__).parent / "results"

#: The measured grid: the paper benchmarks whose exponential per-block
#: identification dominates the cold cost — the product the store must
#: amortise (same shape as ``bench_sweep``'s grid).
SPEC = SweepSpec(
    workloads=("adpcm-decode", "gsm"),
    ports=((2, 1), (3, 1), (4, 1), (4, 2), (5, 2)),
    ninstrs=(2, 4, 8, 16),
    algorithms=("iterative", "maxmiso"),
    limit=600_000,
    n=64,
)

SPEEDUP_WORKLOADS = ["adpcm-decode", "gsm"]


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


def _flow(session):
    """One end-to-end pass: sweep + identify + speedup, timed per stage.

    The sweep runs first so its cold timing includes every exponential
    identification — ``sweep_speedup`` below is exactly "a second
    identical ``repro sweep``" vs. the first one."""
    stages = {}
    start = time.perf_counter()
    sweep = session.sweep(SPEC)
    stages["sweep_s"] = time.perf_counter() - start

    start = time.perf_counter()
    identify = session.identify("adpcm-decode", n=64,
                                limits=SPEC.limits)
    stages["identify_s"] = time.perf_counter() - start

    start = time.perf_counter()
    speedup = session.speedup(SPEEDUP_WORKLOADS, ninstr=4, n=64,
                              limits=SPEC.limits)
    stages["speedup_s"] = time.perf_counter() - start

    stages["total_s"] = sum(stages.values())
    results = {
        "identify": (tuple(sorted(identify.cut.nodes)),
                     identify.cut.merit) if identify.cut else None,
        "sweep_rows": _strip_timing(sweep.rows),
        "speedup_rows": [row.as_dict() for row in speedup],
    }
    return stages, results, sweep


def run_session_benchmark() -> dict:
    """Measure everything; return (and persist) the JSON payload."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        cold_stages, cold_results, _ = _flow(Session(store=root))

        warm_session = Session(store=root)
        warm_stages, warm_results, warm_sweep = _flow(warm_session)
        warm_store = warm_session.store.stats

        nostore_stages, nostore_results, _ = _flow(Session(store=False))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    assert cold_results == warm_results, \
        "warm-start changed results"
    assert cold_results == nostore_results, \
        "the store changed results vs. --no-store"
    assert warm_sweep.warm_units == 0, \
        f"warm sweep still planned {warm_sweep.warm_units} warm unit(s)"
    hit_rate = warm_store.hit_rate
    assert hit_rate >= 0.95, \
        f"warm store hit-rate {hit_rate:.2f} below threshold"

    sweep_speedup = cold_stages["sweep_s"] / max(warm_stages["sweep_s"],
                                                 1e-9)
    total_speedup = cold_stages["total_s"] / max(warm_stages["total_s"],
                                                 1e-9)
    overhead = cold_stages["total_s"] / max(nostore_stages["total_s"],
                                            1e-9)

    payload = {
        "grid": {
            "workloads": list(SPEC.workloads),
            "ports": [list(p) for p in SPEC.ports],
            "ninstrs": list(SPEC.ninstrs),
            "algorithms": list(SPEC.algorithms),
            "points": len(SPEC.expand()),
            "speedup_workloads": SPEEDUP_WORKLOADS,
        },
        "cold": cold_stages,
        "warm": warm_stages,
        "no_store": nostore_stages,
        "warm_store_stats": warm_store.as_dict(),
        "warm_hit_rate": hit_rate,
        "sweep_speedup": sweep_speedup,
        "total_speedup": total_speedup,
        "cold_store_overhead": overhead,
        "results_bit_identical": True,
    }

    report("session",
           f"session flow: cold {cold_stages['total_s']:.2f}s, warm "
           f"{warm_stages['total_s']:.2f}s ({total_speedup:.1f}x; sweep "
           f"{sweep_speedup:.1f}x), hit-rate {hit_rate:.2f}, cold "
           f"store overhead {overhead:.2f}x vs. no-store, results "
           f"bit-identical")

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_session.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    # Timing bars with deliberate headroom (locally ~7.5x sweep
    # speedup and ~1.0x overhead): these are sub-second runs on shared
    # runners, so the hard correctness gates above (hit-rate, zero
    # warm-units, bit-identity) carry the regression burden and the
    # ratios only catch order-of-magnitude collapses.
    assert sweep_speedup >= 2.0, payload
    assert overhead <= 2.0, payload
    return payload


def bench_session_warm_start(benchmark):
    payload = run_session_benchmark()
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert payload["warm_hit_rate"] >= 0.95


if __name__ == "__main__":
    out = run_session_benchmark()
    print(json.dumps(out, indent=2))

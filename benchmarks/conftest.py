"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper.  Each module
prints its rows through :func:`_bench_utils.report`, which both echoes to
stdout (run with ``pytest benchmarks/ --benchmark-only -s`` to see them
live) and appends to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.hwmodel import CostModel
from repro.pipeline import prepare_application

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    """Truncate result files once per session."""
    if RESULTS_DIR.exists():
        for path in RESULTS_DIR.glob("*.txt"):
            path.unlink()
    yield


@pytest.fixture(scope="session")
def model():
    return CostModel()


@pytest.fixture(scope="session")
def paper_apps():
    """The paper's three Fig. 11 benchmarks, profiled."""
    return {
        name: prepare_application(name, n=96)
        for name in ("adpcm-decode", "adpcm-encode", "gsm")
    }


@pytest.fixture(scope="session")
def all_apps(paper_apps):
    apps = dict(paper_apps)
    for name in ("fir", "crc32", "mixer"):
        apps[name] = prepare_application(name, n=64)
    return apps

"""Cluster fabric scaling — work stealing, sharding, bit-identity.

Three measurements, one JSON artifact
(``benchmarks/results/BENCH_cluster.json``):

1. **Scheduler scaling** — a bag of sleep-calibrated units (pure
   wait, so wall-clock scales across worker *processes* regardless of
   how many CPUs the runner has) through ``run_cluster`` at 1, 2 and
   4 workers.  Acceptance bars: >= 1.7x at two workers, >= 3.0x at
   four.
2. **Skew resistance** — one oversized unit plus a tail of small
   ones.  Largest-first hand-out must keep the makespan near the
   theoretical ideal (the oversized unit pins one worker while the
   tail drains through the other); the same bag with inverted hints
   (smallest-first) is recorded for comparison.
3. **Sweep bit-identity** — a real Fig. 11-style grid, serial vs.
   ``cluster=2`` with separate SQLite stores: rows (modulo wall
   time) and persisted artifact key sets must match exactly.  The
   cluster-vs-serial wall-clock ratio is recorded always but only
   gated when the runner has the CPUs to show it (identification is
   CPU-bound, unlike the calibrated units above).

Runs standalone (``python benchmarks/bench_cluster.py``) or under the
pytest benchmark harness.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import run_cluster
from repro.explore import SweepSpec, run_sweep
from repro.store import ArtifactStore

try:
    from _bench_utils import report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import report

RESULTS_DIR = Path(__file__).parent / "results"

_SLEEP_FN = "repro.cluster.worker:_sleep_unit"

#: Calibrated scheduler bag: 16 x 0.5s of pure wait (8s serial).
#: Long enough that per-process fork overhead is noise next to the
#: sharding win, short enough for CI.
_UNITS = [0.5] * 16

#: Skew bag: one unit as long as the whole tail.
_SKEW = [1.6] + [0.2] * 8

#: The measured grid for the bit-identity leg (small on purpose: the
#: point is identity and sharding overhead, not throughput).
SPEC = SweepSpec(
    workloads=("fir", "crc32"),
    ports=((2, 1), (4, 2)),
    ninstrs=(2, 4),
    algorithms=("iterative", "maxmiso"),
    limit=100_000,
    n=16,
)


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


def _timed_cluster(payloads, workers, hints=None):
    """(wall seconds, worker name set) of one run_cluster invocation."""
    start = time.perf_counter()
    results, reports = run_cluster(_SLEEP_FN, payloads,
                                   size_hints=hints, workers=workers)
    elapsed = time.perf_counter() - start
    assert results == payloads, "cluster changed unit results"
    return elapsed, {r.worker for r in reports}


def _bench_scheduler() -> dict:
    """Leg 1: sleep-unit scaling at 1/2/4 workers, with gates."""
    serial_s, _ = _timed_cluster(_UNITS, workers=0)
    two_s, two_workers = _timed_cluster(_UNITS, workers=2)
    four_s, four_workers = _timed_cluster(_UNITS, workers=4)
    degraded = (two_workers == {"leader-inline"}
                or four_workers == {"leader-inline"})
    record = {
        "units": len(_UNITS),
        "unit_s": _UNITS[0],
        "serial_s": serial_s,
        "workers2_s": two_s,
        "workers4_s": four_s,
        "speedup2": serial_s / two_s,
        "speedup4": serial_s / four_s,
        "degraded_to_inline": degraded,
    }
    if not degraded:
        assert record["speedup2"] >= 1.7, record
        assert record["speedup4"] >= 3.0, record
    return record


def _bench_skew() -> dict:
    """Leg 2: largest-first keeps a skewed bag near the ideal."""
    total = sum(_SKEW)
    ideal = max(max(_SKEW), total / 2)
    largest_s, workers = _timed_cluster(_SKEW, workers=2, hints=_SKEW)
    inverted = [-h for h in _SKEW]
    smallest_s, _ = _timed_cluster(_SKEW, workers=2, hints=inverted)
    record = {
        "bag": _SKEW,
        "ideal_s": ideal,
        "largest_first_s": largest_s,
        "smallest_first_s": smallest_s,
        "degraded_to_inline": workers == {"leader-inline"},
    }
    if not record["degraded_to_inline"]:
        # The oversized unit must not serialize the tail: the
        # largest-first makespan stays within 45% of the two-worker
        # ideal (fork + wire overhead is the slack).  The bound is
        # discriminating: a smallest-first schedule of this bag cannot
        # finish under 150% of the ideal even with zero overhead.
        assert largest_s <= ideal * 1.45, record
    return record


def _bench_sweep_identity() -> dict:
    """Leg 3: real grid, serial vs cluster=2, bit-identity + ratio."""
    serial_dir = tempfile.mkdtemp(prefix="bench-cluster-serial-")
    cluster_dir = tempfile.mkdtemp(prefix="bench-cluster-shard-")
    try:
        serial_store = ArtifactStore(
            f"sqlite:{serial_dir}/store.sqlite")
        start = time.perf_counter()
        serial = run_sweep(SPEC, store=serial_store)
        serial_s = time.perf_counter() - start
        cluster_store = ArtifactStore(
            f"sqlite:{cluster_dir}/store.sqlite")
        start = time.perf_counter()
        clustered = run_sweep(SPEC, store=cluster_store, cluster=2)
        cluster_s = time.perf_counter() - start
        assert _strip_timing(serial.rows) == \
            _strip_timing(clustered.rows), "cluster changed sweep rows"
        serial_keys = sorted(serial_store.backend.keys())
        cluster_keys = sorted(cluster_store.backend.keys())
        assert serial_keys == cluster_keys, \
            "cluster changed the persisted artifact key set"
        cpus = os.cpu_count() or 1
        record = {
            "points": len(serial.rows),
            "warm_units": serial.warm_units,
            "serial_s": serial_s,
            "cluster2_s": cluster_s,
            "ratio": serial_s / cluster_s,
            "rows_bit_identical": True,
            "store_keys_identical": True,
            "cpu_count": cpus,
            "cpu_gated": cpus >= 2,
        }
        if record["cpu_gated"]:
            # Only meaningful with real parallel CPUs: the warm phase
            # must not pay more than it gains.  (The sleep-unit gates
            # above cover the scheduler itself on any runner.)
            assert record["ratio"] >= 1.0, record
        serial_store.close()
        cluster_store.close()
        return record
    finally:
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(cluster_dir, ignore_errors=True)


def run_cluster_benchmark() -> dict:
    """Measure everything; return (and persist) the JSON payload."""
    payload = {
        "scheduler": _bench_scheduler(),
        "skew": _bench_skew(),
        "sweep": _bench_sweep_identity(),
    }
    sched = payload["scheduler"]
    skew = payload["skew"]
    sweep = payload["sweep"]
    report("cluster",
           f"cluster: {sched['units']} sleep units "
           f"{sched['serial_s']:.1f}s serial -> "
           f"{sched['speedup2']:.2f}x @2w, "
           f"{sched['speedup4']:.2f}x @4w; skew makespan "
           f"{skew['largest_first_s']:.2f}s (ideal "
           f"{skew['ideal_s']:.2f}s); sweep {sweep['points']} points "
           f"rows+keys identical, serial/cluster2 "
           f"{sweep['ratio']:.2f}x on {sweep['cpu_count']} CPU(s)")

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_cluster.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    return payload


def bench_cluster_fabric(benchmark):
    payload = run_cluster_benchmark()
    benchmark.pedantic(
        run_cluster, args=(_SLEEP_FN, _UNITS),
        kwargs={"workers": 2}, iterations=1, rounds=1)
    assert payload["sweep"]["rows_bit_identical"]


if __name__ == "__main__":
    out = run_cluster_benchmark()
    print(json.dumps(out, indent=2))

"""Ablations on the evaluation model.

1. **Static estimate vs. dynamic cycle simulation** — the paper's merit
   function predicts speedups from a profile; the cycle simulator replays
   the program and charges per executed block.  On the profiling input the
   two must agree exactly; on a different input the profile generalises
   (same workload, different length).
2. **Cost-model sensitivity** — rerunning the selection with a uniform
   operator model: who-wins (exact >= baselines) must not depend on the
   latency tables.
3. **If-conversion leverage** — disabling the paper's preprocessing step
   collapses the achievable speedup, demonstrating why the paper applies
   it.
"""

from __future__ import annotations

import pytest

from repro.afu import simulate_selection
from repro.core import (
    Constraints,
    SearchLimits,
    select_clubbing,
    select_iterative,
    select_maxmiso,
)
from repro.hwmodel import CostModel, uniform_cost_model
from repro.interp import Memory
from repro.pipeline import prepare_application
from repro.workloads import get_workload

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=800_000)
CONS = Constraints(nin=4, nout=2, ninstr=8)


def _simulate(app, cuts, n):
    workload = get_workload(app.name)
    memory = Memory(app.module)
    args = workload.driver(memory, n)
    return simulate_selection(app.module, app.entry, args, cuts, MODEL,
                              memory=memory)


@pytest.mark.parametrize("name", ["adpcm-decode", "gsm"])
def bench_static_vs_dynamic(benchmark, name):
    app = prepare_application(name, n=96)
    selection = select_iterative(app.dfgs, CONS, MODEL, LIMITS)

    same_input = benchmark.pedantic(
        _simulate, args=(app, selection.cuts, 96),
        iterations=1, rounds=1)
    other_input = _simulate(app, selection.cuts, 192)

    saved = same_input.baseline_cycles - same_input.specialized_cycles
    report("ablation_model",
           f"{name}: static merit {selection.total_merit:.0f} vs dynamic "
           f"saved {saved:.0f} cycles (same input) | speedup "
           f"{same_input.speedup:.3f} (profiled) vs "
           f"{other_input.speedup:.3f} (2x input)")
    assert saved == pytest.approx(selection.total_merit)
    # Profile generalises on these stationary kernels.
    assert abs(other_input.speedup - same_input.speedup) \
        / same_input.speedup < 0.15


def bench_cost_model_sensitivity(benchmark, paper_apps):
    app = paper_apps["adpcm-decode"]
    uniform = uniform_cost_model()

    def run():
        return (
            select_iterative(app.dfgs, CONS, uniform, LIMITS),
            select_clubbing(app.dfgs, CONS, uniform),
            select_maxmiso(app.dfgs, CONS, uniform),
        )

    iterative, clubbing, maxmiso = benchmark(run)
    report("ablation_model",
           f"uniform cost model on adpcm-decode: iterative "
           f"{iterative.speedup:.3f} vs clubbing {clubbing.speedup:.3f} "
           f"vs maxmiso {maxmiso.speedup:.3f}")
    assert iterative.total_merit >= clubbing.total_merit - 1e-9
    assert iterative.total_merit >= maxmiso.total_merit - 1e-9


def bench_if_conversion_leverage(benchmark):
    with_ifc = prepare_application("adpcm-decode", n=96)
    without_ifc = prepare_application("adpcm-decode", n=96,
                                      if_convert=False)

    def run():
        return (
            select_iterative(with_ifc.dfgs, CONS, MODEL, LIMITS),
            select_iterative(without_ifc.dfgs, CONS, MODEL, LIMITS),
        )

    converted, unconverted = benchmark.pedantic(run, iterations=1,
                                                rounds=1)
    report("ablation_model",
           f"if-conversion on adpcm-decode: speedup "
           f"{converted.speedup:.3f} with vs "
           f"{unconverted.speedup:.3f} without "
           f"(hot block {with_ifc.hot_dfg.n} vs "
           f"{without_ifc.hot_dfg.n} nodes)")
    assert with_ifc.hot_dfg.n > without_ifc.hot_dfg.n
    assert converted.speedup > unconverted.speedup

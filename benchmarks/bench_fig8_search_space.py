"""Figure 8 — number of cuts considered vs. graph size.

The paper plots, for basic blocks of 2..~100 nodes taken from several
benchmarks, the number of cuts the algorithm examines with ``Nout = 2``
and unbounded ``Nin``, against N^2/N^3/N^4 reference curves: polynomial in
practice, with a visible exponential tendency.

We regenerate the same scatter from the basic blocks of all six workloads
plus unrolled variants of gsm/fir (which provide the large blocks), then
fit the exponent of ``cuts ~ N^k`` and assert it lands in the paper's
polynomial band (roughly between 1 and 4 for these sizes).
"""

from __future__ import annotations

import math

import pytest

from repro.core import Constraints, SearchLimits, find_best_cut
from repro.hwmodel import CostModel
from repro.pipeline import prepare_application

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=3_000_000)
NOUT2_UNBOUNDED_NIN = Constraints(nin=10_000, nout=2)


def _collect_blocks():
    specs = [
        ("adpcm-decode", None), ("adpcm-encode", None), ("gsm", None),
        ("fir", None), ("crc32", None), ("mixer", None),
        ("gsm", 2), ("gsm", 4), ("fir", 4), ("fir", 8), ("crc32", 8),
        ("mixer", 2),
    ]
    blocks = []
    for name, unroll in specs:
        app = prepare_application(name, n=16, unroll=unroll)
        for dfg in app.dfgs:
            if dfg.n >= 2:
                label = f"{name}{f'-u{unroll}' if unroll else ''}"
                blocks.append((label, dfg))
    return blocks


@pytest.fixture(scope="module")
def scatter():
    """(label, N, cuts_considered, complete) for every block."""
    points = []
    for label, dfg in _collect_blocks():
        result = find_best_cut(dfg, NOUT2_UNBOUNDED_NIN, MODEL, LIMITS)
        points.append((label, dfg.n,
                       result.stats.cuts_considered, result.complete))
    return points


def bench_fig8_scatter(benchmark, scatter):
    # Benchmark the search on the paper's flagship block size (~40 nodes).
    app = prepare_application("adpcm-decode", n=16)
    dfg = app.hot_dfg

    benchmark(find_best_cut, dfg, NOUT2_UNBOUNDED_NIN, MODEL, LIMITS)

    report("fig8", "Fig. 8 — cuts considered vs. graph nodes "
                   "(Nout=2, unbounded Nin):")
    report("fig8", f"  {'block':24s} {'N':>4s} {'cuts':>10s}  note")
    for label, n, cuts, complete in sorted(scatter, key=lambda p: p[1]):
        note = "" if complete else "budget capped"
        report("fig8", f"  {label:24s} {n:4d} {cuts:10d}  {note}")

    # Fit cuts ~ c * N^k over completed points with N >= 4.
    pts = [(n, cuts) for _, n, cuts, complete in scatter
           if complete and n >= 4 and cuts > 0]
    logs = [(math.log(n), math.log(c)) for n, c in pts]
    mean_x = sum(x for x, _ in logs) / len(logs)
    mean_y = sum(y for _, y in logs) / len(logs)
    k = (sum((x - mean_x) * (y - mean_y) for x, y in logs)
         / sum((x - mean_x) ** 2 for x, y in logs))
    report("fig8", f"  fitted exponent k in cuts ~ N^k: {k:.2f} "
                   f"(paper band: ~2..4)")
    assert 1.0 <= k <= 5.0, f"scaling exponent {k} outside plausible band"


def bench_fig8_tighter_constraints_prune_more(benchmark, scatter):
    """Section 6.1: tighter constraints => faster search."""
    app = prepare_application("adpcm-decode", n=16)
    dfg = app.hot_dfg
    counts = {}
    for nout in (1, 2, 4):
        cons = Constraints(nin=10_000, nout=nout)
        res = find_best_cut(dfg, cons, MODEL, LIMITS)
        counts[nout] = res.stats.cuts_considered

    benchmark(find_best_cut, dfg, Constraints(nin=10_000, nout=1), MODEL,
              LIMITS)

    report("fig8", "  pruning strength on adpcm-decode hot block:")
    for nout, cuts in counts.items():
        report("fig8", f"    Nout={nout}: {cuts} cuts considered")
    assert counts[1] <= counts[2] <= counts[4]

"""Sweep throughput — grid points per second, memoized vs. cold.

Runs the same Fig. 11-style grid twice through the exploration engine
(``repro.explore.run_sweep``): once cold (cache disabled — every point
recomputes identification, as separate CLI invocations would) and once
with the digest-keyed memo shared across the grid.  The grid overlaps
deliberately: four ``Ninstr`` values per port pair, so cached points
reuse the per-block identification chains the first point computed.

Emits machine-readable ``benchmarks/results/BENCH_sweep.json`` so later
PRs have a perf trajectory to regress against, and asserts the two
acceptance bars:

* the cached sweep retires >= 2x the points/s of the cold sweep;
* the cached rows are bit-identical to the cold rows.

Runs standalone (``python benchmarks/bench_sweep.py``) or under the
pytest benchmark harness.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.explore import SweepSpec, run_sweep

try:
    from _bench_utils import report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import report

RESULTS_DIR = Path(__file__).parent / "results"

#: The measured grid: 2 workloads x 4 port pairs x 4 instruction
#: budgets, exact identification plus both baselines — 96 points.  The
#: adpcm-decode hot block makes identification the dominant cost, which
#: is precisely what the memo amortises across the Ninstr axis.
SPEC = SweepSpec(
    workloads=("adpcm-decode", "gsm"),
    ports=((2, 1), (3, 1), (4, 1), (4, 2)),
    ninstrs=(2, 4, 8, 16),
    algorithms=("iterative", "clubbing", "maxmiso"),
    limit=600_000,
    n=64,
)


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


def run_sweep_benchmark() -> dict:
    """Measure everything; return (and persist) the JSON payload."""
    cold = run_sweep(SPEC, use_cache=False)
    warm = run_sweep(SPEC, use_cache=True)
    assert _strip_timing(cold.rows) == _strip_timing(warm.rows), \
        "cache changed sweep results"

    payload = {
        "grid": {
            "workloads": list(SPEC.workloads),
            "ports": [list(p) for p in SPEC.ports],
            "ninstrs": list(SPEC.ninstrs),
            "algorithms": list(SPEC.algorithms),
            "points": len(cold.rows),
        },
        "cold": {
            "sweep_s": cold.sweep_s,
            "points_per_sec": cold.points_per_second,
        },
        "cached": {
            "sweep_s": warm.sweep_s,
            "warm_s": warm.warm_s,
            "points_s": warm.points_s,
            "points_per_sec": warm.points_per_second,
            "warm_units": warm.warm_units,
            "cache_entries": warm.cache_entries,
            "cache_stats": warm.cache_stats,
        },
        "speedup": warm.points_per_second / cold.points_per_second,
        "rows_bit_identical": True,
    }
    report("sweep",
           f"sweep {payload['grid']['points']} points: cold "
           f"{cold.points_per_second:,.1f} points/s, cached "
           f"{warm.points_per_second:,.1f} points/s "
           f"({payload['speedup']:.2f}x, {warm.cache_stats['hits']} "
           f"hits / {warm.cache_stats['misses']} misses, rows "
           f"bit-identical)")

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_sweep.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    # Acceptance bar with headroom for noisy shared runners (locally
    # measured ~3.5x): the memo must at least double sweep throughput.
    assert payload["speedup"] >= 2.0, payload
    return payload


def bench_sweep_throughput(benchmark):
    payload = run_sweep_benchmark()
    benchmark.pedantic(
        run_sweep, args=(SPEC,), kwargs={"use_cache": True},
        iterations=1, rounds=1)
    assert payload["speedup"] >= 2.0


if __name__ == "__main__":
    out = run_sweep_benchmark()
    print(json.dumps(out, indent=2))

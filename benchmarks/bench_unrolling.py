"""Section 9 extension — loop unrolling feeds larger blocks to the
identifier.

The paper's conclusions propose unrolling as the way to expose more
parallelism to the identification algorithm.  This bench unrolls the gsm
lattice filter's 8-stage inner loop and measures how the identified
speedup grows with block size — plus the cost: the search space grows too.
"""

from __future__ import annotations


from repro.core import Constraints, SearchLimits, select_iterative
from repro.hwmodel import CostModel
from repro.pipeline import prepare_application

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=1_000_000)
CONS = Constraints(nin=4, nout=2, ninstr=8)


def bench_unrolling_gsm(benchmark):
    rows = []
    apps = {}
    for factor in (None, 2, 4, 8):
        app = prepare_application("gsm", n=64, unroll=factor)
        apps[factor] = app
        result = select_iterative(app.dfgs, CONS, MODEL, LIMITS)
        rows.append((factor or 1, app.hot_dfg.n, result.speedup,
                     result.stats.cuts_considered))

    benchmark.pedantic(
        select_iterative, args=(apps[4].dfgs, CONS, MODEL, LIMITS),
        iterations=1, rounds=1)

    report("unrolling", "gsm: unroll factor vs hot-block size and "
                        "achieved speedup (Nin=4, Nout=2, Ninstr=8):")
    report("unrolling", f"  {'unroll':>6s} {'nodes':>6s} {'speedup':>8s} "
                        f"{'cuts searched':>14s}")
    for factor, nodes, speedup, cuts in rows:
        report("unrolling",
               f"  {factor:6d} {nodes:6d} {speedup:8.3f} {cuts:14d}")

    # Block size must grow with the unroll factor...
    sizes = [r[1] for r in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 3 * sizes[0]
    # ...and some factor must improve (or at least match) the baseline
    # speedup.  The largest factor can regress when the fixed search
    # budget caps the exact search on a 8x block — an honest cost of the
    # extension that the report rows make visible.
    assert max(r[2] for r in rows) >= rows[0][2] - 1e-9

"""Ablation — what the monotone pruning buys.

The paper's key algorithmic device is subtree elimination on output-port
and convexity violations.  We quantify it by comparing the number of cuts
the pruned search examines against the full ``2^n - 1`` enumeration a
brute-force search would need, on real blocks, and time both on a block
size where brute force is still runnable.
"""

from __future__ import annotations


import pytest

from repro.core import Constraints, SearchLimits, find_best_cut
from repro.core.bruteforce import best_cut_bruteforce
from repro.hwmodel import CostModel
from repro.pipeline import prepare_application

from _bench_utils import report

MODEL = CostModel()


def bench_pruning_vs_full_enumeration(benchmark, paper_apps):
    app = paper_apps["adpcm-decode"]
    dfg = app.hot_dfg
    cons = Constraints(nin=4, nout=2)

    result = benchmark(find_best_cut, dfg, cons, MODEL,
                       SearchLimits(max_considered=3_000_000))

    full = (1 << dfg.n) - 1
    examined = result.stats.cuts_considered
    report("ablation_pruning",
           f"adpcm-decode hot block (n={dfg.n}), Nin=4/Nout=2: "
           f"examined {examined} of {full} cuts "
           f"({examined / full:.2e} fraction)")
    assert result.complete
    # The whole point: pruning must remove virtually the entire space.
    assert examined < full / 1e4


def bench_pruned_vs_bruteforce_wallclock(benchmark):
    """On a mid-size block both approaches run; the pruned search must
    find the identical optimum while visiting far fewer cuts."""
    app = prepare_application("crc32", n=16, unroll=2)
    dfg = max(app.dfgs, key=lambda d: d.n)
    # Keep brute force tractable.
    assert dfg.n <= 18, f"block too big for the ablation ({dfg.n})"
    cons = Constraints(nin=3, nout=1)

    fast = benchmark(find_best_cut, dfg, cons, MODEL)
    slow = best_cut_bruteforce(dfg, cons, MODEL)

    fast_merit = fast.cut.merit if fast.cut else 0.0
    slow_merit = slow.merit if slow else 0.0
    assert fast_merit == pytest.approx(slow_merit)
    report("ablation_pruning",
           f"crc32-u2 block (n={dfg.n}): pruned search examined "
           f"{fast.stats.cuts_considered} cuts; brute force examined "
           f"{(1 << dfg.n) - 1}; same optimum merit {fast_merit:g}")

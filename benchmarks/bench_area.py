"""Section 8 area claim — "the area investment needed to implement the
special datapaths ... was within the area of a couple of
multiply-accumulators".

Regenerates the per-benchmark area bill of the selected datapaths (in
MAC-equivalent units) and asserts the same order of magnitude.
"""

from __future__ import annotations

import pytest

from repro.afu import build_datapath
from repro.core import Constraints, SearchLimits, select_iterative
from repro.hwmodel import CostModel

from _bench_utils import report

MODEL = CostModel()
LIMITS = SearchLimits(max_considered=1_000_000)


@pytest.mark.parametrize("name", ["adpcm-decode", "adpcm-encode", "gsm"])
def bench_area_of_selected_datapaths(benchmark, paper_apps, name):
    app = paper_apps[name]
    cons = Constraints(nin=4, nout=2, ninstr=16)
    result = select_iterative(app.dfgs, cons, MODEL, LIMITS)
    assert result.cuts

    def build_all():
        return [build_datapath(cut, MODEL, name=f"ise{k}")
                for k, cut in enumerate(result.cuts)]

    afus = benchmark(build_all)

    total = sum(a.area_mac for a in afus)
    largest = max(a.area_mac for a in afus)
    report("area", f"{name}: {len(afus)} AFUs, total area "
                   f"{total:.2f} MAC, largest {largest:.2f} MAC")
    # Paper: within "a couple" of MACs for the largest chosen graphs.
    assert largest < 3.0
    # And the whole extension budget stays small-ASIC sized.
    assert total < 8.0

"""Extension bench — selection under an area constraint (Section 9).

Sweeps the silicon budget and reports the achievable speedup per budget,
comparing the exact knapsack against the merit-density greedy.  The curve
is the classic area/performance Pareto front an SoC architect reads off.
"""

from __future__ import annotations


from repro.core import Constraints, select_area_constrained
from repro.hwmodel import CostModel, cut_area

from _bench_utils import report

MODEL = CostModel()
CONS = Constraints(nin=4, nout=2, ninstr=16)
BUDGETS = [0.25, 0.5, 1.0, 2.0, 4.0]


def bench_area_pareto_front(benchmark, paper_apps):
    app = paper_apps["adpcm-decode"]

    def run(budget, method):
        return select_area_constrained(app.dfgs, CONS, budget, MODEL,
                                       method=method)

    rows = []
    for budget in BUDGETS:
        exact = run(budget, "knapsack")
        greedy = run(budget, "greedy")
        used = sum(cut_area(c.dfg, c.nodes, MODEL) for c in exact.cuts)
        rows.append((budget, used, exact.speedup, greedy.speedup))

    benchmark.pedantic(run, args=(2.0, "knapsack"), iterations=1,
                       rounds=1)

    report("area_budget", "adpcm-decode speedup vs AFU area budget "
                          "(Nin=4, Nout=2):")
    report("area_budget", f"  {'budget':>7s} {'used':>6s} "
                          f"{'knapsack':>9s} {'greedy':>7s}")
    monotone = []
    for budget, used, exact_s, greedy_s in rows:
        report("area_budget", f"  {budget:7.2f} {used:6.2f} "
                              f"{exact_s:9.3f} {greedy_s:7.3f}")
        assert used <= budget + 0.02
        assert exact_s >= greedy_s - 1e-9
        monotone.append(exact_s)
    assert monotone == sorted(monotone)
    # The knee: most of the unconstrained speedup for ~2 MACs (the
    # paper's "couple of multiply-accumulators" observation).
    assert monotone[-2] > 0.85 * monotone[-1]

#!/usr/bin/env python
"""Interpreter backend benchmark and bit-identity gate (DESIGN.md §11).

For every registered workload this measures interpreter throughput
(dynamic steps per second) three ways:

* **walk** — the tree-walking reference backend;
* **compiled cold** — the compiled-block backend with an empty code
  memo (the run pays per-block codegen);
* **compiled warm** — the same run with the memo populated, the state
  every repeated sweep/measure invocation sees.

It is a CI **gate**, not telemetry: the job fails when

* any workload's warm compiled throughput is below ``MIN_SPEEDUP`` (3x)
  over the walker — the PR's headline obligation;
* any backend pair disagrees on the result value, step count, block
  profile or final memory image;
* ``repro speedup``-style rows measured under the two backends are not
  byte-identical (the Fig. 9/10 artifact must not depend on the engine).

Emits ``benchmarks/results/BENCH_interp.json``.

Run:  PYTHONPATH=src python benchmarks/bench_interp.py
"""

import json
import sys
import time
from pathlib import Path

from repro import SearchLimits, WORKLOADS
from repro.exec.speedup import run_speedup
from repro.interp import Interpreter, Memory
from repro.interp.compile import clear_code_memo, code_memo_stats
from repro.pipeline import compile_workload

try:
    from _bench_utils import RESULTS_DIR, report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import RESULTS_DIR, report

#: Hard floor for warm compiled-vs-walker throughput, per workload
#: (the ISSUE's acceptance bar; the target is 5x, typically exceeded).
MIN_SPEEDUP = 3.0

#: Differential rows config (kept small: selection, not execution, is
#: the expensive part of a speedup row).
DIFF_WORKLOADS = ("fir", "crc32")
DIFF_N = 32
DIFF_LIMIT = SearchLimits(max_considered=200_000)


#: Timed repetitions per measurement; the reported time is the best of
#: these, so a GC pause or scheduler hiccup on a shared CI runner
#: cannot flip the throughput gate.
REPEATS = 3


def _execute(module, workload, backend, repeats=REPEATS, pre_run=None):
    """Best-of-*repeats* run; returns (RunResult, counts, arrays, s).

    Identity data (result, profile, memory) comes from the first run;
    each repetition executes on fresh state, so later runs only refine
    the timing.  *pre_run* runs before every repetition (the cold
    measurement clears the code memo there, so each rep pays codegen).
    """
    best = None
    first = None
    for _ in range(repeats):
        if pre_run is not None:
            pre_run()
        memory = Memory(module)
        args = workload.driver(memory, workload.default_n)
        interp = Interpreter(module, memory=memory, backend=backend)
        start = time.perf_counter()
        outcome = interp.run(workload.entry, args)
        elapsed = time.perf_counter() - start
        if first is None:
            first = (outcome, dict(interp.profile.counts), memory.arrays)
        best = elapsed if best is None else min(best, elapsed)
    return first[0], first[1], first[2], best


def main() -> int:
    rows = {}
    failures = []
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]
        module = compile_workload(workload)

        walk, walk_prof, walk_mem, walk_s = _execute(
            module, workload, "walk")
        cold, cold_prof, cold_mem, cold_s = _execute(
            module, workload, "compiled", pre_run=clear_code_memo)
        warm, warm_prof, warm_mem, warm_s = _execute(
            module, workload, "compiled")

        identical = (
            walk.value == cold.value == warm.value
            and walk.steps == cold.steps == warm.steps
            and walk_prof == cold_prof == warm_prof
            and walk_mem == cold_mem == warm_mem
        )
        if not identical:
            failures.append(f"{name}: compiled run diverged from walker")

        speedup_warm = walk_s / warm_s
        speedup_cold = walk_s / cold_s
        if speedup_warm < MIN_SPEEDUP:
            failures.append(
                f"{name}: warm compiled speedup {speedup_warm:.2f}x "
                f"< {MIN_SPEEDUP:.1f}x")
        rows[name] = {
            "steps": walk.steps,
            "walk_s": walk_s,
            "compiled_cold_s": cold_s,
            "compiled_warm_s": warm_s,
            "walk_steps_per_s": walk.steps / walk_s,
            "compiled_warm_steps_per_s": warm.steps / warm_s,
            "speedup_cold": speedup_cold,
            "speedup_warm": speedup_warm,
            "identical": identical,
        }
        report("interp",
               f"{name:14s} steps={walk.steps:8d} "
               f"walk={walk_s * 1e3:8.2f}ms "
               f"warm={warm_s * 1e3:8.2f}ms "
               f"cold={cold_s * 1e3:8.2f}ms "
               f"speedup={speedup_warm:6.2f}x "
               f"bit-exact={'yes' if identical else 'NO'}")

    # Differential artifact gate: measured-speedup rows byte-identical.
    diff_rows = {}
    for backend in ("walk", "compiled"):
        diff_rows[backend] = [
            row.as_dict()
            for row in run_speedup(list(DIFF_WORKLOADS), n=DIFF_N,
                                   limits=DIFF_LIMIT, backend=backend)
        ]
    rows_identical = diff_rows["walk"] == diff_rows["compiled"]
    if not rows_identical:
        failures.append("speedup rows differ between backends")
    report("interp",
           f"speedup-row differential ({','.join(DIFF_WORKLOADS)}): "
           f"{'byte-identical' if rows_identical else 'DIVERGED'}")

    memo = code_memo_stats().as_dict()
    worst = min(r["speedup_warm"] for r in rows.values())
    report("interp",
           f"worst warm speedup {worst:.2f}x (gate {MIN_SPEEDUP:.1f}x); "
           f"code memo: {memo}")

    payload = {
        "config": {"min_speedup": MIN_SPEEDUP,
                   "diff_workloads": list(DIFF_WORKLOADS),
                   "diff_n": DIFF_N},
        "workloads": rows,
        "rows_identical": rows_identical,
        "code_memo": memo,
        "worst_warm_speedup": worst,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_interp.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Engine throughput — cuts considered per second, engine vs. seed path.

Measures the bitset branch-and-bound engine against the preserved seed
implementation (``_reference_single_cut.py``, the pre-engine recursive
search) on the adpcm-decode hot block, and emits machine-readable
``benchmarks/results/BENCH_engine.json`` so later PRs have a perf
trajectory to regress against.

Three numbers matter:

* **raw throughput** — cuts considered per second on the *identical*
  tree walk (no extra pruning): pure per-cut speed;
* **upper-bound mode** — wall-clock to *complete* the paper-constraint
  search with the admissible merit bound enabled (same optimum, far
  fewer cuts examined);
* **effective throughput** — the reference path's cut count retired per
  second of engine+bound wall-clock: how fast the engine disposes of
  the search obligations the seed implementation had.

Runs standalone (``python benchmarks/bench_engine.py``) or under the
pytest benchmark harness.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import Constraints, SearchLimits, find_best_cut
from repro.hwmodel import CostModel
from repro.pipeline import prepare_application

try:
    from _bench_utils import report
    from _reference_single_cut import find_best_cut_reference
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import report
    from _reference_single_cut import find_best_cut_reference

RESULTS_DIR = Path(__file__).parent / "results"
MODEL = CostModel()

#: Complete searches on the hot block under the paper's constraint
#: settings (tight Fig. 11 corner and the default 4/2 ports).
RAW_SCENARIOS = [
    ("nin2_nout1", Constraints(nin=2, nout=1)),
    ("nin4_nout2", Constraints(nin=4, nout=2)),
]


def _best_time(fn, *args, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_engine_benchmark(app=None) -> dict:
    """Measure everything; return (and persist) the JSON payload."""
    if app is None:
        app = prepare_application("adpcm-decode", n=96)
    dfg = app.hot_dfg

    payload = {
        "block": dfg.name,
        "nodes": dfg.n,
        "scenarios": [],
    }

    for name, cons in RAW_SCENARIOS:
        t_eng, r_eng = _best_time(find_best_cut, dfg, cons, MODEL)
        t_ref, r_ref = _best_time(find_best_cut_reference, dfg, cons, MODEL)
        assert r_eng.merit == r_ref.merit, "engine diverged from reference"
        assert (r_eng.stats.cuts_considered
                == r_ref.stats.cuts_considered), "walks differ"
        cuts = r_eng.stats.cuts_considered
        payload["scenarios"].append({
            "name": name,
            "cuts_considered": cuts,
            "engine_cuts_per_sec": cuts / t_eng,
            "reference_cuts_per_sec": cuts / t_ref,
            "speedup": t_ref / t_eng,
        })
        report("engine", f"{name}: engine {cuts / t_eng:,.0f} cuts/s, "
                         f"reference {cuts / t_ref:,.0f} cuts/s "
                         f"({t_ref / t_eng:.2f}x)")

    # Upper-bound mode: same optimum, pruned walk, compared on the
    # reference's complete 4/2 search.
    cons = Constraints(nin=4, nout=2)
    t_ref, r_ref = _best_time(find_best_cut_reference, dfg, cons, MODEL)
    t_ub, r_ub = _best_time(
        find_best_cut, dfg, cons, MODEL,
        SearchLimits(use_upper_bound=True))
    assert r_ub.merit == r_ref.merit, "bound changed the optimum"
    ref_cuts = r_ref.stats.cuts_considered
    payload["upper_bound"] = {
        "reference_cuts": ref_cuts,
        "engine_cuts": r_ub.stats.cuts_considered,
        "ub_pruned_subtrees": r_ub.stats.ub_pruned,
        "wallclock_speedup": t_ref / t_ub,
        "effective_cuts_per_sec": ref_cuts / t_ub,
        "reference_cuts_per_sec": ref_cuts / t_ref,
        "effective_speedup": (ref_cuts / t_ub) / (ref_cuts / t_ref),
    }
    report("engine",
           f"upper-bound mode: {r_ub.stats.cuts_considered} of {ref_cuts} "
           f"cuts examined ({r_ub.stats.ub_pruned} subtrees pruned), "
           f"same optimum, {t_ref / t_ub:.1f}x wall-clock — effective "
           f"{ref_cuts / t_ub:,.0f} cuts/s vs {ref_cuts / t_ref:,.0f}")

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_engine.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    # The acceptance bars, with headroom for noisy shared runners
    # (locally measured ~25x effective and ~5x raw): the engine must
    # retire the reference's search obligations >= 5x faster, and be
    # >= 2.5x on the identical raw walk.
    assert payload["upper_bound"]["effective_speedup"] >= 5.0, payload
    for scenario in payload["scenarios"]:
        assert scenario["speedup"] >= 2.5, scenario
    return payload


def bench_engine_throughput(benchmark, paper_apps):
    app = paper_apps["adpcm-decode"]
    dfg = app.hot_dfg
    payload = run_engine_benchmark(app)
    benchmark.pedantic(
        find_best_cut,
        args=(dfg, Constraints(nin=4, nout=2), MODEL,
              SearchLimits(use_upper_bound=True)),
        iterations=1, rounds=3)
    assert payload["upper_bound"]["effective_speedup"] >= 5.0


if __name__ == "__main__":
    out = run_engine_benchmark()
    print(json.dumps(out, indent=2))

"""Chaos fabric overhead — the fault-injection layer must be free
when no fault fires.

Two measurements, one JSON artifact
(``benchmarks/results/BENCH_chaos.json``):

1. **Armed-but-idle cluster overhead** — a bag of sleep-calibrated
   units through ``run_cluster`` at two workers, once bare and once
   with a zero-fault plan armed (transported to the workers via
   ``$REPRO_CHAOS_PLAN``, wire hook installed, every spec at
   probability zero so the draw machinery runs on every site but
   nothing ever fires).  Acceptance bar: the armed run costs **less
   than 5%** wall-clock over the bare run.
2. **Store round-trip overhead** — a batch of put/get/contains
   operations against a live :class:`StoreServer` through
   ``NetworkBackend`` (the retry-capable client), armed vs. bare.
   Recorded for trend-spotting; not hard-gated (sub-millisecond ops
   amplify scheduler noise far past the fabric's real cost).

Runs standalone (``python benchmarks/bench_chaos.py``) or under the
pytest benchmark harness.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.chaos import FaultPlan, FaultSpec, env_plan, wire_faults
from repro.cluster import run_cluster
from repro.store import (
    ArtifactStore,
    NetworkBackend,
    SQLiteBackend,
    StoreServer,
)

try:
    from _bench_utils import report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import report

RESULTS_DIR = Path(__file__).parent / "results"

_SLEEP_FN = "repro.cluster.worker:_sleep_unit"

#: Calibrated bag: 8 x 0.4s of pure wait (3.2s serial, ~1.6s at two
#: workers) — long enough that fork jitter is noise against the gate,
#: short enough for CI.
_UNITS = [0.4] * 8

#: Store leg: operations per run.
_STORE_OPS = 150


def _zero_fault_plan() -> FaultPlan:
    """A plan that arms every injection site but never fires: unit
    checks, store draws and the wire hook all run at real cost, with
    probability zero (the poison op targets a unit index that does not
    exist, so ``check_unit`` still pattern-matches per unit)."""
    return FaultPlan(seed=0, specs=(
        FaultSpec(site="unit", kind="poison", ops=("999999",)),
        FaultSpec(site="store", kind="error", probability=0.0),
        FaultSpec(site="wire", kind="stall", probability=0.0,
                  delay_s=0.0),
    ))


def _timed_cluster(armed: bool) -> float:
    start = time.perf_counter()
    if armed:
        with env_plan(_zero_fault_plan()):
            results, _reports = run_cluster(_SLEEP_FN, _UNITS,
                                            workers=2)
    else:
        results, _reports = run_cluster(_SLEEP_FN, _UNITS, workers=2)
    elapsed = time.perf_counter() - start
    assert results == _UNITS, "cluster changed unit results"
    return elapsed


def _bench_cluster_overhead() -> dict:
    """Leg 1: sleep-unit bag, armed vs bare, gated at +5%."""
    # Interleave (bare, armed, bare, armed) and keep each side's best:
    # min-of-2 discards one-off fork/scheduler hiccups on either side.
    bare_s = min(_timed_cluster(False) for _ in range(2))
    armed_s = min(_timed_cluster(True) for _ in range(2))
    record = {
        "units": len(_UNITS),
        "unit_s": _UNITS[0],
        "bare_s": bare_s,
        "armed_s": armed_s,
        "overhead": armed_s / bare_s - 1.0,
    }
    assert record["overhead"] < 0.05, record
    return record


def _timed_store_ops(store: ArtifactStore, armed: bool) -> float:
    plan = _zero_fault_plan() if armed else None
    start = time.perf_counter()
    with wire_faults(plan):
        for i in range(_STORE_OPS):
            key = store.key("search", {"op": i, "armed": armed})
            store.put("search", key, {"value": i})
            store._hot.clear()           # force the network path
            assert store.get("search", key) == {"value": i}
            assert store.contains("search", key)
    return time.perf_counter() - start


def _bench_store_overhead() -> dict:
    """Leg 2: network store round-trips, armed vs bare (recorded)."""
    base = Path(tempfile.mkdtemp(prefix="bench-chaos-"))
    inner = SQLiteBackend(str(base / "store.sqlite"))
    server = StoreServer(inner, host="127.0.0.1", port=0).start()
    client = NetworkBackend(server.spec, retries=3, backoff_s=0.02)
    store = ArtifactStore(client)
    try:
        bare_s = min(_timed_store_ops(store, False) for _ in range(2))
        armed_s = min(_timed_store_ops(store, True) for _ in range(2))
        return {
            "ops": _STORE_OPS * 3,
            "bare_s": bare_s,
            "armed_s": armed_s,
            "overhead": armed_s / bare_s - 1.0,
            "retries": client.retry_count,
        }
    finally:
        server.shutdown()
        client.close()
        inner.close()


def run_chaos_benchmark() -> dict:
    """Measure everything; return (and persist) the JSON payload."""
    payload = {
        "cluster": _bench_cluster_overhead(),
        "store": _bench_store_overhead(),
    }
    cluster = payload["cluster"]
    net = payload["store"]
    report("chaos",
           f"chaos: zero-fault plan over {cluster['units']} sleep "
           f"units {cluster['bare_s']:.2f}s bare -> "
           f"{cluster['armed_s']:.2f}s armed "
           f"({cluster['overhead']:+.1%}); {net['ops']} store ops "
           f"{net['bare_s']:.2f}s bare -> {net['armed_s']:.2f}s armed "
           f"({net['overhead']:+.1%})")

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_chaos.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    return payload


def bench_chaos_fabric(benchmark):
    payload = run_chaos_benchmark()
    benchmark.pedantic(
        run_cluster, args=(_SLEEP_FN, _UNITS),
        kwargs={"workers": 2}, iterations=1, rounds=1)
    assert payload["cluster"]["overhead"] < 0.05


if __name__ == "__main__":
    out = run_chaos_benchmark()
    print(json.dumps(out, indent=2))

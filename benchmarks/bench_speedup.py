#!/usr/bin/env python
"""End-to-end ISE speedup benchmark (the paper's Fig. 9/10 experiment).

For every registered workload: compile, profile, select custom
instructions (Iterative, Nin=4/Nout=2, Ninstr=16), rewrite the program to
*execute* the selected AFUs, run baseline and rewritten programs on the
same input, and record measured cycle counts.

This doubles as a correctness gate: the run **fails** (exit 1) if any
rewritten program is not bit-identical to its baseline or if any measured
speedup falls below 1.0.  CI runs it on every push and uploads
``benchmarks/results/BENCH_speedup.json``.

Run:  PYTHONPATH=src python benchmarks/bench_speedup.py
"""

import json
import sys
import time
from pathlib import Path

from repro import WORKLOADS, SearchLimits
from repro.exec import format_speedup_table, run_speedup

try:
    from _bench_utils import RESULTS_DIR, report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import RESULTS_DIR, report

NIN, NOUT, NINSTR = 4, 2, 16
LIMIT = SearchLimits(max_considered=2_000_000)


def main() -> int:
    start = time.perf_counter()
    rows = run_speedup(sorted(WORKLOADS), nin=NIN, nout=NOUT,
                       ninstr=NINSTR, algorithm="iterative", limits=LIMIT)
    elapsed = time.perf_counter() - start

    report("speedup", format_speedup_table(rows))
    report("speedup", f"({len(rows)} workloads in {elapsed:.2f}s)")

    payload = {
        "config": {"nin": NIN, "nout": NOUT, "ninstr": NINSTR,
                   "algorithm": "iterative",
                   "limit": LIMIT.max_considered},
        "elapsed_s": elapsed,
        "rows": [row.as_dict() for row in rows],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_speedup.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    failures = []
    for row in rows:
        if row.status != "ok":
            continue        # n/a rows (Optimal refusals) are not failures
        if not row.identical:
            failures.append(f"{row.workload}: rewritten output diverged "
                            f"from the baseline")
        if row.measured_speedup < 1.0:
            failures.append(f"{row.workload}: measured speedup "
                            f"{row.measured_speedup:.3f}x < 1.0")
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

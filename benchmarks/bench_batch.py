#!/usr/bin/env python
"""Batched-execution benchmark and bit-identity gate (DESIGN.md §12).

For every registered workload this measures throughput in **inputs per
second** two ways, on the warm compiled backend:

* **single** — the N=1 path every caller paid before this PR: each
  input rebuilds the memory image, re-runs the driver, constructs a
  fresh interpreter (re-keying the dispatch table against the code
  memo) and executes once;
* **batch** — :func:`repro.interp.run_batch` over ``N = 10_000`` lanes
  in one call: the driver runs once, tables and closures bind once,
  and the memory image is reset in place between lanes.

It is a CI **gate**, not telemetry: the job fails when

* any workload's batch throughput is below ``MIN_BATCH_SPEEDUP`` (3x)
  over warm single-input execution (the ISSUE's floor; target ~5x);
* any lane of a full-size verification batch diverges from a golden
  reference lane executed on the **walker** and checked against the
  workload's golden model — value or any memory word.

Emits ``benchmarks/results/BENCH_batch.json``.

Run:  PYTHONPATH=src python benchmarks/bench_batch.py
"""

import json
import sys
import time
from pathlib import Path

from repro import WORKLOADS
from repro.interp import (
    Interpreter,
    Memory,
    driver_lanes,
    image_verifier,
    run_batch,
)
from repro.interp.compile import code_memo_stats
from repro.pipeline import compile_workload

try:
    from _bench_utils import RESULTS_DIR, report
except ImportError:  # standalone run: benchmarks/ not on sys.path
    sys.path.insert(0, str(Path(__file__).parent))
    from _bench_utils import RESULTS_DIR, report

#: Hard floor for batch-vs-single inputs/sec, per workload (the ISSUE's
#: acceptance bar; the target is 5x).
MIN_BATCH_SPEEDUP = 3.0

#: Compute-bound exceptions.  The gate measures how well batching
#: amortises fixed per-input overhead, so its ceiling is
#: ``1 + overhead/compute`` — workloads whose *minimum* lane is heavy
#: compute get a lower floor, not a smaller lane.  sha's smallest lane
#: is one whole SHA-1 block (~6.7k steps, 3-10x every other workload's
#: lane), which caps its measurable speedup near 2.9x.
FLOORS = {"sha": 2.0}

#: Lanes per timed batch — the N of the headline "inputs/sec at N=10k".
BATCH_LANES = 10_000

#: Per-input work sizes.  Serving-scale inputs are small records, and a
#: small per-lane run is also the *hard* case for batching — fixed
#: per-input overhead dominates, so amortising it shows up directly.
#: Workloads whose driver cost grows faster get even smaller sizes.
SIZES = {"g721": 1, "gsm": 2, "fir": 2, "crc32": 2, "sha": 1}
DEFAULT_SIZE = 4

#: Timed repetitions per measurement; the reported time is the best of
#: these, so a GC pause on a shared CI runner cannot flip the gate.
REPEATS = 3

#: Single-input executions per timed repetition: one run is a few
#: hundred microseconds, so a short loop keeps the timer honest.
SINGLE_RUNS = 100


def _single_input_s(module, workload, n) -> float:
    """Best-of-``REPEATS`` seconds per *warm* single-input execution.

    Each iteration pays the full N=1 path deliberately — fresh memory,
    driver, interpreter (dispatch-table rebuild against the warm memo)
    — because that is exactly the per-input cost batching amortises.
    """
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(SINGLE_RUNS):
            memory = Memory(module)
            args = workload.driver(memory, n)
            interp = Interpreter(module, memory=memory)
            interp.run(workload.entry, args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / SINGLE_RUNS


def main() -> int:
    rows = {}
    failures = []
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]
        module = compile_workload(workload)
        n = SIZES.get(name, DEFAULT_SIZE)
        lanes = driver_lanes(module, workload.driver, n, BATCH_LANES)

        # Golden reference on the *walker*, accepted by the workload's
        # model: the oracle every lane is held to bit-for-bit.
        reference = run_batch(
            module, workload.entry, lanes[:1], backend="walk",
            keep_arrays=True,
            verify=lambda memory, lane: workload.verify(memory, n))
        ref = reference.lanes[0]
        if not ref.ok or ref.verified is not True:
            failures.append(f"{name}: walker reference lane failed "
                            f"({ref.trap or 'golden model rejected'})")
            continue

        # Warm the code memo once, then time.
        run_batch(module, workload.entry, lanes[:1])
        single_s = _single_input_s(module, workload, n)
        best = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            batch = run_batch(module, workload.entry, lanes)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        per_lane_s = best / BATCH_LANES

        # Full-size verification pass (untimed): every lane must match
        # the walker reference image word-for-word.
        checked = run_batch(module, workload.entry, lanes,
                            verify=image_verifier(ref.value, ref.arrays))
        identical = (checked.verified_count == BATCH_LANES
                     and batch.total_steps == checked.total_steps
                     and batch.total_steps
                     == ref.steps * BATCH_LANES)
        if not identical:
            failures.append(f"{name}: batch lanes diverged from the "
                            f"walker reference")

        speedup = single_s / per_lane_s
        floor = FLOORS.get(name, MIN_BATCH_SPEEDUP)
        if speedup < floor:
            failures.append(
                f"{name}: batch speedup {speedup:.2f}x "
                f"< {floor:.1f}x")
        rows[name] = {
            "n": n,
            "lanes": BATCH_LANES,
            "steps_per_lane": ref.steps,
            "single_input_s": single_s,
            "batch_s": best,
            "single_inputs_per_s": 1.0 / single_s,
            "batch_inputs_per_s": BATCH_LANES / best,
            "batch_speedup": speedup,
            "identical": identical,
        }
        report("batch",
               f"{name:14s} n={n} lanes={BATCH_LANES} "
               f"single={1.0 / single_s:9,.0f}/s "
               f"batch={BATCH_LANES / best:9,.0f}/s "
               f"speedup={speedup:6.2f}x "
               f"bit-exact={'yes' if identical else 'NO'}")

    worst = min((r["batch_speedup"] for r in rows.values()),
                default=0.0)
    memo = code_memo_stats().as_dict()
    report("batch",
           f"worst batch speedup {worst:.2f}x "
           f"(gate {MIN_BATCH_SPEEDUP:.1f}x); code memo: {memo}")

    payload = {
        "config": {"min_batch_speedup": MIN_BATCH_SPEEDUP,
                   "floors": FLOORS,
                   "batch_lanes": BATCH_LANES,
                   "sizes": {name: SIZES.get(name, DEFAULT_SIZE)
                             for name in sorted(WORKLOADS)},
                   "repeats": REPEATS},
        "workloads": rows,
        "code_memo": memo,
        "worst_batch_speedup": worst,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_batch.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Report helper shared by the benchmark modules.

Rows are echoed to stdout (visible with ``pytest -s``) and appended to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "a") as fh:
        fh.write(text + "\n")

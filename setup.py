"""Shim for environments without the `wheel` package (no PEP 660 builds).

`pip install -e .` needs to build an editable wheel; when the `wheel`
package is unavailable offline, `python setup.py develop` installs the
same editable mapping without it.
"""
from setuptools import setup

setup()

"""Tests for AST-level loop unrolling."""

from __future__ import annotations

import pytest

from repro.frontend import analyze, compile_source, lower_program, parse
from repro.interp import execute
from repro.passes import optimize_module, unroll_loops
from repro.pipeline import prepare_application


def run_unrolled(source, func, args, factor):
    program = parse(source)
    count = unroll_loops(program, factor)
    module = lower_program(program, analyze(program))
    optimize_module(module)
    return execute(module, func, args).value, count


SUM_SRC = """
int f(int a) {
  int s = a;
  int i;
  for (i = 0; i < 8; i++) { s += i * i; }
  return s;
}
"""


class TestUnrolling:
    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_semantics_preserved(self, factor):
        expected = execute(compile_source(SUM_SRC), "f", [5]).value
        value, count = run_unrolled(SUM_SRC, "f", [5], factor)
        assert count == 1
        assert value == expected

    def test_indivisible_factor_skipped(self):
        value, count = run_unrolled(SUM_SRC, "f", [0], 3)
        assert count == 0   # 8 % 3 != 0

    def test_non_constant_bound_skipped(self):
        src = """
        int f(int n) {
          int s = 0;
          int i;
          for (i = 0; i < n; i++) { s += i; }
          return s;
        }
        """
        value, count = run_unrolled(src, "f", [5], 2)
        assert count == 0
        assert value == 10

    def test_break_in_body_skipped(self):
        src = """
        int f(int a) {
          int s = 0;
          int i;
          for (i = 0; i < 8; i++) { if (i == a) break; s += i; }
          return s;
        }
        """
        value, count = run_unrolled(src, "f", [3], 2)
        assert count == 0
        assert value == 3

    def test_induction_write_in_body_skipped(self):
        src = """
        int f(int a) {
          int s = 0;
          int i;
          for (i = 0; i < 8; i++) { i += a; s += 1; }
          return s;
        }
        """
        _, count = run_unrolled(src, "f", [0], 2)
        assert count == 0

    def test_le_bound_and_step(self):
        src = """
        int f() {
          int s = 0;
          int i;
          for (i = 2; i <= 16; i += 2) { s += i; }
          return s;
        }
        """
        expected = sum(range(2, 17, 2))
        value, count = run_unrolled(src, "f", [], 4)
        assert count == 1
        assert value == expected

    def test_nested_loop_unrolls_inner(self):
        src = """
        int f() {
          int s = 0;
          int i; int j;
          for (i = 0; i < 4; i++) {
            for (j = 0; j < 4; j++) { s += i * j; }
          }
          return s;
        }
        """
        value, count = run_unrolled(src, "f", [], 4)
        # The outer loop unrolls first (1), creating four copies of the
        # inner loop that each unroll in turn (4).
        assert count == 5
        assert value == sum(i * j for i in range(4) for j in range(4))

    def test_factor_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            unroll_loops(parse(SUM_SRC), 1)


class TestUnrollGrowsBlocks:
    def test_gsm_inner_loop_unrolled_gives_bigger_hot_block(self):
        base = prepare_application("gsm", n=16)
        unrolled = prepare_application("gsm", n=16, unroll=8)
        assert unrolled.hot_dfg.n > base.hot_dfg.n * 3

    def test_unrolled_output_still_correct(self):
        # prepare_application verifies against the golden model already;
        # reaching here without AssertionError is the test.
        prepare_application("gsm", n=16, unroll=8, verify=True)
        prepare_application("fir", n=16, unroll=4, verify=True)

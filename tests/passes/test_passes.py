"""Unit tests for the individual optimisation passes."""

from __future__ import annotations

import pytest

from repro.ir import (
    Const,
    Function,
    Opcode,
    Reg,
    binop,
    br,
    copy_reg,
    jmp,
    load,
    ret,
    store,
    verify_function,
)
from repro.passes import (
    coalesce_copies,
    eliminate_dead_code,
    fold_constants,
    local_value_numbering,
    propagate_copies,
    simplify_cfg,
)
from repro.passes.constant_folding import evaluate_pure_op


def single_block(*insns, params=()):
    func = Function("f", params=list(params))
    bb = func.add_block("entry")
    for insn in insns:
        bb.append(insn)
    return func, bb


class TestConstantFolding:
    def test_folds_pure_constants(self):
        func, bb = single_block(
            binop(Opcode.ADD, "x", Const(2), Const(3)),
            ret(Reg("x")),
        )
        assert fold_constants(func)
        assert bb.instructions[0].opcode is Opcode.COPY
        assert bb.instructions[0].operands[0] == Const(5)

    def test_division_by_zero_untouched(self):
        func, bb = single_block(
            binop(Opcode.DIV, "x", Const(1), Const(0)),
            ret(Reg("x")),
        )
        assert not fold_constants(func)
        assert bb.instructions[0].opcode is Opcode.DIV

    @pytest.mark.parametrize("op,a,b,expected", [
        (Opcode.ADD, 2 ** 31 - 1, 1, -(2 ** 31)),
        (Opcode.MUL, 65536, 65536, 0),
        (Opcode.ASHR, -8, 1, -4),
        (Opcode.LSHR, -8, 1, 0x7FFFFFFC),
        (Opcode.SHL, 1, 33, 2),        # shift amounts mod 32
        (Opcode.DIV, -7, 2, -3),
        (Opcode.REM, -7, 2, -1),
    ])
    def test_evaluate_semantics(self, op, a, b, expected):
        assert evaluate_pure_op(op, [a, b]) == expected

    def test_identity_simplifications(self):
        func, bb = single_block(
            binop(Opcode.ADD, "x", Reg("a"), Const(0)),
            binop(Opcode.MUL, "y", Reg("a"), Const(1)),
            binop(Opcode.MUL, "z", Reg("a"), Const(0)),
            binop(Opcode.AND, "w", Reg("a"), Const(0)),
            ret(Reg("x")),
            params=["a"],
        )
        assert fold_constants(func)
        assert all(i.opcode is Opcode.COPY
                   for i in bb.instructions[:4])

    def test_select_constant_condition(self):
        func, bb = single_block(
            binop(Opcode.ADD, "t", Reg("a"), Const(1)),
            params=["a"],
        )
        bb.append(
            __import__("repro.ir", fromlist=["select"]).select(
                "s", Const(1), Reg("t"), Reg("a")))
        bb.append(ret(Reg("s")))
        assert fold_constants(func)
        assert bb.instructions[1].opcode is Opcode.COPY


class TestCopyPropagation:
    def test_local_propagation(self):
        func, bb = single_block(
            copy_reg("x", Reg("a")),
            binop(Opcode.ADD, "y", Reg("x"), Reg("x")),
            ret(Reg("y")),
            params=["a"],
        )
        assert propagate_copies(func)
        assert bb.instructions[1].operands == (Reg("a"), Reg("a"))

    def test_invalidated_by_redefinition(self):
        func, bb = single_block(
            copy_reg("x", Reg("a")),
            binop(Opcode.ADD, "a", Reg("a"), Const(1)),
            binop(Opcode.ADD, "y", Reg("x"), Const(0)),
            ret(Reg("y")),
            params=["a"],
        )
        propagate_copies(func)
        # x must NOT read the incremented a.
        assert bb.instructions[2].operands[0] == Reg("x")

    def test_coalescing_removes_temp(self):
        func, bb = single_block(
            binop(Opcode.ADD, "t", Reg("a"), Const(1)),
            copy_reg("x", Reg("t")),
            ret(Reg("x")),
            params=["a"],
        )
        assert coalesce_copies(func)
        assert len(bb.instructions) == 2
        assert bb.instructions[0].dest == "x"

    def test_coalescing_requires_single_use(self):
        func, bb = single_block(
            binop(Opcode.ADD, "t", Reg("a"), Const(1)),
            copy_reg("x", Reg("t")),
            binop(Opcode.ADD, "y", Reg("t"), Const(2)),
            ret(Reg("y")),
            params=["a"],
        )
        assert not coalesce_copies(func)


class TestDCE:
    def test_removes_unused_pure(self):
        func, bb = single_block(
            binop(Opcode.MUL, "dead", Reg("a"), Reg("a")),
            ret(Reg("a")),
            params=["a"],
        )
        assert eliminate_dead_code(func)
        assert len(bb.instructions) == 1

    def test_keeps_stores_and_calls(self):
        func, bb = single_block(
            store("m", Const(0), Reg("a")),
            ret(Reg("a")),
            params=["a"],
        )
        assert not eliminate_dead_code(func)

    def test_removes_overwritten_def(self):
        func, bb = single_block(
            copy_reg("x", Const(1)),
            copy_reg("x", Const(2)),
            ret(Reg("x")),
        )
        assert eliminate_dead_code(func)
        assert len(bb.instructions) == 2
        assert bb.instructions[0].operands[0] == Const(2)

    def test_keeps_def_with_intervening_use(self):
        func, bb = single_block(
            copy_reg("x", Const(1)),
            binop(Opcode.ADD, "y", Reg("x"), Const(1)),
            copy_reg("x", Const(2)),
            binop(Opcode.ADD, "z", Reg("y"), Reg("x")),
            ret(Reg("z")),
        )
        assert not eliminate_dead_code(func)


class TestLVN:
    def test_common_subexpression(self):
        func, bb = single_block(
            binop(Opcode.ADD, "x", Reg("a"), Reg("b")),
            binop(Opcode.ADD, "y", Reg("a"), Reg("b")),
            binop(Opcode.MUL, "z", Reg("x"), Reg("y")),
            ret(Reg("z")),
            params=["a", "b"],
        )
        assert local_value_numbering(func)
        assert bb.instructions[1].opcode is Opcode.COPY

    def test_commutative_matching(self):
        func, bb = single_block(
            binop(Opcode.ADD, "x", Reg("a"), Reg("b")),
            binop(Opcode.ADD, "y", Reg("b"), Reg("a")),
            ret(Reg("y")),
            params=["a", "b"],
        )
        assert local_value_numbering(func)
        assert bb.instructions[1].opcode is Opcode.COPY

    def test_noncommutative_not_matched(self):
        func, bb = single_block(
            binop(Opcode.SUB, "x", Reg("a"), Reg("b")),
            binop(Opcode.SUB, "y", Reg("b"), Reg("a")),
            ret(Reg("y")),
            params=["a", "b"],
        )
        assert not local_value_numbering(func)

    def test_redefinition_blocks_reuse(self):
        func, bb = single_block(
            binop(Opcode.ADD, "x", Reg("a"), Reg("b")),
            binop(Opcode.ADD, "a", Reg("a"), Const(1)),
            binop(Opcode.ADD, "y", Reg("a"), Reg("b")),
            ret(Reg("y")),
            params=["a", "b"],
        )
        assert not local_value_numbering(func)

    def test_loads_killed_by_store(self):
        func, bb = single_block(
            load("x", "m", Reg("i")),
            store("m", Reg("i"), Const(0)),
            load("y", "m", Reg("i")),
            ret(Reg("y")),
            params=["i"],
        )
        assert not local_value_numbering(func)

    def test_loads_cse_without_store(self):
        func, bb = single_block(
            load("x", "m", Reg("i")),
            load("y", "m", Reg("i")),
            binop(Opcode.ADD, "z", Reg("x"), Reg("y")),
            ret(Reg("z")),
            params=["i"],
        )
        assert local_value_numbering(func)
        assert bb.instructions[1].opcode is Opcode.COPY


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        func = Function("f")
        entry = func.add_block("entry")
        t = func.add_block("t")
        f_ = func.add_block("f")
        entry.append(br(Const(1), "t", "f"))
        t.append(ret(Const(1)))
        f_.append(ret(Const(0)))
        assert simplify_cfg(func)
        labels = [b.label for b in func.blocks]
        assert "f" not in labels

    def test_straightline_merge(self):
        func = Function("f", params=["a"])
        entry = func.add_block("entry")
        next_ = func.add_block("next")
        entry.append(copy_reg("x", Reg("a")))
        entry.append(jmp("next"))
        next_.append(ret(Reg("x")))
        assert simplify_cfg(func)
        assert len(func.blocks) == 1
        assert verify_function(func) == []

    def test_empty_block_forwarding(self):
        func = Function("f", params=["c"])
        entry = func.add_block("entry")
        hop = func.add_block("hop")
        t = func.add_block("t")
        f_ = func.add_block("f")
        entry.append(br(Reg("c"), "hop", "f"))
        hop.append(jmp("t"))
        t.append(ret(Const(1)))
        f_.append(ret(Const(0)))
        assert simplify_cfg(func)
        assert func.entry.terminator.targets == ("t", "f")

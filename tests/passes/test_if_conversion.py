"""Tests for the if-conversion pass."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp import execute
from repro.ir import Opcode, verify_function
from repro.passes import IfConverter, optimize_module
from repro.passes.pass_manager import optimize_function


def compile_and_convert(source, speculate_loads=True):
    module = compile_source(source)
    optimize_module(module)   # default pipeline includes if-conversion
    return module


def count_blocks(module, func):
    return len(module.functions[func].blocks)


def count_selects(module, func):
    return sum(1 for insn in module.functions[func].instructions()
               if insn.opcode is Opcode.SELECT)


class TestDiamond:
    SRC = """
    int f(int a, int b) {
      int r;
      if (a > b) { r = a - b; } else { r = b - a; }
      return r;
    }
    """

    def test_collapses_to_one_block(self):
        module = compile_and_convert(self.SRC)
        assert count_blocks(module, "f") == 1

    def test_produces_select(self):
        module = compile_and_convert(self.SRC)
        assert count_selects(module, "f") == 1

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (4, 4), (-2, 7)])
    def test_semantics_preserved(self, a, b):
        plain = compile_source(self.SRC)
        converted = compile_and_convert(self.SRC)
        assert execute(plain, "f", [a, b]).value == \
            execute(converted, "f", [a, b]).value


class TestTriangle:
    SRC = """
    int f(int a) {
      int r = a;
      if (a < 0) { r = -a; }
      return r;
    }
    """

    def test_collapses(self):
        module = compile_and_convert(self.SRC)
        assert count_blocks(module, "f") == 1
        assert count_selects(module, "f") == 1

    @pytest.mark.parametrize("a", [5, -5, 0])
    def test_abs_semantics(self, a):
        module = compile_and_convert(self.SRC)
        assert execute(module, "f", [a]).value == abs(a)


class TestGuards:
    def test_stores_not_speculated(self):
        src = """
        int m[4];
        void f(int a) {
          if (a > 0) { m[0] = a; }
        }
        """
        module = compile_and_convert(src)
        # The store arm cannot be converted: branch remains.
        assert count_blocks(module, "f") > 1

    def test_calls_not_speculated(self):
        src = """
        int g(int x) { return x; }
        int f(int a) {
          int r = 0;
          if (a > 0) { r = g(a); }
          return r;
        }
        """
        module = compile_and_convert(src)
        assert count_blocks(module, "f") > 1

    def test_loads_speculated_by_default(self):
        src = """
        int t[4] = {1, 2, 3, 4};
        int f(int a) {
          int r = 0;
          if (a > 0) { r = t[a & 3]; }
          return r;
        }
        """
        module = compile_and_convert(src)
        assert count_blocks(module, "f") == 1

    def test_loads_not_speculated_when_disabled(self):
        src = """
        int t[4] = {1, 2, 3, 4};
        int f(int a) {
          int r = 0;
          if (a > 0) { r = t[a & 3]; }
          return r;
        }
        """
        module = compile_source(src)
        for func in module.functions.values():
            optimize_function(func, if_convert=False)
            IfConverter(speculate_loads=False).run(func)
        assert count_blocks(module, "f") > 1

    def test_size_guard(self):
        # 12 assignments in the arm; with max_speculated=4 nothing fires.
        body = "; ".join(f"r = r + {i}" for i in range(12))
        src = f"""
        int f(int a) {{
          int r = 0;
          if (a > 0) {{ {body}; }}
          return r;
        }}
        """
        module = compile_source(src)
        func = module.functions["f"]
        optimize_function(func, if_convert=False)
        before = len(func.blocks)
        IfConverter(max_speculated=4).run(func)
        assert len(func.blocks) == before


class TestNestedAndChained:
    def test_nested_diamonds_fully_convert(self):
        src = """
        int f(int a, int b) {
          int r;
          if (a > 0) {
            r = (b > 0) ? a + b : a - b;
          } else {
            r = (b > 0) ? b - a : -a - b;
          }
          return r;
        }
        """
        module = compile_and_convert(src)
        assert count_blocks(module, "f") == 1
        assert count_selects(module, "f") >= 3
        for a in (-2, 0, 3):
            for b in (-1, 0, 4):
                expected = (a + b if b > 0 else a - b) if a > 0 else \
                    (b - a if b > 0 else -a - b)
                assert execute(module, "f", [a, b]).value == expected

    def test_condition_clobber_guard(self):
        # The merged register is also the branch condition.
        src = """
        int f(int c) {
          if (c > 0) { c = c - 1; } else { c = c + 1; }
          return c;
        }
        """
        module = compile_and_convert(src)
        assert execute(module, "f", [5]).value == 4
        assert execute(module, "f", [-5]).value == -4

    def test_adpcm_decode_body_is_one_block(self, adpcm_decode_app):
        # The paper's Fig. 3: the whole decoder loop body if-converts.
        func = adpcm_decode_app.module.functions["adpcm_decode"]
        body_blocks = [b for b in func.blocks
                       if b.label.startswith("for_body")]
        assert len(body_blocks) == 1
        selects = sum(1 for i in body_blocks[0].instructions
                      if i.opcode is Opcode.SELECT)
        assert selects >= 8

    def test_functions_verify_after_conversion(self, adpcm_encode_app):
        for func in adpcm_encode_app.module.functions.values():
            assert verify_function(func) == []

"""Bit-exactness and structure tests for the MiniC workloads."""

from __future__ import annotations

import pytest

from repro.pipeline import prepare_application
from repro.workloads import WORKLOADS, get_workload, paper_benchmarks
from repro.workloads import adpcm, crc, fir, gsm, mixer


class TestGoldenModels:
    """The golden models agree with hand-computed values."""

    def test_adpcm_roundtrip_tracks_signal(self):
        pcm = adpcm.make_pcm_input(200)
        codes = adpcm.encode_golden(pcm)
        decoded = adpcm.decode_golden(codes, 200)
        assert len(codes) == 100
        assert len(decoded) == 200
        # ADPCM is lossy, but after convergence it tracks within a few
        # step sizes; compare the tail loosely.
        err = [abs(a - b) for a, b in zip(pcm[50:], decoded[50:])]
        assert sum(err) / len(err) < 2000

    def test_adpcm_encode_known_prefix(self):
        # Constant zero input encodes to delta=0 nibbles.
        codes = adpcm.encode_golden([0, 0, 0, 0])
        assert codes == [0, 0]

    def test_crc32_known_vector(self):
        # CRC-32 of "123456789" is 0xCBF43926.
        data = [ord(c) for c in "123456789"]
        value = crc.crc32_golden(data) & 0xFFFFFFFF
        assert value == 0xCBF43926

    def test_fir_impulse_response(self):
        # A Q15 unit impulse reproduces the coefficients: output k sees
        # coeff[7-k] while the impulse is inside its window.
        impulse = [0] * 7 + [1 << 15] + [0] * 16
        out = fir.fir_golden(impulse)
        assert out[:8] == list(reversed(fir.DEFAULT_COEFFS))
        assert all(v == 0 for v in out[8:])

    def test_gsm_zero_input_is_zero(self):
        assert gsm.short_term_golden([0] * 16) == [0] * 16

    def test_gsm_saturation_engages(self):
        out = gsm.short_term_golden([32767] * 50)
        assert all(-32768 <= v <= 32767 for v in out)

    def test_mixer_deterministic(self):
        a = mixer.mix_golden([1, 2, 3])
        b = mixer.mix_golden([1, 2, 3])
        assert a == b
        assert a != mixer.mix_golden([1, 2, 4])


class TestMiniCBitExactness:
    """Compiled + optimised MiniC matches the golden models exactly.

    ``prepare_application(verify=True)`` performs the comparison; these
    tests also check a second, different problem size.
    """

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_verify_at_default_and_alt_size(self, name):
        prepare_application(name, n=48, verify=True)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_verify_without_ifconversion(self, name):
        # The optimisation pipeline must be semantics-preserving with and
        # without if-conversion.
        prepare_application(name, n=32, verify=True, if_convert=False)


class TestRegistry:
    def test_paper_benchmarks_are_three(self):
        names = sorted(w.name for w in paper_benchmarks())
        assert names == ["adpcm-decode", "adpcm-encode", "gsm"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_all_have_descriptions(self):
        for workload in WORKLOADS.values():
            assert workload.description
            assert workload.default_n > 0


class TestPaperStructure:
    """Structural facts the paper relies on."""

    def test_adpcm_decode_hot_block_is_select_rich(self, adpcm_decode_app):
        from repro.ir import Opcode
        hot = adpcm_decode_app.hot_dfg
        selects = sum(1 for node in hot.nodes
                      if node.opcode is Opcode.SELECT)
        assert hot.n >= 30          # Fig. 3 scale
        assert selects >= 8         # SEL nodes from if-conversion

    def test_adpcm_decode_has_table_loads(self, adpcm_decode_app):
        from repro.ir import Opcode
        hot = adpcm_decode_app.hot_dfg
        loads = [n for n in hot.nodes if n.opcode is Opcode.LOAD]
        arrays = {n.insns[0].array for n in loads}
        assert {"indexTable", "stepsizeTable"} <= arrays

    def test_hot_block_dominates_profile(self, adpcm_decode_app):
        hot = adpcm_decode_app.hot_dfg
        total = sum(d.weight * d.n for d in adpcm_decode_app.dfgs)
        assert hot.weight * hot.n / total > 0.8


class TestG721:
    def test_fmult_known_values(self):
        from repro.workloads.g721 import _fmult
        # fmult of zeros is zero; sign rule follows an ^ srn.
        assert _fmult(0, 0) == 0
        assert _fmult(100, 0) == 0
        assert _fmult(-100, 50) <= 0
        assert _fmult(100, 50) >= 0

    def test_fmult_block_is_ise_candidate(self):
        """The whole fmult body if-converts into one block — the classic
        Tensilica-era ISE example — and yields a large 3-input cut."""
        from repro.core import Constraints, SearchLimits, find_best_cut
        from repro.pipeline import prepare_application

        app = prepare_application("g721", n=32)
        hot = app.hot_dfg
        assert hot.name == "fmult/entry"
        assert hot.n >= 25
        res = find_best_cut(hot, Constraints(nin=3, nout=1),
                            limits=SearchLimits(max_considered=500_000))
        assert res.cut is not None
        assert res.cut.size >= 15

"""Campaign orchestration: telemetry, failure artifacts, and the
``Session.fuzz`` / ``repro fuzz`` entry points."""

from __future__ import annotations

import json

import strategies as sh
from repro.cli import main
from repro.fuzz import SHAPES, run_campaign
from repro.session import Session


def test_small_campaign_is_clean_and_covers_shapes():
    result = run_campaign(count=12, seed=0)
    assert result.ok
    assert result.programs == 12
    # Round-robin scheduling: every shape gets 12 / len(SHAPES) slots.
    assert set(result.by_shape) == set(SHAPES)
    assert all(n == 12 // len(SHAPES) for n in result.by_shape.values())
    assert result.cuts > 0, "interesting shapes must yield cuts"
    assert result.rewritten_blocks > 0
    assert not result.failures


def test_campaign_pins_one_shape():
    result = run_campaign(count=4, seed=0, shape="memory")
    assert result.ok
    assert result.by_shape == {"memory": 4}


def test_failing_campaign_writes_artifacts(tmp_path):
    """A planted miscompile produces a failure record plus an artifact
    directory holding the original, the reduced reproducer, and the
    machine-readable report."""
    result = run_campaign(count=2, seed=7, shape="chain",
                          artifacts=tmp_path,
                          inject=sh.inject_opcode_flip)
    assert not result.ok
    assert result.failures
    record = result.failures[0]
    artifact_dir = tmp_path / f"{record.shape}-seed{record.seed}"
    assert (artifact_dir / "original.c").is_file()
    assert (artifact_dir / "reduced.c").is_file()
    report = json.loads((artifact_dir / "report.json").read_text())
    assert report["report"]["failures"]
    assert record.reduced_lines <= 15
    reduced = (artifact_dir / "reduced.c").read_text()
    assert len(reduced.splitlines()) == record.reduced_lines


def test_session_fuzz_facade():
    result = Session().fuzz(count=6, seed=3)
    assert result.ok
    assert result.programs == 6
    payload = result.as_dict()
    assert payload["programs"] == 6
    assert payload["ok"] is True


def test_cli_fuzz_smoke(capsys):
    assert main(["fuzz", "--count", "6", "--seed", "0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["programs"] == 6
    assert payload["ok"] is True


def test_cli_fuzz_shape_pin(capsys):
    assert main(["fuzz", "--count", "3", "--seed", "1",
                 "--shape", "chain"]) == 0
    out = capsys.readouterr().out
    assert "chain" in out

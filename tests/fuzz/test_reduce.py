"""The shrinking reducer: planted miscompiles must minimise to a
hand-readable program (the ISSUE's bar is <= 15 source lines)."""

from __future__ import annotations

import pytest

import strategies as sh
from repro.fuzz import (
    GeneratedProgram,
    generate_program,
    reduce_program,
    run_differential,
)


# Seeds are pinned to programs where the *first* flippable opcode is
# live — in branchy programs a flip can land in an untaken arm.
@pytest.mark.parametrize("shape,seed",
                         [("chain", 7), ("multiout", 7), ("branchy", 1)])
def test_injected_miscompile_shrinks(shape, seed):
    """An opcode flip planted after optimisation is (a) caught by the
    oracle and (b) reduced to a minimal reproducer."""
    program = generate_program(seed, shape)
    report = run_differential(program, inject=sh.inject_opcode_flip)
    assert not report.ok, "planted flip must diverge"
    assert any(f.stage == "optimizer" for f in report.failures)

    result = reduce_program(program, inject=sh.inject_opcode_flip)
    assert result.stage, "reducer must confirm the failure"
    assert result.shrank
    assert result.reduced_lines <= 15, result.source
    assert result.reduced_lines < result.original_lines
    # The artifact itself must still reproduce the divergence.
    replay = run_differential(
        GeneratedProgram(seed=program.seed, shape=program.shape,
                         source=result.source,
                         arg_sets=program.arg_sets),
        inject=sh.inject_opcode_flip)
    assert not replay.ok


def test_healthy_program_is_not_reduced():
    """A passing program comes back untouched with an empty stage."""
    program = generate_program(3, "chain")
    result = reduce_program(program)
    assert result.stage == ""
    assert not result.shrank
    assert result.source == program.source


def test_reducer_bounds_its_tests():
    """``max_tests`` caps oracle invocations even on stubborn inputs."""
    program = generate_program(7, "mixed")
    result = reduce_program(program, inject=sh.inject_opcode_flip,
                            max_tests=25)
    assert result.tests <= 25

#!/usr/bin/env python
"""Re-pin the generated corpus cases after an intentional generator
change.

Regenerates every ``<shape>-seed<N>.json`` under ``corpus/`` from its
recorded (seed, shape), validates it through the full differential
oracle, and rewrites the file.  Hand-written ``hand-*.json`` cases are
left untouched — those pin bug classes, not generator output.

Run:  PYTHONPATH=src python tests/fuzz/repin_corpus.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.fuzz import generate_program, run_differential

CORPUS = Path(__file__).parent / "corpus"


def main() -> int:
    failed = 0
    for path in sorted(CORPUS.glob("*.json")):
        if path.stem.startswith("hand-"):
            print(f"{path.stem}: hand-written, skipped")
            continue
        case = json.loads(path.read_text())
        program = generate_program(case["seed"], case["shape"])
        report = run_differential(program)
        if not report.ok:
            print(f"{path.stem}: REGENERATED CASE FAILS THE ORACLE — "
                  f"not rewritten ({report.failures})")
            failed += 1
            continue
        case.update(
            seed=program.seed, shape=program.shape,
            entry=program.entry, source=program.source,
            arg_sets=[list(args) for args in program.arg_sets])
        case["note"] = (f"pinned {program.shape} case: {report.cuts} "
                        f"cuts, {report.rewritten_blocks} blocks "
                        f"rewritten, {report.baseline_steps} steps")
        path.write_text(json.dumps(case, indent=2) + "\n")
        print(f"{path.stem}: re-pinned ({report.cuts} cuts)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""The seeded program generator: determinism, shape coverage, and the
invalid-program corpus against the frontend's structured diagnostics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

import strategies as sh
from repro.frontend import analyze, parse
from repro.frontend.errors import LexError, ParseError, SemanticError
from repro.fuzz import (
    INVALID_KINDS,
    SHAPES,
    check_invalid_corpus,
    generate_invalid,
    generate_program,
)

EXPECTED_ERROR = {"lex": LexError, "parse": ParseError,
                  "sema": SemanticError}


@pytest.mark.parametrize("shape", SHAPES)
def test_generation_is_deterministic(shape):
    """Same (seed, shape) -> byte-identical source and inputs."""
    first = generate_program(1234, shape)
    second = generate_program(1234, shape)
    assert first == second
    assert first.shape == shape
    # A different seed must not collapse to the same program.
    assert generate_program(1235, shape).source != first.source


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("seed", [0, 1, 17])
def test_every_shape_compiles_and_runs(shape, seed):
    """All shapes produce valid MiniC that survives the full pipeline
    prefix (parse -> sema -> lower -> optimise) without diagnostics."""
    program = generate_program(seed, shape)
    module = sh.compile_program(program)
    assert program.entry in module.functions
    assert program.arg_sets, "generator must supply driving inputs"


@settings(max_examples=30, deadline=None)
@given(sh.invalid_programs())
def test_invalid_programs_raise_structured_errors(invalid):
    """Corrupted programs fail in their declared stage with the
    frontend's structured diagnostic — never a raw traceback."""
    assert invalid.stage in EXPECTED_ERROR
    with pytest.raises(EXPECTED_ERROR[invalid.stage]) as excinfo:
        analyze(parse(invalid.source))
    message = str(excinfo.value)
    assert message.strip(), "diagnostic must carry a message"
    assert "Traceback" not in message


def test_invalid_corpus_sweep_is_clean():
    """The campaign-facing sweep agrees: no invalid program is accepted,
    misclassified, or escapes as an unstructured exception."""
    assert check_invalid_corpus(count=60, seed=0) == []


def test_invalid_kinds_all_reachable():
    """Every corruption stage appears within a modest seed window."""
    seen = {generate_invalid(seed).stage for seed in range(60)}
    assert seen == set(INVALID_KINDS)

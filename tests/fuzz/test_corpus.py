"""Seed-pinned regression corpus: every case under ``corpus/`` replays
through the full differential stack on every run.

Two kinds of cases live there:

* ``<shape>-seed<N>.json`` — generator output pinned by (seed, shape),
  chosen so selection finds cuts and the rewriter fires.  For these the
  stored source must also match what the generator produces *today*:
  silent generator drift would otherwise quietly retire a regression.
* ``hand-*.json`` — hand-written programs pinning past bug classes
  (multi-output region codegen, step-budget expiry inside a callee).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import GeneratedProgram, generate_program, run_differential

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text())


def test_corpus_is_populated():
    names = {path.stem for path in CASES}
    assert len(CASES) >= 8
    assert any(name.startswith("hand-") for name in names)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    """The stored source passes the whole oracle: three backends,
    baseline vs rewritten, single vs batched lanes."""
    case = load(path)
    program = GeneratedProgram(
        seed=case["seed"], shape=case["shape"], source=case["source"],
        arg_sets=tuple(tuple(args) for args in case["arg_sets"]),
        entry=case.get("entry", "f"))
    report = run_differential(program)
    assert report.ok, "\n".join(str(f) for f in report.failures)


@pytest.mark.parametrize(
    "path", [p for p in CASES if not p.stem.startswith("hand-")],
    ids=lambda p: p.stem)
def test_generator_has_not_drifted(path):
    """Regenerating (seed, shape) still yields the stored program.

    If this fails after an *intentional* generator change, re-pin the
    corpus: ``python tests/fuzz/repin_corpus.py``.
    """
    case = load(path)
    regenerated = generate_program(case["seed"], case["shape"])
    assert regenerated.source == case["source"]
    assert [list(a) for a in regenerated.arg_sets] == case["arg_sets"]

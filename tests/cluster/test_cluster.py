"""Tests for the leader/worker sweep fabric."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cluster import ClusterLeader, run_cluster, worker_loop
from repro.cluster.worker import resolve_callable
from repro.explore import SweepSpec, run_sweep
from repro.store import ArtifactStore
from repro.wire import connect, recv_msg, send_msg


def _echo(payload):
    return ("ran", payload)


class TestLeaderProtocol:
    def test_thread_worker_drains_queue(self):
        leader = ClusterLeader("tests.cluster.test_cluster:_echo",
                               list(range(5)),
                               size_hints=[5, 4, 3, 2, 1]).start()
        try:
            done = worker_loop(leader.address, name="t1")
            assert done == 5
            assert leader.wait(timeout=5)
            results, reports = leader.results()
            assert results == [("ran", i) for i in range(5)]
            assert {r.worker for r in reports} == {"t1"}
            # Largest-first hand-out: one puller sees strict hint order.
            assert [r.index for r in reports] == [0, 1, 2, 3, 4]
        finally:
            leader.shutdown()

    def test_two_workers_share_one_queue(self):
        leader = ClusterLeader("tests.cluster.test_cluster:_echo",
                               list(range(20))).start()
        try:
            threads = [
                threading.Thread(target=worker_loop,
                                 args=(leader.address,),
                                 kwargs={"name": f"t{i}"})
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert leader.wait(timeout=5)
            results, reports = leader.results()
            assert results == [("ran", i) for i in range(20)]
            assert len(reports) == 20
        finally:
            leader.shutdown()

    def test_unit_lost_to_a_dead_worker_is_requeued(self):
        leader = ClusterLeader("tests.cluster.test_cluster:_echo",
                               ["a", "b"]).start()
        try:
            # A worker claims the first unit, then dies without
            # reporting: its connection close must requeue the unit.
            sock = connect(leader.address, timeout=5.0)
            send_msg(sock, ("hello", "doomed"))
            assert recv_msg(sock)[0] == "welcome"
            send_msg(sock, ("get",))
            tag, index, _payload = recv_msg(sock)
            assert tag == "unit"
            sock.close()
            done = worker_loop(leader.address, name="rescuer")
            assert done == 2
            assert leader.wait(timeout=5)
            results, reports = leader.results()
            assert results == [("ran", "a"), ("ran", "b")]
            assert {r.worker for r in reports} == {"rescuer"}
        finally:
            leader.shutdown()

    def test_duplicate_results_are_ignored(self):
        leader = ClusterLeader("tests.cluster.test_cluster:_echo",
                               ["x"]).start()
        try:
            leader.complete(0, ("ran", "x"), 0.1, "w1")
            leader.complete(0, ("ran", "x"), 0.2, "w2")
            results, reports = leader.results()
            assert results == [("ran", "x")]
            assert len(reports) == 1
            assert reports[0].worker == "w1"
        finally:
            leader.shutdown()

    def test_resolve_callable_rejects_bad_paths(self):
        with pytest.raises(ValueError):
            resolve_callable("no_colon_here")
        with pytest.raises(ValueError):
            resolve_callable("repro.cluster.worker:WAIT_POLL_S")


class TestRunCluster:
    def test_local_workers_match_serial(self):
        payloads = [0.0, 0.01, 0.0, 0.02]
        results, reports = run_cluster(
            "repro.cluster.worker:_sleep_unit", payloads,
            size_hints=[1, 2, 1, 3], workers=2)
        assert results == payloads
        assert sorted(r.index for r in reports) == [0, 1, 2, 3]
        assert all(r.elapsed_s >= 0.0 for r in reports)

    def test_zero_workers_run_inline(self):
        results, reports = run_cluster(
            "repro.cluster.worker:_sleep_unit", [0.0, 0.0], workers=0)
        assert results == [0.0, 0.0]
        assert {r.worker for r in reports} == {"leader-inline"}

    def test_empty_payloads(self):
        assert run_cluster("repro.cluster.worker:_sleep_unit",
                           [], workers=2) == ([], [])


def _small_spec():
    return SweepSpec(
        workloads=("fir", "crc32"),
        ports=((2, 1), (4, 2)),
        ninstrs=(2,),
        algorithms=("iterative", "maxmiso"),
        limit=100_000,
        n=16,
    )


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


class TestClusterSweep:
    """The tentpole invariant: a sharded sweep is bit-identical to a
    serial one — same rows (modulo wall time), same store key set."""

    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serial-store")
        store = ArtifactStore(f"sqlite:{root / 'store.sqlite'}")
        outcome = run_sweep(_small_spec(), store=store)
        return outcome, store

    def test_cluster_two_workers_bit_identical(self, serial,
                                               tmp_path_factory):
        serial_outcome, serial_store = serial
        root = tmp_path_factory.mktemp("cluster-store")
        store = ArtifactStore(f"sqlite:{root / 'store.sqlite'}")
        outcome = run_sweep(_small_spec(), store=store, cluster=2)
        assert _strip_timing(outcome.rows) == \
            _strip_timing(serial_outcome.rows)
        # The persistent media hold the same artifact key sets: the
        # cluster's workers spilled exactly the entries the serial
        # warm phase wrote.
        assert sorted(store.backend.keys()) == \
            sorted(serial_store.backend.keys())

    def test_cluster_warm_identity_on_warm_store(self, serial):
        # Re-sweeping the serial store through the cluster path hits
        # the pre-warmed artifacts: zero warm units, identical rows.
        serial_outcome, serial_store = serial
        outcome = run_sweep(_small_spec(), store=serial_store,
                            cluster=2)
        assert outcome.warm_units == 0
        assert _strip_timing(outcome.rows) == \
            _strip_timing(serial_outcome.rows)

    def test_unit_telemetry_reaches_the_outcome(self, tmp_path):
        store = ArtifactStore(f"sqlite:{tmp_path / 'store.sqlite'}")
        outcome = run_sweep(_small_spec(), store=store, cluster=2)
        assert outcome.warm_units > 0
        assert len(outcome.unit_reports) == outcome.warm_units
        for record in outcome.unit_reports:
            assert set(record) == {"index", "size_hint", "elapsed_s",
                                   "worker", "status", "attempts",
                                   "error"}
            assert record["status"] == "ok"
            assert record["size_hint"] > 0
            assert record["elapsed_s"] >= 0
        indexes = sorted(r["index"] for r in outcome.unit_reports)
        assert indexes == list(range(outcome.warm_units))


class TestRemoteWorkerSweep:
    def test_listen_plus_remote_worker(self, tmp_path):
        # Leader accepts on an ephemeral port with no local workers; a
        # thread plays the remote `repro worker --connect` node.
        store = ArtifactStore(f"sqlite:{tmp_path / 'store.sqlite'}")
        joined = []

        def _lurk():
            # Poll until the leader is accepting, then serve it.
            address = None
            while address is None:
                address = _found_address.get("addr")
            joined.append(worker_loop(address, name="remote"))

        _found_address: dict = {}
        seen_lines = []

        def _echo_line(line):
            seen_lines.append(line)
            if "repro worker --connect" in line:
                _found_address["addr"] = line.rsplit(
                    "--connect ", 1)[1].rstrip(")")

        lurker = threading.Thread(target=_lurk, daemon=True)
        lurker.start()
        outcome = run_sweep(_small_spec(), store=store, cluster=0,
                            listen="127.0.0.1:0", echo=_echo_line)
        lurker.join(timeout=10)
        assert joined and joined[0] == outcome.warm_units
        assert {r["worker"] for r in outcome.unit_reports} == {"remote"}
        assert len(outcome.rows) == len(_small_spec().expand())


def test_parse_address_forms():
    from repro.wire import parse_address
    assert parse_address("127.0.0.1:9", default_port=1) \
        == ("127.0.0.1", 9)
    assert parse_address("tcp://h:9", default_port=1) == ("h", 9)
    assert parse_address("h", default_port=7) == ("h", 7)


def test_leader_port_is_reusable_after_shutdown():
    leader = ClusterLeader("tests.cluster.test_cluster:_echo",
                           []).start()
    host, port = leader._server.server_address[:2]
    leader.shutdown()
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind((host, port))
    probe.close()

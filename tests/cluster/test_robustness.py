"""Robustness tests for the cluster fabric: quarantine, deadlines,
worker naming — the hardening half of the chaos PR."""

from __future__ import annotations

import threading
import time

from repro.chaos import FaultPlan, FaultSpec, env_plan
from repro.cluster import ClusterLeader, run_cluster, worker_loop
from repro.cluster.worker import default_worker_name
from repro.explore import SweepSpec, run_sweep
from repro.store import ArtifactStore


def _echo(payload):
    return ("ran", payload)


def _explode(payload):
    if payload == "bad":
        raise RuntimeError("unit is poisoned")
    return ("ran", payload)


class TestWorkerNames:
    def test_default_names_are_unique_within_a_process(self):
        # The old scheme derived the name from id(object()), which the
        # allocator can reuse — two workers then alias in telemetry
        # and leader logs.  pid + counter cannot collide.
        names = {default_worker_name() for _ in range(100)}
        assert len(names) == 100

    def test_name_carries_the_pid(self):
        import os
        assert str(os.getpid()) in default_worker_name()


class TestPoisonQuarantine:
    def test_inline_poison_unit_is_quarantined(self):
        results, reports = run_cluster(
            "tests.cluster.test_robustness:_explode",
            ["a", "bad", "b"], workers=0, max_attempts=2)
        assert results == [("ran", "a"), None, ("ran", "b")]
        failed = [r for r in reports if r.status == "error"]
        assert len(failed) == 1
        assert failed[0].index == 1
        assert failed[0].attempts == 2
        assert "unit is poisoned" in failed[0].error

    def test_worker_reports_error_and_keeps_serving(self):
        # A thread worker hits the poison unit, reports the failure,
        # and still drains the rest of the queue — the process-level
        # analogue is a worker that survives its own unit exceptions.
        leader = ClusterLeader(
            "tests.cluster.test_robustness:_explode",
            ["a", "bad", "b", "c"], max_attempts=2).start()
        try:
            done = worker_loop(leader.address, name="survivor")
            assert done == 3                  # successes only
            assert leader.wait(timeout=5)
            results, reports = leader.results()
            assert results == [("ran", "a"), None, ("ran", "b"),
                               ("ran", "c")]
            assert leader.failed().keys() == {1}
            assert "unit is poisoned" in leader.failed()[1]
        finally:
            leader.shutdown()

    def test_env_poison_plan_reaches_inline_units(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="unit", kind="poison", ops=("1",)),))
        with env_plan(plan):
            results, reports = run_cluster(
                "tests.cluster.test_robustness:_echo",
                ["a", "b", "c"], workers=0, max_attempts=2)
        assert results == [("ran", "a"), None, ("ran", "c")]
        assert [r.index for r in reports if r.status == "error"] == [1]

    def test_late_success_supersedes_failure(self):
        leader = ClusterLeader(
            "tests.cluster.test_robustness:_echo", ["x"],
            max_attempts=1).start()
        try:
            leader.take("w1")
            leader.fail(0, "flaky once", 0.1, "w1")
            assert leader.failed() == {0: "flaky once"}
            leader.complete(0, ("ran", "x"), 0.2, "w1")
            assert leader.failed() == {}
            results, reports = leader.results()
            assert results == [("ran", "x")]
            assert [r.status for r in reports] == ["ok"]
        finally:
            leader.shutdown()


class TestDeadlines:
    def test_unit_deadline_requeues_a_hung_unit(self):
        leader = ClusterLeader(
            "tests.cluster.test_robustness:_echo", ["a"],
            max_attempts=3, unit_deadline=0.05).start()
        try:
            status, index, _payload = leader.take("hung-worker")
            assert status == "unit"
            time.sleep(0.1)
            assert leader.expire_deadlines() == 1
            # The unit is pending again for the next puller.
            status, index, _payload = leader.take("rescuer")
            assert (status, index) == ("unit", 0)
            leader.complete(0, ("ran", "a"), 0.0, "rescuer")
            assert leader.wait(timeout=1)
        finally:
            leader.shutdown()

    def test_unit_deadline_quarantines_at_the_attempts_cap(self):
        leader = ClusterLeader(
            "tests.cluster.test_robustness:_echo", ["a"],
            max_attempts=1, unit_deadline=0.05).start()
        try:
            leader.take("hung-worker")
            time.sleep(0.1)
            leader.expire_deadlines()
            assert leader.wait(timeout=1)
            results, reports = leader.results()
            assert results == [None]
            assert reports[0].status == "error"
            assert "deadline" in reports[0].error
        finally:
            leader.shutdown()

    def test_overall_deadline_abandons_unpulled_units(self):
        # A listening leader with no workers: nothing ever pulls, so
        # the overall deadline must end the run with structured
        # failures instead of hanging.
        results, reports = run_cluster(
            "tests.cluster.test_robustness:_echo", ["a", "b"],
            workers=0, listen="127.0.0.1:0", poll_s=0.02,
            deadline=0.2)
        assert results == [None, None]
        assert all(r.status == "error" for r in reports)
        assert all("deadline" in r.error for r in reports)


class TestSweepFailedUnits:
    def test_failed_units_reach_the_outcome_and_rows_survive(
            self, tmp_path):
        # A poison plan quarantines one warm unit; the sweep still
        # completes and the evaluation phase recomputes the missing
        # piece inline, so the rows match a fault-free run exactly.
        spec = SweepSpec(workloads=("fir",), ports=((4, 2),),
                         ninstrs=(2,), algorithms=("iterative",),
                         limit=100_000, n=8)
        clean_store = ArtifactStore(
            f"sqlite:{tmp_path / 'clean.sqlite'}")
        clean = run_sweep(spec, store=clean_store, workers=1)
        assert clean.warm_units > 0

        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="unit", kind="poison", ops=("0",)),))
        store = ArtifactStore(f"sqlite:{tmp_path / 'chaos.sqlite'}")
        with env_plan(plan):
            outcome = run_sweep(spec, store=store, workers=1,
                                cluster=2, unit_attempts=2)
        assert [u["index"] for u in outcome.failed_units] == [0]
        assert outcome.failed_units[0]["status"] == "error"
        assert outcome.failed_units[0]["attempts"] == 2

        def _strip(rows):
            return [{k: v for k, v in row.items()
                     if k != "elapsed_s"} for row in rows]
        assert _strip(outcome.rows) == _strip(clean.rows)
        # Key-set identity too: the recompute wrote through.
        assert sorted(store.backend.keys()) \
            == sorted(clean_store.backend.keys())

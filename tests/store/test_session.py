"""Tests for the Session facade and store-backed warm starts."""

from __future__ import annotations

import dataclasses

import pytest

from repro import Session
from repro.core import Constraints, SearchLimits, find_best_cut
from repro.explore import SearchCache
from repro.hwmodel import CostModel, uniform_cost_model
from repro.pipeline import prepare_application
from repro.store import ArtifactStore
from repro.workloads import get_workload

MODEL = CostModel()


class TestPrepareMemo:
    def test_prepare_hits_the_store_across_sessions(self, tmp_path):
        first = Session(store=tmp_path)
        cold = first.prepare("fir", n=16)
        assert first.store.stats.misses >= 1     # cold: nothing stored

        second = Session(store=tmp_path)
        warm = second.prepare("fir", n=16)
        assert second.store.stats.disk_hits >= 1
        assert str(warm.module) == str(cold.module)
        assert [d.weight for d in warm.dfgs] == [d.weight for d in cold.dfgs]

    def test_prepare_in_process_memo(self, tmp_path):
        session = Session(store=tmp_path)
        assert session.prepare("fir", n=16) is session.prepare("fir", n=16)

    def test_different_n_is_a_different_artifact(self, tmp_path):
        session = Session(store=tmp_path)
        a16 = session.prepare("fir", n=16)
        a32 = session.prepare("fir", n=32)
        assert a16 is not a32
        assert [d.weight for d in a16.dfgs] != [d.weight for d in a32.dfgs]

    def test_default_n_and_explicit_default_share(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = get_workload("fir")
        prepare_application("fir", n=workload.default_n, store=store)
        puts = store.stats.puts
        prepare_application("fir", store=store)
        assert store.stats.puts == puts      # hit, not a second compile

    def test_changed_driver_misses(self, tmp_path):
        # Editing the input generator must not replay a stale profile.
        store = ArtifactStore(tmp_path)
        workload = get_workload("fir")
        prepare_application(workload, n=16, store=store)
        puts = store.stats.puts

        def edited_driver(memory, n):
            return workload.driver(memory, n)

        changed = dataclasses.replace(workload, driver=edited_driver)
        prepare_application(changed, n=16, store=store)
        assert store.stats.puts > puts       # recompiled, no false hit

    def test_changed_workload_source_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = get_workload("fir")
        prepare_application(workload, n=16, store=store)
        puts = store.stats.puts
        edited = dataclasses.replace(workload,
                                     source=workload.source + "\n")
        prepare_application(edited, n=16, store=store)
        assert store.stats.puts > puts       # recompiled, no false hit

    def test_corrupted_app_artifact_recomputes(self, tmp_path):
        session = Session(store=tmp_path)
        cold = session.prepare("fir", n=16)
        for path in session.store.base.rglob("*.pkl"):
            path.write_bytes(b"corrupt")
        fresh = Session(store=tmp_path)
        warm = fresh.prepare("fir", n=16)    # miss + recompute, no crash
        assert fresh.store.stats.errors >= 1
        assert str(warm.module) == str(cold.module)


class TestSearchCacheBacking:
    def _dfg(self):
        return prepare_application("fir", n=16).hot_dfg

    def test_backing_shares_entries_across_caches(self, tmp_path):
        store = ArtifactStore(tmp_path)
        dfg = self._dfg()
        cons = Constraints(nin=4, nout=2)
        cold = find_best_cut(dfg, cons, MODEL,
                             cache=SearchCache(backing=store))

        fresh = SearchCache(backing=ArtifactStore(tmp_path))
        hit = find_best_cut(dfg, cons, MODEL, cache=fresh)
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0
        assert hit.cut.nodes == cold.cut.nodes
        assert hit.cut.merit == cold.cut.merit
        assert dataclasses.asdict(hit.stats) == dataclasses.asdict(
            cold.stats)

    def test_model_ablation_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        dfg = self._dfg()
        cons = Constraints(nin=4, nout=2)
        find_best_cut(dfg, cons, MODEL, cache=SearchCache(backing=store))

        other = SearchCache(backing=ArtifactStore(tmp_path))
        find_best_cut(dfg, cons, uniform_cost_model(), cache=other)
        assert other.stats.hits == 0 and other.stats.misses == 1

    def test_changed_limits_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        dfg = self._dfg()
        cons = Constraints(nin=4, nout=2)
        find_best_cut(dfg, cons, MODEL,
                      limits=SearchLimits(max_considered=100_000),
                      cache=SearchCache(backing=store))

        other = SearchCache(backing=ArtifactStore(tmp_path))
        find_best_cut(dfg, cons, MODEL,
                      limits=SearchLimits(max_considered=50_000),
                      cache=other)
        assert other.stats.hits == 0 and other.stats.misses == 1

    def test_presence_checks_consult_backing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        dfg = self._dfg()
        cons = Constraints(nin=4, nout=2)
        find_best_cut(dfg, cons, MODEL, cache=SearchCache(backing=store))
        fresh = SearchCache(backing=ArtifactStore(tmp_path))
        assert fresh.has_single(dfg, cons, MODEL, None)
        assert not fresh.has_single(dfg, Constraints(nin=2, nout=1),
                                    MODEL, None)


class TestSessionFacade:
    def test_identify_then_select_share_the_cache(self, tmp_path):
        session = Session(store=tmp_path)
        session.identify("fir", n=16)
        misses = session.cache.stats.misses
        session.select("fir", ninstr=1, n=16)
        # The selection's first round is the identify search: a hit.
        assert session.cache.stats.hits >= 1
        assert session.cache.stats.misses >= misses

    def test_select_unknown_algorithm(self, tmp_path):
        session = Session(store=tmp_path)
        with pytest.raises(ValueError, match="unknown algorithm"):
            session.select("fir", algorithm="magic", n=16)

    def test_afu_emits_verilog(self, tmp_path):
        session = Session(store=tmp_path)
        modules = session.afu("fir", ninstr=1, n=16,
                              limits=SearchLimits(max_considered=100_000))
        assert modules and "module ise0" in modules[0]

    def test_stats_shape(self, tmp_path):
        session = Session(store=tmp_path)
        session.select("fir", ninstr=2, n=16)
        stats = session.stats()
        assert stats["store"]["root"] == str(tmp_path)
        assert stats["search_entries"] >= 1
        assert "hit_rate" in stats["store"]

    def test_memory_only_session(self):
        session = Session(store=False)
        assert session.store is None
        result = session.select("fir", ninstr=2, n=16)
        assert result.total_merit > 0
        assert session.stats()["store"] is None

"""Backend conformance suite: every medium honours the same contract.

One parametrized fixture yields a directory backend, a WAL-mode SQLite
backend and a network backend (a live ``repro store serve`` loop over
SQLite), and every test in this file runs against all three — blob
round-trips, enumeration, maintenance, corruption tolerance through
``ArtifactStore``, and multi-process writer safety.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.store import (
    ArtifactStore,
    DirectoryBackend,
    NetworkBackend,
    SQLiteBackend,
    StoreServer,
    open_backend,
)


@pytest.fixture(params=["directory", "sqlite", "network"])
def backend(request, tmp_path):
    """One live backend per medium (network = client over a real
    in-process store server with a SQLite medium behind it)."""
    if request.param == "directory":
        medium = DirectoryBackend(tmp_path / "tree")
        yield medium
        medium.close()
    elif request.param == "sqlite":
        medium = SQLiteBackend(tmp_path / "store.sqlite")
        yield medium
        medium.close()
    else:
        served = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(served, host="127.0.0.1", port=0).start()
        client = NetworkBackend(server.spec)
        yield client
        client.close()
        server.shutdown()
        served.close()


KEY = "ab" * 32


class TestConformance:
    def test_roundtrip(self, backend):
        assert backend.load("app", KEY) is None
        backend.store("app", KEY, b"payload-bytes")
        assert backend.load("app", KEY) == b"payload-bytes"

    def test_contains_and_delete(self, backend):
        assert not backend.contains("search", KEY)
        backend.store("search", KEY, b"x")
        assert backend.contains("search", KEY)
        backend.delete("search", KEY)
        assert not backend.contains("search", KEY)
        backend.delete("search", KEY)  # idempotent

    def test_overwrite_wins(self, backend):
        backend.store("app", KEY, b"old")
        backend.store("app", KEY, b"new")
        assert backend.load("app", KEY) == b"new"

    def test_keys_enumerates_all_kinds(self, backend):
        backend.store("app", KEY, b"a")
        backend.store("search", KEY, b"b")
        assert sorted(backend.keys()) == [("app", KEY), ("search", KEY)]

    def test_info_counts_entries_and_kinds(self, backend):
        backend.store("app", KEY, b"abcd")
        backend.store("search", KEY, b"efgh")
        info = backend.info()
        assert info.entries == 2
        assert info.bytes >= 8
        assert info.kinds == {"app": 1, "search": 1}

    def test_clear(self, backend):
        backend.store("app", KEY, b"a")
        backend.store("search", KEY, b"b")
        assert backend.clear() == 2
        assert backend.info().entries == 0

    def test_gc_drops_old_keeps_new(self, backend):
        backend.store("app", KEY, b"fresh")
        removed, _freed = backend.gc(max_age_days=30.0)
        assert removed == 0
        assert backend.load("app", KEY) == b"fresh"
        removed, freed = backend.gc(max_age_days=0.0)
        assert removed == 1
        assert freed >= 5
        assert backend.load("app", KEY) is None

    def test_spec_reopens_same_medium(self, backend):
        backend.store("app", KEY, b"shared")
        reopened = open_backend(backend.spec)
        try:
            assert reopened.load("app", KEY) == b"shared"
        finally:
            reopened.close()

    def test_corrupt_blob_is_a_miss_through_the_store(self, backend):
        # Policy (header check, corruption-is-a-miss) lives above the
        # backend, so every medium inherits it identically.
        store = ArtifactStore(backend)
        backend.store("app", KEY, b"not a pickled artifact")
        assert store.get("app", KEY) is None
        assert store.stats.errors == 1
        assert store.stats.misses == 1
        assert not backend.contains("app", KEY)  # dropped for rewrite

    def test_foreign_schema_is_a_miss(self, backend):
        store = ArtifactStore(backend)
        blob = pickle.dumps((("other-tool", 9), "app", {"v": 1}))
        backend.store("app", KEY, blob)
        assert store.get("app", KEY) is None
        assert store.stats.errors == 1

    def test_concurrent_writers_are_safe(self, backend):
        ctx = multiprocessing.get_context()
        workers = [
            ctx.Process(target=_hammer, args=(backend.spec, lane))
            for lane in range(2)
        ]
        try:
            for proc in workers:
                proc.start()
        except OSError:
            pytest.skip("no multiprocessing in this environment")
        for proc in workers:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in workers)
        store = ArtifactStore(backend)
        for lane in range(2):
            for i in range(25):
                key = f"{lane:02d}{i:02d}".ljust(64, "e")
                assert store.get("app", key) == {"lane": lane, "i": i}
        # Both lanes also raced on one shared key with identical
        # content (the content-addressed case): any winner is correct.
        assert store.get("app", "f" * 64) == {"shared": True}


def _hammer(spec: str, lane: int) -> None:
    """Subprocess body for the concurrent-writer test (module level so
    it pickles under any multiprocessing start method)."""
    store = ArtifactStore(spec)
    for i in range(25):
        key = f"{lane:02d}{i:02d}".ljust(64, "e")
        store.put("app", key, {"lane": lane, "i": i})
        store.put("app", "f" * 64, {"shared": True})
    store.close()

"""Tests for the persistent content-addressed artifact store."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.store import ArtifactStore, default_store_dir, resolve_store
from repro.store.artifacts import SCHEMA_VERSION


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("search", ("single", "abc", 4, 2))
        store.put("search", key, {"nodes": (1, 2), "merit": 6.0})
        assert store.get("search", key) == {"nodes": (1, 2), "merit": 6.0}
        assert store.stats.puts == 1
        assert store.stats.hits == 1
        assert store.stats.memory_hits == 1

    def test_disk_tier_survives_the_instance(self, tmp_path):
        first = ArtifactStore(tmp_path)
        key = first.key("app", ("fir", 16))
        first.put("app", key, [1, 2, 3])
        second = ArtifactStore(tmp_path)
        assert second.get("app", key) == [1, 2, 3]
        assert second.stats.disk_hits == 1
        # Promoted: the next read is a memory hit.
        assert second.get("app", key) == [1, 2, 3]
        assert second.stats.memory_hits == 1

    def test_miss_is_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("app", "0" * 64) is None
        assert store.stats.misses == 1

    def test_kinds_do_not_collide(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = ("x", 1)
        assert store.key("app", payload) != store.key("search", payload)

    def test_contains_without_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("search", "k")
        assert not store.contains("search", key)
        store.put("search", key, 42)
        fresh = ArtifactStore(tmp_path)
        assert fresh.contains("search", key)
        assert fresh.stats.hits == fresh.stats.misses == 0

    def test_none_payload_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("app", store.key("app", "k"), None)

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for k in range(8):
            store.put("search", store.key("search", k), k)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestCorruption:
    """Damaged artifacts must read as misses, never crash."""

    def _entry_path(self, store, kind, key):
        return store.base / kind / key[:2] / f"{key}.pkl"

    @pytest.mark.parametrize("damage", [
        b"",                              # truncated to nothing
        b"garbage that is not pickle",    # not a pickle at all
        pickle.dumps("no header"),        # foreign pickle
        pickle.dumps((("repro-store", SCHEMA_VERSION + 1), "app", 1)),
    ])
    def test_damaged_file_is_a_miss(self, tmp_path, damage):
        store = ArtifactStore(tmp_path)
        key = store.key("app", "victim")
        store.put("app", key, {"ok": True})
        self._entry_path(store, "app", key).write_bytes(damage)
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("app", key) is None
        assert fresh.stats.errors == 1
        assert fresh.stats.misses == 1
        # The bad file was dropped; the slot can be rewritten and read.
        fresh.put("app", key, {"ok": True})
        assert ArtifactStore(tmp_path).get("app", key) == {"ok": True}

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("app", "victim")
        store.put("app", key, list(range(1000)))
        path = self._entry_path(store, "app", key)
        path.write_bytes(path.read_bytes()[:20])
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("app", key) is None
        assert fresh.stats.errors == 1


class TestMaintenance:
    def test_info_counts_per_kind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("app", store.key("app", 1), "a")
        store.put("search", store.key("search", 1), "s1")
        store.put("search", store.key("search", 2), "s2")
        info = store.info()
        assert info.entries == 3
        assert info.kinds == {"app": 1, "search": 2}
        assert info.bytes > 0

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("app", 1)
        store.put("app", key, "a")
        assert store.clear() == 1
        assert store.get("app", key) is None
        assert store.info().entries == 0

    def test_gc_sweeps_orphaned_tmp_files(self, tmp_path):
        # A writer killed between tmp-write and os.replace leaves an
        # orphan; gc must reclaim it (but not in-flight tmps).
        import time

        store = ArtifactStore(tmp_path)
        store.put("app", store.key("app", 1), "x")
        slot = store.base / "app" / "zz"
        slot.mkdir(parents=True)
        orphan = slot / ".dead.123.0.tmp"
        orphan.write_bytes(b"junk")
        ancient = time.time() - 7200
        os.utime(orphan, (ancient, ancient))
        inflight = slot / ".live.456.0.tmp"
        inflight.write_bytes(b"inflight")
        _removed, freed = store.gc(max_age_days=30)
        assert not orphan.exists()
        assert inflight.exists()
        assert freed >= 4

    def test_gc_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path)
        old_key = store.key("app", "old")
        new_key = store.key("app", "new")
        store.put("app", old_key, "old")
        store.put("app", new_key, "new")
        old_path = store.base / "app" / old_key[:2] / f"{old_key}.pkl"
        ancient = os.path.getmtime(old_path) - 90 * 86400
        os.utime(old_path, (ancient, ancient))
        removed, freed = store.gc(max_age_days=30)
        assert removed == 1
        assert freed > 0
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("app", old_key) is None
        assert fresh.get("app", new_key) == "new"


class TestEnvironment:
    def test_env_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "custom"))
        assert default_store_dir() == tmp_path / "custom"
        store = resolve_store("auto")
        assert store is not None and store.root == tmp_path / "custom"

    @pytest.mark.parametrize("value", ["0", "off", "none", "", "  "])
    def test_env_disables_store(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STORE", value)
        assert default_store_dir() is None
        assert resolve_store("auto") is None

    def test_resolve_disabled_and_passthrough(self, tmp_path):
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        store = ArtifactStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(tmp_path).root == tmp_path


class TestHotTierLRU:
    def test_cap_is_never_exceeded(self, tmp_path):
        store = ArtifactStore(tmp_path, hot_limit=8)
        for i in range(50):
            store.put("app", f"{i:064d}", {"i": i})
            assert len(store._hot) <= 8
        assert store.stats.evictions == 50 - 8

    def test_eviction_is_one_at_a_time_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path, hot_limit=3)
        for i in range(4):
            store.put("app", f"{i:064d}", {"i": i})
        # Only the single oldest entry left the hot tier; the rest
        # (not the whole tier) are still memory hits.
        assert store.stats.evictions == 1
        store.get("app", f"{1:064d}")
        store.get("app", f"{3:064d}")
        assert store.stats.memory_hits == 2

    def test_hot_key_survives_a_stream_of_cold_inserts(self, tmp_path):
        store = ArtifactStore(tmp_path, hot_limit=4)
        hot = "ff" * 32
        store.put("app", hot, {"hot": True})
        for i in range(40):
            store.put("app", f"{i:064d}", {"i": i})
            store.get("app", hot)   # keep it recently used
        # 40 cold inserts cycled through a tier of 4, yet every one of
        # the interleaved reads of the hot key was a memory hit.
        assert store.stats.memory_hits == 40
        assert store.stats.evictions == 40 - 3

    def test_rewriting_a_hot_key_does_not_evict(self, tmp_path):
        store = ArtifactStore(tmp_path, hot_limit=2)
        key = "aa" * 32
        for _ in range(5):
            store.put("app", key, {"v": 1})
        assert store.stats.evictions == 0
        assert len(store._hot) == 1

    def test_backend_hit_promotion_respects_the_cap(self, tmp_path):
        warm = ArtifactStore(tmp_path)
        for i in range(10):
            warm.put("app", f"{i:064d}", {"i": i})
        cold = ArtifactStore(tmp_path, hot_limit=4)
        for i in range(10):
            assert cold.get("app", f"{i:064d}") == {"i": i}
            assert len(cold._hot) <= 4
        assert cold.stats.disk_hits == 10
        assert cold.stats.evictions == 10 - 4

"""Store-server outage conformance: restarts cost retries, permanent
outages cost degraded mode — never an exception or wrong data."""

from __future__ import annotations

import time

import pytest

from repro.store import (
    ArtifactStore,
    NetworkBackend,
    SQLiteBackend,
    StoreServer,
    StoreUnavailable,
)
from repro.store.net import resolve_retries


def _restart_on(port: int, backend) -> StoreServer:
    """Bind a fresh server on *port*, tolerating TIME_WAIT lag."""
    for _ in range(50):
        try:
            return StoreServer(backend, host="127.0.0.1",
                               port=port).start()
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"port {port} never became bindable")


KEY = "12" * 32


class TestResolveRetries:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "9")
        assert resolve_retries(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "5")
        assert resolve_retries(None) == 5

    def test_unparsable_env_warns_and_defaults(self, monkeypatch,
                                               capsys):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "lots")
        assert resolve_retries(None) == 3
        assert "REPRO_STORE_RETRIES" in capsys.readouterr().err

    def test_negative_clamps_to_zero(self):
        assert resolve_retries(-4) == 0


class TestServerRestart:
    def test_restart_between_operations_is_invisible(self, tmp_path):
        # Kill and rebind the server between two operations: the
        # client pays retries (visible in retry_count), never raises,
        # and the artifacts written before the outage survive it.
        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        port = int(server.address.rsplit(":", 1)[1])
        client = NetworkBackend(server.spec, retries=8,
                                backoff_s=0.02)
        store = ArtifactStore(client)
        try:
            store.put("search", KEY, {"answer": 42})
            server.shutdown()
            server = _restart_on(port, inner)
            store._hot.clear()               # force the network path
            assert store.get("search", KEY) == {"answer": 42}
            assert client.retry_count >= 1
            assert store.stats.errors == 0   # absorbed, not surfaced
        finally:
            server.shutdown()
            client.close()
            inner.close()

    def test_shutdown_severs_established_connections(self, tmp_path):
        # An established, idle connection must die with the server —
        # with only the listening socket closed, the next operation
        # would hang out its full timeout instead of failing fast.
        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        client = NetworkBackend(server.spec, retries=0)
        try:
            client.store("app", KEY, b"x")   # connection established
            server.shutdown()
            start = time.perf_counter()
            with pytest.raises(StoreUnavailable):
                client.load("app", KEY)
            assert time.perf_counter() - start < 5.0
        finally:
            client.close()
            inner.close()

    def test_mid_sweep_restart_keeps_every_row(self, tmp_path):
        # The acceptance scenario: a store-backed cluster sweep with
        # the server killed and rebound mid-run finishes with rows
        # bit-identical to a serial fault-free sweep.
        import threading

        from repro.explore import SweepSpec, run_sweep

        spec = SweepSpec(workloads=("fir",), ports=((2, 1), (4, 2)),
                         ninstrs=(2,), algorithms=("iterative",),
                         limit=100_000, n=8)
        ref_store = ArtifactStore(
            f"sqlite:{tmp_path / 'reference.sqlite'}")
        reference = run_sweep(spec, store=ref_store, workers=1)

        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        port = int(server.address.rsplit(":", 1)[1])
        holder = {"server": server}

        def _bounce():
            time.sleep(0.1)
            holder["server"].shutdown()
            time.sleep(0.2)
            holder["server"] = _restart_on(port, inner)

        client = NetworkBackend(server.spec, retries=8,
                                backoff_s=0.02)
        store = ArtifactStore(client)
        bouncer = threading.Thread(target=_bounce, daemon=True)
        bouncer.start()
        import os
        os.environ["REPRO_STORE_RETRIES"] = "8"
        try:
            outcome = run_sweep(spec, store=store, workers=1,
                                cluster=2)
        finally:
            os.environ.pop("REPRO_STORE_RETRIES", None)
            bouncer.join(timeout=10)
            holder["server"].shutdown()
            client.close()

        def _strip(rows):
            return [{k: v for k, v in row.items()
                     if k != "elapsed_s"} for row in rows]
        assert _strip(outcome.rows) == _strip(reference.rows)
        assert outcome.failed_units == []
        # The served medium converged on the reference key set.
        assert sorted(inner.keys()) \
            == sorted(ref_store.backend.keys())
        inner.close()


class TestDegradedMode:
    def test_dead_server_flips_the_store_to_pass_through(self,
                                                         tmp_path):
        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        client = NetworkBackend(server.spec, retries=0,
                                backoff_s=0.01)
        store = ArtifactStore(client, degrade_after=2, probe_every=3)
        store.put("app", KEY, b"seed")
        server.shutdown()
        store._hot.clear()
        assert store.get("app", KEY) is None     # error 1
        assert store.get("app", KEY) is None     # error 2 -> degraded
        assert store.degraded
        assert store.stats.degraded_events == 1
        before = store.stats.degraded_skips
        store.get("app", KEY)
        assert store.stats.degraded_skips > before
        client.close()
        inner.close()

    def test_degraded_store_still_serves_the_hot_tier(self, tmp_path):
        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        client = NetworkBackend(server.spec, retries=0)
        store = ArtifactStore(client, degrade_after=1, probe_every=100)
        server.shutdown()
        store.put("search", KEY, {"answer": 42})  # hot-tier only
        assert store.degraded
        assert store.get("search", KEY) == {"answer": 42}
        client.close()
        inner.close()

    def test_probe_recovers_after_the_server_returns(self, tmp_path):
        inner = SQLiteBackend(tmp_path / "served.sqlite")
        server = StoreServer(inner, host="127.0.0.1", port=0).start()
        port = int(server.address.rsplit(":", 1)[1])
        client = NetworkBackend(server.spec, retries=0,
                                backoff_s=0.01)
        store = ArtifactStore(client, degrade_after=1, probe_every=2)
        server.shutdown()
        store._hot.clear()
        assert store.get("app", KEY) is None
        assert store.degraded
        server = _restart_on(port, inner)
        # Every probe_every-th skipped operation goes through; one
        # success recovers the store.
        for _ in range(4):
            store.contains("app", KEY)
        assert not store.degraded
        server.shutdown()
        client.close()
        inner.close()

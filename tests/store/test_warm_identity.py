"""Warm vs. cold bit-identity: the store may only ever skip work.

Property-tested across three workloads and two algorithm families, at
every layer: selection results, sweep rows/artifacts and measured
speedup rows must be identical with the store disabled, enabled-cold
and pre-warmed.
"""

from __future__ import annotations

import pytest

from repro import Session, SweepSpec
from repro.core import SearchLimits

WORKLOADS = ["fir", "crc32", "gsm"]
ALGORITHMS = ["iterative", "maxmiso"]
LIMITS = SearchLimits(max_considered=200_000)
N = 16


def _selection_fingerprint(result):
    return (
        result.algorithm,
        result.total_merit,
        result.speedup,
        result.num_instructions,
        result.complete,
        [(cut.dfg.name, tuple(sorted(cut.nodes)), cut.merit)
         for cut in result.cuts],
    )


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_select_identical_nostore_cold_warm(tmp_path, workload, algorithm):
    kwargs = dict(algorithm=algorithm, ninstr=4, limits=LIMITS, n=N)
    nostore = Session(store=False).select(workload, **kwargs)
    cold = Session(store=tmp_path).select(workload, **kwargs)
    warm_session = Session(store=tmp_path)
    warm = warm_session.select(workload, **kwargs)

    assert _selection_fingerprint(nostore) == _selection_fingerprint(cold)
    assert _selection_fingerprint(cold) == _selection_fingerprint(warm)
    assert nostore.describe() == cold.describe() == warm.describe()
    if algorithm == "iterative":
        # The warm run actually warm-started (prepare + identification).
        assert warm_session.store.stats.disk_hits >= 1


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


def test_sweep_rows_identical_nostore_cold_warm(tmp_path):
    spec = SweepSpec(
        workloads=("fir", "crc32"),
        ports=((2, 1), (4, 2)),
        ninstrs=(2, 4),
        algorithms=tuple(ALGORITHMS),
        limit=LIMITS.max_considered,
        n=N,
    )
    nostore = Session(store=False).sweep(spec)
    cold = Session(store=tmp_path).sweep(spec)
    warm = Session(store=tmp_path).sweep(spec)

    assert _strip_timing(nostore.rows) == _strip_timing(cold.rows)
    assert _strip_timing(cold.rows) == _strip_timing(warm.rows)
    # The pre-warmed run had nothing left to warm: the store already
    # covered every (block, constraint) unit of the grid.
    assert warm.warm_units == 0


def test_sweep_artifacts_byte_identical(tmp_path):
    """The JSON/CSV artifacts (minus timings) of a warm sweep equal the
    cold ones byte for byte."""
    import json

    from repro.explore import write_csv, write_json

    spec = SweepSpec(workloads=("fir",), ports=((4, 2),), ninstrs=(2, 4),
                     algorithms=("iterative",),
                     limit=LIMITS.max_considered, n=N)

    def artifacts(outcome, directory):
        directory.mkdir(exist_ok=True)
        json_path = directory / "sweep.json"
        csv_path = directory / "sweep.csv"
        write_json(outcome, json_path)
        write_csv(outcome, csv_path)
        record = json.loads(json_path.read_text())
        record.pop("meta", None)        # timings/throughput live here
        for row in record["rows"]:
            row.pop("elapsed_s", None)
        return record, csv_path.read_text()

    cold_json, _cold_csv = artifacts(
        Session(store=tmp_path / "store").sweep(spec), tmp_path / "a")
    warm_json, _warm_csv = artifacts(
        Session(store=tmp_path / "store").sweep(spec), tmp_path / "b")
    off_json, _off_csv = artifacts(
        Session(store=False).sweep(spec), tmp_path / "c")
    assert cold_json == warm_json == off_json


def test_speedup_rows_identical_nostore_cold_warm(tmp_path):
    kwargs = dict(ninstr=4, limits=LIMITS, n=N)
    names = ["fir", "crc32"]
    nostore = Session(store=False).speedup(names, **kwargs)
    cold = Session(store=tmp_path).speedup(names, **kwargs)
    warm_session = Session(store=tmp_path)
    warm = warm_session.speedup(names, **kwargs)

    as_dicts = lambda rows: [row.as_dict() for row in rows]
    assert as_dicts(nostore) == as_dicts(cold) == as_dicts(warm)
    assert all(row.identical for row in warm)
    # Baseline artifacts were shared: the warm run re-ran no baseline.
    assert warm_session.store.stats.disk_hits >= len(names)


def test_measured_sweep_identical_with_baseline_artifact(tmp_path):
    spec = SweepSpec(workloads=("fir",), ports=((4, 2),), ninstrs=(2,),
                     algorithms=("iterative",), measure=True,
                     limit=LIMITS.max_considered, n=N)
    cold = Session(store=tmp_path).sweep(spec)
    warm = Session(store=tmp_path).sweep(spec)
    nostore = Session(store=False).sweep(spec)
    assert _strip_timing(cold.rows) == _strip_timing(warm.rows)
    assert _strip_timing(cold.rows) == _strip_timing(nostore.rows)
    assert all(row["measured_identical"] for row in warm.rows)

"""Shared fixtures: compiled+profiled applications are expensive, so they
are built once per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Test subdirectories have no __init__.py, so the shared strategy
# module (tests/strategies.py) is imported as a plain top-level module.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.hwmodel import CostModel
from repro.pipeline import prepare_application


@pytest.fixture(scope="session", autouse=True)
def _verification_on():
    """Force ``$REPRO_VERIFY`` on for the whole suite.

    Verification is opt-in on hot paths (benchmarks stay unaffected),
    but every test run exercises the pass-boundary, selection and
    rewrite checks — a regression that produces ill-formed IR or an
    infeasible cut fails loudly here even if no assertion targets it.
    Tests probing the off switch monkeypatch the variable locally.
    """
    import os

    old = os.environ.get("REPRO_VERIFY")
    os.environ["REPRO_VERIFY"] = "1"
    yield
    if old is None:
        os.environ.pop("REPRO_VERIFY", None)
    else:
        os.environ["REPRO_VERIFY"] = old


@pytest.fixture(scope="session", autouse=True)
def _isolated_store(tmp_path_factory):
    """Point the default artifact store at a per-session temp directory.

    CLI verbs (and ``Session()``) persist artifacts by default; tests
    must exercise that behaviour without writing into — or warm-starting
    from — the developer's real ``~/.cache/repro``.
    """
    import os

    root = tmp_path_factory.mktemp("repro-store")
    old = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = str(root)
    yield root
    if old is None:
        os.environ.pop("REPRO_STORE", None)
    else:
        os.environ["REPRO_STORE"] = old


@pytest.fixture(scope="session")
def model():
    return CostModel()


@pytest.fixture(scope="session")
def adpcm_decode_app():
    return prepare_application("adpcm-decode", n=64)


@pytest.fixture(scope="session")
def adpcm_encode_app():
    return prepare_application("adpcm-encode", n=64)


@pytest.fixture(scope="session")
def gsm_app():
    return prepare_application("gsm", n=32)


@pytest.fixture(scope="session")
def fir_app():
    return prepare_application("fir", n=32)


@pytest.fixture(scope="session")
def crc_app():
    return prepare_application("crc32", n=16)


@pytest.fixture(scope="session")
def mixer_app():
    return prepare_application("mixer", n=32)

"""Differential testing: random MiniC programs through the full pipeline.

A generator produces random (but always terminating and trap-free) MiniC
functions; each is executed (a) unoptimised, (b) with the cleanup
pipeline, (c) with cleanup + if-conversion, and (d) unrolled where
applicable.  All four must agree on the returned value and on the final
global-array state — the strongest whole-compiler correctness check in
the suite.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.frontend import analyze, lower_program, parse
from repro.interp import Interpreter, Memory
from repro.passes import optimize_module, unroll_loops


class ProgramGenerator:
    """Generates random MiniC functions over a fixed global layout.

    Restrictions that guarantee clean execution:
    * array indices are always masked to the array size (power of two);
    * division/modulo right-hand sides are ``(x & 7) + 1`` (never zero);
    * loops are counted with small constant trip counts.
    """

    ARRAY = "mem"
    ARRAY_SIZE = 16

    def __init__(self, rng: random.Random, max_depth: int = 3) -> None:
        self.rng = rng
        self.max_depth = max_depth
        self.locals = ["a", "b", "c"]
        self._next_var = 0
        self._next_loop = 0

    # ------------------------------------------------------------------
    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.max_depth or rng.random() < 0.3:
            choice = rng.random()
            if choice < 0.4:
                return str(rng.randint(-100, 100))
            if choice < 0.8:
                return rng.choice(self.locals)
            return (f"{self.ARRAY}[({rng.choice(self.locals)}) & "
                    f"{self.ARRAY_SIZE - 1}]")
        kind = rng.random()
        if kind < 0.55:
            op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                             "<", "<=", "==", "!=", ">", ">="])
            left = self.expr(depth + 1)
            right = self.expr(depth + 1)
            if op in ("<<", ">>"):
                right = f"(({right}) & 7)"
            return f"(({left}) {op} ({right}))"
        if kind < 0.65:
            op = rng.choice(["/", "%"])
            return (f"(({self.expr(depth + 1)}) {op} "
                    f"((({self.expr(depth + 1)}) & 7) + 1))")
        if kind < 0.8:
            op = rng.choice(["-", "~", "!"])
            return f"({op}({self.expr(depth + 1)}))"
        if kind < 0.9:
            return (f"(({self.expr(depth + 1)}) ? "
                    f"({self.expr(depth + 1)}) : "
                    f"({self.expr(depth + 1)}))")
        op = rng.choice(["&&", "||"])
        return f"(({self.expr(depth + 1)}) {op} ({self.expr(depth + 1)}))"

    def statement(self, depth: int = 0) -> str:
        rng = self.rng
        kind = rng.random()
        if depth >= 2 or kind < 0.45:
            target = rng.choice(self.locals)
            return f"{target} = {self.expr()};"
        if kind < 0.6:
            index = f"({rng.choice(self.locals)}) & {self.ARRAY_SIZE - 1}"
            return f"{self.ARRAY}[{index}] = {self.expr()};"
        if kind < 0.8:
            then_body = self.block(depth + 1)
            if rng.random() < 0.5:
                return f"if ({self.expr()}) {then_body}"
            return (f"if ({self.expr()}) {then_body} "
                    f"else {self.block(depth + 1)}")
        trip = rng.randint(1, 6)
        var = f"i{self._next_loop}"
        self._next_loop += 1
        return (f"for (int {var} = 0; {var} < {trip}; {var}++) "
                f"{self.block(depth + 1)}")

    def block(self, depth: int) -> str:
        n = self.rng.randint(1, 3)
        return "{ " + " ".join(self.statement(depth)
                               for _ in range(n)) + " }"

    def program(self) -> str:
        body = " ".join(self.statement() for _ in range(4))
        return f"""
        int {self.ARRAY}[{self.ARRAY_SIZE}] = {{3, 1, 4, 1, 5, 9, 2, 6,
                                                5, 3, 5, 8, 9, 7, 9, 3}};
        int f(int a, int b, int c) {{
          {body}
          return a ^ b ^ c;
        }}
        """


def run_variant(source: str, args, optimize: bool, if_convert: bool,
                unroll=None):
    program = parse(source)
    if unroll:
        unroll_loops(program, unroll)
    module = lower_program(program, analyze(program))
    if optimize:
        optimize_module(module, if_convert=if_convert)
    memory = Memory(module)
    interp = Interpreter(module, memory=memory, max_steps=2_000_000)
    value = interp.run("f", args).value
    return value, memory.read_array(ProgramGenerator.ARRAY)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(-50, 50), st.integers(-50, 50),
       st.integers(-50, 50))
def test_optimizations_preserve_semantics(seed, a, b, c):
    source = ProgramGenerator(random.Random(seed)).program()
    args = [a, b, c]
    reference = run_variant(source, args, optimize=False, if_convert=False)
    cleaned = run_variant(source, args, optimize=True, if_convert=False)
    converted = run_variant(source, args, optimize=True, if_convert=True)
    assert cleaned == reference
    assert converted == reference


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(-20, 20))
def test_unrolling_preserves_semantics(seed, a):
    source = ProgramGenerator(random.Random(seed)).program()
    args = [a, a + 1, a + 2]
    reference = run_variant(source, args, optimize=True, if_convert=True)
    for factor in (2, 3):
        unrolled = run_variant(source, args, optimize=True,
                               if_convert=True, unroll=factor)
        assert unrolled == reference

"""Differential testing: generated MiniC programs through the pipeline.

The seeded generator (:mod:`repro.fuzz.generator`, via the shared
``tests/strategies.py`` module) produces terminating, trap-free
programs in paper-relevant shapes; each is executed (a) unoptimised,
(b) with the cleanup pipeline, (c) with cleanup + if-conversion, and
(d) unrolled where applicable.  All variants must agree on the
returned value and the final global-array state.  A second property
drives whole programs through :func:`repro.fuzz.run_differential` —
the same oracle ``repro fuzz`` soaks, asserting bit-identity across
the three backends, baseline vs rewritten modules and single vs
batched lanes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import strategies as sh
from repro.frontend import analyze, lower_program, parse
from repro.fuzz import SHAPES, generate_program, run_differential
from repro.interp import Interpreter, Memory
from repro.passes import optimize_module, unroll_loops


def run_variant(source: str, args, optimize: bool, if_convert: bool,
                unroll=None):
    program = parse(source)
    if unroll:
        unroll_loops(program, unroll)
    module = lower_program(program, analyze(program))
    if optimize:
        optimize_module(module, if_convert=if_convert)
    memory = Memory(module)
    interp = Interpreter(module, memory=memory, max_steps=2_000_000)
    value = interp.run("f", args).value
    return value, memory.arrays


@settings(max_examples=60, deadline=None)
@given(sh.programs(), sh.small_args, sh.small_args, sh.small_args)
def test_optimizations_preserve_semantics(program, a, b, c):
    args = [a, b, c]
    reference = run_variant(program.source, args, optimize=False,
                            if_convert=False)
    cleaned = run_variant(program.source, args, optimize=True,
                          if_convert=False)
    converted = run_variant(program.source, args, optimize=True,
                            if_convert=True)
    assert cleaned == reference
    assert converted == reference


@settings(max_examples=30, deadline=None)
@given(sh.programs(), st.integers(-20, 20))
def test_unrolling_preserves_semantics(program, a):
    args = [a, a + 1, a + 2]
    reference = run_variant(program.source, args, optimize=True,
                            if_convert=True)
    for factor in (2, 3):
        unrolled = run_variant(program.source, args, optimize=True,
                               if_convert=True, unroll=factor)
        assert unrolled == reference


@settings(max_examples=15, deadline=None)
@given(sh.seeds, st.sampled_from(SHAPES))
def test_full_differential_oracle(seed, shape):
    """The complete fuzz oracle holds on arbitrary (seed, shape):
    backends, rewrite and batch lanes all bit-identical."""
    report = run_differential(generate_program(seed, shape))
    assert report.ok, "\n".join(str(f) for f in report.failures)

"""Integration tests: the full pipeline and the paper's headline shapes."""

from __future__ import annotations

import pytest

from repro import (
    Constraints,
    SearchLimits,
    estimated_speedup,
    find_best_cut,
    prepare_application,
    select_clubbing,
    select_iterative,
    select_maxmiso,
)
from repro.hwmodel import CostModel

MODEL = CostModel()


class TestPrepareApplication:
    def test_dfgs_have_positive_weights(self, adpcm_decode_app):
        assert adpcm_decode_app.dfgs
        assert all(d.weight > 0 for d in adpcm_decode_app.dfgs)

    def test_hot_dfg_is_loop_body(self, adpcm_decode_app):
        assert "for_body" in adpcm_decode_app.hot_dfg.name

    def test_describe_mentions_blocks(self, adpcm_decode_app):
        text = adpcm_decode_app.describe()
        assert "adpcm-decode" in text
        assert "for_body" in text

    def test_profile_scales_with_n(self):
        small = prepare_application("fir", n=16)
        large = prepare_application("fir", n=32)
        assert large.hot_dfg.weight > small.hot_dfg.weight


class TestPaperShapes:
    """Qualitative results the reproduction must preserve (Fig. 11)."""

    @pytest.fixture(scope="class")
    def apps(self, adpcm_decode_app, adpcm_encode_app, gsm_app):
        return {
            "adpcm-decode": adpcm_decode_app,
            "adpcm-encode": adpcm_encode_app,
            "gsm": gsm_app,
        }

    @pytest.mark.parametrize("nin,nout", [(2, 1), (4, 2)])
    def test_exact_dominates_baselines_everywhere(self, apps, nin, nout):
        cons = Constraints(nin=nin, nout=nout, ninstr=16)
        limits = SearchLimits(max_considered=500_000)
        for name, app in apps.items():
            iterative = select_iterative(app.dfgs, cons, MODEL, limits)
            clubbing = select_clubbing(app.dfgs, cons, MODEL)
            maxmiso = select_maxmiso(app.dfgs, cons, MODEL)
            assert iterative.total_merit >= clubbing.total_merit - 1e-9, name
            assert iterative.total_merit >= maxmiso.total_merit - 1e-9, name

    def test_speedup_grows_with_ports(self, adpcm_decode_app):
        limits = SearchLimits(max_considered=500_000)
        speedups = []
        for nin, nout in [(2, 1), (4, 2), (6, 3)]:
            cons = Constraints(nin=nin, nout=nout, ninstr=8)
            res = select_iterative(adpcm_decode_app.dfgs, cons, MODEL,
                                   limits)
            speedups.append(res.speedup)
        assert speedups[0] <= speedups[1] <= speedups[2] + 1e-9
        assert speedups[-1] > speedups[0]

    def test_maxmiso_flat_in_nout(self, apps):
        for name, app in apps.items():
            merits = [
                select_maxmiso(app.dfgs,
                               Constraints(nin=4, nout=nout, ninstr=16),
                               MODEL).total_merit
                for nout in (1, 2, 4)
            ]
            assert merits[0] == pytest.approx(merits[1])
            assert merits[0] == pytest.approx(merits[2])

    def test_adpcm_m1_found_at_two_inputs(self, adpcm_decode_app):
        """Paper Section 8(b): with Nin=2 MaxMISO misses the multiply
        cluster (it sits inside a >=3-input MaxMISO), while the exact
        algorithm still finds a profitable 2-input cut."""
        cons = Constraints(nin=2, nout=1, ninstr=1)
        exact = find_best_cut(adpcm_decode_app.hot_dfg,
                              Constraints(nin=2, nout=1), MODEL)
        maxmiso = select_maxmiso([adpcm_decode_app.hot_dfg], cons, MODEL)
        assert exact.cut is not None
        assert exact.cut.merit > maxmiso.total_merit

    def test_disconnected_cut_found_with_multiple_outputs(
            self, adpcm_decode_app):
        """Paper Section 8(c): with several outputs the identifier picks
        disconnected subgraphs (M2+M3-style)."""
        res = find_best_cut(adpcm_decode_app.hot_dfg,
                            Constraints(nin=4, nout=2), MODEL,
                            SearchLimits(max_considered=1_000_000))
        assert res.cut is not None
        assert not res.cut.is_connected()

    def test_speedups_in_plausible_range(self, apps):
        cons = Constraints(nin=4, nout=2, ninstr=16)
        limits = SearchLimits(max_considered=500_000)
        for name, app in apps.items():
            res = select_iterative(app.dfgs, cons, MODEL, limits)
            assert 1.0 < res.speedup < 10.0, name


class TestEstimationConsistency:
    def test_speedup_formula(self, gsm_app):
        cons = Constraints(nin=4, nout=2, ninstr=4)
        res = select_iterative(gsm_app.dfgs, cons, MODEL)
        assert res.speedup == pytest.approx(estimated_speedup(
            res.baseline_cycles, res.total_merit))

"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adpcm-decode" in out
        assert "gsm" in out

    def test_json_output(self, capsys):
        assert main(["list", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {
            "adpcm-decode", "adpcm-encode", "gsm", "fir", "crc32",
            "g721", "mixer", "sha"}
        fir = by_name["fir"]
        assert fir["entry"] == "fir_filter"
        assert fir["default_n"] == 256
        assert fir["description"]
        assert by_name["gsm"]["paper_benchmark"] is True


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestIdentify:
    def test_identify_adpcm(self, capsys):
        code = main(["identify", "adpcm-decode", "--n", "32",
                     "--nin", "3", "--nout", "1",
                     "--limit", "200000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hot block" in out
        assert "cut of" in out

    def test_identify_reports_no_cut(self, capsys):
        # Nin=1/Nout=1 on fir: single ops only, none profitable.
        code = main(["identify", "fir", "--n", "16",
                     "--nin", "1", "--nout", "1"])
        out = capsys.readouterr().out
        assert "no profitable cut" in out or "cut of" in out


class TestSelect:
    @pytest.mark.parametrize("algo", ["iterative", "clubbing", "maxmiso"])
    def test_algorithms_run(self, capsys, algo):
        code = main(["select", "fir", "--n", "16", "--algo", algo,
                     "--nin", "4", "--nout", "2", "--ninstr", "4",
                     "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_optimal_on_small_workload(self, capsys):
        code = main(["select", "fir", "--n", "16", "--algo", "optimal",
                     "--nin", "3", "--nout", "1", "--ninstr", "2",
                     "--limit", "200000"])
        assert code == 0
        assert "Optimal" in capsys.readouterr().out

    def test_area_constrained_roundtrip(self, capsys):
        code = main(["select", "fir", "--n", "16", "--algo", "area",
                     "--nin", "4", "--nout", "2", "--ninstr", "4",
                     "--area-budget", "2.0", "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AreaConstrained(knapsack, 2 MAC)" in out
        assert "speedup" in out

    def test_area_greedy_method(self, capsys):
        code = main(["select", "fir", "--n", "16", "--algo", "area",
                     "--area-method", "greedy", "--limit", "100000"])
        assert code == 0
        assert "AreaConstrained(greedy" in capsys.readouterr().out


class TestCompare:
    def test_compare_row_has_all_four_algorithms(self, capsys):
        code = main(["compare", "crc32", "--n", "16",
                     "--nin", "4", "--nout", "2", "--ninstr", "8",
                     "--limit", "200000"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("Optimal", "Iterative", "Clubbing", "MaxMISO"):
            assert name in out
        # Every algorithm actually reported a result on this workload.
        assert out.count("speedup") == 4

    def test_compare_degrades_optimal_to_na_on_big_blocks(self, capsys):
        code = main(["compare", "fir", "--n", "16", "--max-nodes", "2",
                     "--nin", "3", "--nout", "1", "--ninstr", "2",
                     "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Optimal" in out
        assert "n/a" in out                      # the guarded row
        assert out.count("speedup") == 3         # the other three ran


class TestAfu:
    def test_emits_verilog(self, capsys):
        code = main(["afu", "fir", "--n", "16", "--nin", "4",
                     "--nout", "2", "--ninstr", "1",
                     "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "module ise0" in out
        assert "endmodule" in out


class TestIr:
    def test_dumps_ir(self, capsys):
        code = main(["ir", "fir", "--n", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "func fir_filter" in out
        assert "application fir" in out


class TestRun:
    def test_runs_baseline(self, capsys):
        code = main(["run", "fir", "--n", "16"])
        assert code == 0
        captured = capsys.readouterr()
        assert "fir n=16 (baseline)" in captured.out
        assert "steps:" in captured.out
        assert "verified: yes" in captured.out
        # Wall time is telemetry and must stay off stdout.
        assert "steps/s" in captured.err

    def test_backends_print_identical_stdout(self, capsys):
        outputs = {}
        for backend in ("walk", "compiled"):
            assert main(["run", "crc32", "--n", "12",
                         "--backend", backend]) == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["walk"] == outputs["compiled"]

    def test_run_rewritten(self, capsys):
        code = main(["run", "fir", "--n", "16", "--rewrite",
                     "--ninstr", "2", "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rewritten:" in out
        assert "verified: yes" in out


class TestSweep:
    def test_grid_with_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", "--workloads", "fir",
                     "--ports", "2x1,4x2", "--ninstr", "2,4",
                     "--algos", "iterative,maxmiso",
                     "--limit", "100000", "--n", "16", "--quiet",
                     "--json", str(json_path), "--csv", str(csv_path)])
        assert code == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "Ninstr=2" in out and "Ninstr=4" in out
        assert "iterative" in out and "maxmiso" in out
        # Telemetry goes to stderr so stdout stays byte-identical
        # between cold and warm-started invocations.
        assert "grid points in" in captured.err
        assert "cache" in captured.err

        import json as jsonlib
        data = jsonlib.loads(json_path.read_text())
        assert data["meta"]["points"] == 2 * 2 * 2
        assert csv_path.read_text().startswith("workload,")

    def test_nin_nout_cross_product(self, capsys):
        code = main(["sweep", "--workloads", "fir",
                     "--nins", "2,3", "--nouts", "1",
                     "--ninstr", "2", "--algos", "maxmiso",
                     "--n", "16", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2    1" in out and "3    1" in out

    def test_no_cache_flag(self, capsys):
        code = main(["sweep", "--workloads", "fir", "--ports", "2x1",
                     "--ninstr", "2", "--algos", "maxmiso",
                     "--n", "16", "--quiet", "--no-cache"])
        assert code == 0
        assert "cache" not in capsys.readouterr().out

    def test_bad_ports_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workloads", "fir", "--ports", "whoops",
                  "--quiet"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["sweep", "--workloads", "nope", "--quiet"])

    def test_bad_ninstr_list_rejected(self):
        with pytest.raises(SystemExit, match="bad integer list"):
            main(["sweep", "--workloads", "fir", "--ninstr", "2;4",
                  "--quiet"])


class TestStoreFlags:
    """Byte-identity across store modes plus the ``cache`` verb."""

    SELECT = ["select", "fir", "--n", "16", "--ninstr", "4",
              "--limit", "100000"]
    SWEEP = ["sweep", "--workloads", "fir", "--ports", "2x1,4x2",
             "--ninstr", "2,4", "--algos", "iterative,maxmiso",
             "--limit", "100000", "--n", "16", "--quiet"]

    def _stdout(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    @pytest.mark.parametrize("base_argv", [SELECT, SWEEP])
    def test_stdout_byte_identical_across_store_modes(self, capsys,
                                                      tmp_path,
                                                      base_argv):
        store = ["--store-dir", str(tmp_path / "store")]
        nostore = self._stdout(capsys, base_argv + ["--no-store"])
        cold = self._stdout(capsys, base_argv + store)
        warm = self._stdout(capsys, base_argv + store)
        assert nostore == cold == warm

    def test_identify_byte_identical_warm(self, capsys, tmp_path):
        argv = ["identify", "fir", "--n", "16", "--nin", "3",
                "--nout", "1", "--limit", "100000",
                "--store-dir", str(tmp_path)]
        cold = self._stdout(capsys, argv)
        warm = self._stdout(capsys, argv)
        assert cold == warm

    def test_speedup_byte_identical_warm(self, capsys, tmp_path):
        argv = ["speedup", "--workloads", "fir", "--n", "16",
                "--ninstr", "2", "--limit", "100000",
                "--store-dir", str(tmp_path)]
        cold = self._stdout(capsys, argv)
        warm = self._stdout(capsys, argv)
        assert cold == warm
        assert "yes" in warm            # bit-exact execution

    def test_cache_stats_clear_roundtrip(self, capsys, tmp_path):
        store = ["--store-dir", str(tmp_path)]
        self._stdout(capsys, self.SELECT + store)

        assert main(["cache", "stats"] + store) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "app" in out and "search" in out

        assert main(["cache", "stats", "--json"] + store) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["entries"] > 0
        assert record["kinds"]["app"] >= 1

        assert main(["cache", "clear"] + store) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--json"] + store) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_gc(self, capsys, tmp_path):
        store = ["--store-dir", str(tmp_path)]
        self._stdout(capsys, self.SELECT + store)
        assert main(["cache", "gc", "--max-age-days", "30"] + store) == 0
        assert "removed 0 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "gc", "--max-age-days", "0"] + store) == 0
        out = capsys.readouterr().out
        assert "removed" in out and "removed 0 " not in out

    def test_cache_disabled_store_errors(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        assert main(["cache", "stats"]) == 1
        assert "disabled" in capsys.readouterr().err

    def test_explicit_store_flag_overrides_env_off(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        monkeypatch.setenv("HOME", str(tmp_path))   # sandbox ~/.cache
        assert main(self.SELECT + ["--store"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".cache" / "repro").is_dir()

"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adpcm-decode" in out
        assert "gsm" in out


class TestIdentify:
    def test_identify_adpcm(self, capsys):
        code = main(["identify", "adpcm-decode", "--n", "32",
                     "--nin", "3", "--nout", "1",
                     "--limit", "200000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hot block" in out
        assert "cut of" in out

    def test_identify_reports_no_cut(self, capsys):
        # Nin=1/Nout=1 on fir: single ops only, none profitable.
        code = main(["identify", "fir", "--n", "16",
                     "--nin", "1", "--nout", "1"])
        out = capsys.readouterr().out
        assert "no profitable cut" in out or "cut of" in out


class TestSelect:
    @pytest.mark.parametrize("algo", ["iterative", "clubbing", "maxmiso"])
    def test_algorithms_run(self, capsys, algo):
        code = main(["select", "fir", "--n", "16", "--algo", algo,
                     "--nin", "4", "--nout", "2", "--ninstr", "4",
                     "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_optimal_on_small_workload(self, capsys):
        code = main(["select", "fir", "--n", "16", "--algo", "optimal",
                     "--nin", "3", "--nout", "1", "--ninstr", "2",
                     "--limit", "200000"])
        assert code == 0
        assert "Optimal" in capsys.readouterr().out


class TestCompare:
    def test_compare_row(self, capsys):
        code = main(["compare", "crc32", "--n", "16",
                     "--nin", "4", "--nout", "2", "--ninstr", "8",
                     "--limit", "200000"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("Iterative", "Clubbing", "MaxMISO"):
            assert name in out


class TestAfu:
    def test_emits_verilog(self, capsys):
        code = main(["afu", "fir", "--n", "16", "--nin", "4",
                     "--nout", "2", "--ninstr", "1",
                     "--limit", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "module ise0" in out
        assert "endmodule" in out


class TestIr:
    def test_dumps_ir(self, capsys):
        code = main(["ir", "fir", "--n", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "func fir_filter" in out
        assert "application fir" in out

"""Tests for DFG construction, IN/OUT/convexity queries and collapsing."""

from __future__ import annotations

import random

import pytest

from repro.ir import (
    Const,
    Function,
    Opcode,
    Reg,
    binop,
    build_dfg,
    copy_reg,
    function_dfgs,
    ret,
    store,
)
from repro.ir.synth import make_dfg, random_dag_dfg


def straightline_block():
    """One block:  t0 = a*b; t1 = t0+c; t2 = t1>>2; store m[0]=t2;
    u = a+c (also live out)."""
    func = Function("f", params=["a", "b", "c"])
    bb = func.add_block("entry")
    bb.append(binop(Opcode.MUL, "t0", Reg("a"), Reg("b")))
    bb.append(binop(Opcode.ADD, "t1", Reg("t0"), Reg("c")))
    bb.append(binop(Opcode.ASHR, "t2", Reg("t1"), Const(2)))
    bb.append(store("m", Const(0), Reg("t2")))
    bb.append(binop(Opcode.ADD, "u", Reg("a"), Reg("c")))
    bb.append(ret(Reg("u")))
    return func, bb


class TestBuildDFG:
    def test_node_count_excludes_terminator(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        assert dfg.n == 5

    def test_reverse_topological_order(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        for i in range(dfg.n):
            for s in dfg.succs[i]:
                assert s < i
            for p in dfg.preds[i]:
                assert p > i

    def test_input_variables(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        assert set(dfg.input_vars) == {"a", "b", "c"}

    def test_forced_out_from_terminator_use(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        # u is read by the ret.
        u_nodes = [n for n in dfg.nodes
                   if n.insns[0].dest == "u"]
        assert len(u_nodes) == 1 and u_nodes[0].forced_out

    def test_forced_out_from_liveness(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out={"t1"})
        t1 = [n for n in dfg.nodes if n.insns[0].dest == "t1"][0]
        assert t1.forced_out

    def test_redefinition_only_last_is_live(self):
        func = Function("g", params=["a"])
        bb = func.add_block("entry")
        bb.append(binop(Opcode.ADD, "x", Reg("a"), Const(1)))
        bb.append(binop(Opcode.ADD, "x", Reg("x"), Const(2)))
        bb.append(ret(Reg("x")))
        dfg = build_dfg(bb, live_out=set())
        first = [n for n in dfg.nodes
                 if n.insns[0].operands[0] == Reg("a")][0]
        second = [n for n in dfg.nodes
                  if n.insns[0].operands[0] == Reg("x")][0]
        assert not first.forced_out
        assert second.forced_out
        # def-use chain: second reads first.
        assert first.index in dfg.preds[second.index]

    def test_store_is_forbidden_node(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        stores = [n for n in dfg.nodes if n.opcode is Opcode.STORE]
        assert len(stores) == 1 and stores[0].forbidden

    def test_operand_sources_cover_operands(self):
        func, bb = straightline_block()
        dfg = build_dfg(bb, live_out=set())
        for i, node in enumerate(dfg.nodes):
            assert len(dfg.operand_sources[i]) == \
                len(node.insns[0].operands)


class TestCutQueries:
    @pytest.fixture()
    def dfg(self):
        func, bb = straightline_block()
        return build_dfg(bb, live_out=set())

    def _by_dest(self, dfg, dest):
        return [n.index for n in dfg.nodes if n.insns[0].dest == dest][0]

    def test_cut_inputs(self, dfg):
        mul = self._by_dest(dfg, "t0")
        add = self._by_dest(dfg, "t1")
        inputs = dfg.cut_inputs({mul, add})
        assert inputs == {("var", "a"), ("var", "b"), ("var", "c")}

    def test_cut_outputs(self, dfg):
        mul = self._by_dest(dfg, "t0")
        add = self._by_dest(dfg, "t1")
        shr = self._by_dest(dfg, "t2")
        assert dfg.cut_outputs({mul}) == {mul}
        assert dfg.cut_outputs({mul, add, shr}) == {shr}

    def test_ancestors_descendants(self, dfg):
        mul = self._by_dest(dfg, "t0")
        shr = self._by_dest(dfg, "t2")
        assert shr in dfg.descendants(mul)
        assert mul in dfg.ancestors(shr)


class TestCollapse:
    def test_collapse_removes_nodes(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD],
                       [(0, 1), (1, 2)], live_out=[2])
        collapsed = dfg.collapse({1, 2}, "ise0")
        assert collapsed.n == dfg.n - 1
        supers = [n for n in collapsed.nodes if n.is_super]
        assert len(supers) == 1
        assert supers[0].forbidden

    def test_collapse_preserves_dag_invariants(self):
        rng = random.Random(0)
        for trial in range(30):
            dfg = random_dag_dfg(rng.randint(3, 12), rng,
                                 edge_prob=rng.uniform(0.1, 0.6))
            # Pick a random convex cut: take a node plus some ancestors.
            nodes = set(rng.sample(range(dfg.n),
                                   rng.randint(1, min(4, dfg.n))))
            if not dfg.is_convex(nodes):
                continue
            collapsed = dfg.collapse(nodes, "x")   # invariant-checked
            assert collapsed.n == dfg.n - len(nodes) + 1

    def test_collapse_rejects_nonconvex(self):
        dfg = make_dfg([Opcode.ADD, Opcode.ADD, Opcode.ADD],
                       [(0, 1), (1, 2)], live_out=[2])
        # users 0 and 2 renumbered: find endpoints of the chain.
        ends = {0, dfg.n - 1}
        with pytest.raises(ValueError):
            dfg.collapse(ends, "bad")

    def test_collapse_rejects_empty(self):
        dfg = make_dfg([Opcode.ADD], [], live_out=[0])
        with pytest.raises(ValueError):
            dfg.collapse(set(), "bad")

    def test_collapsed_supernode_inherits_edges(self):
        # a -> b -> c, collapse {b}: super must link a and c.
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.XOR],
                       [(0, 1), (1, 2)], live_out=[2])
        mid = [n.index for n in dfg.nodes if n.opcode is Opcode.ADD][0]
        collapsed = dfg.collapse({mid}, "s")
        s = [n.index for n in collapsed.nodes if n.is_super][0]
        assert collapsed.succs[s] != []
        assert collapsed.preds[s] != []

    def _two_value_super(self):
        """SUB -> ADD and NOT -> AND, collapse {SUB, NOT}: the supernode
        exports TWO distinct values (one per consumer)."""
        dfg = make_dfg(
            [Opcode.SUB, Opcode.NOT, Opcode.ADD, Opcode.AND],
            [(0, 2), (1, 3)], live_out=[2, 3])
        members = {n.index for n in dfg.nodes
                   if n.opcode in (Opcode.SUB, Opcode.NOT)}
        collapsed = dfg.collapse(members, "s")
        consumers = {n.index for n in collapsed.nodes
                     if n.opcode in (Opcode.ADD, Opcode.AND)}
        return collapsed, consumers

    def test_multi_value_supernode_counts_one_input_per_value(self):
        # Regression: collapse used to alias every exported value of a
        # supernode into a single producer token, so a later cut reading
        # two distinct supernode outputs undercounted IN(S) by one and
        # could be selected despite violating the port constraint
        # (iterative selection then beat "optimal").
        collapsed, consumers = self._two_value_super()
        inputs = collapsed.cut_inputs(consumers)
        # Two supernode values + ADD's and AND's own input variables.
        s = [n.index for n in collapsed.nodes if n.is_super][0]
        super_values = {vid for vid in inputs
                        if isinstance(vid, int)
                        and collapsed.value_producer(vid) == s}
        assert len(super_values) == 2

    def test_multi_value_supernode_engine_agrees_with_cut_inputs(self):
        from repro.core import Constraints, find_best_cut
        from repro.hwmodel import CostModel

        collapsed, consumers = self._two_value_super()
        naive = len(collapsed.cut_inputs(consumers))
        # The engine must reject the pair under nin = naive - 1 and the
        # single-node cuts it *does* return must respect cut_inputs.
        result = find_best_cut(collapsed,
                               Constraints(nin=naive - 1, nout=2),
                               CostModel())
        if result.cut is not None:
            assert set(result.cut.nodes) != consumers
            assert result.cut.num_inputs <= naive - 1

    def test_single_value_supernode_token_is_untagged(self):
        # The common case (one exported value) keeps the plain
        # ('node', super) token: digests and AFU ports are unchanged.
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.XOR],
                       [(0, 1), (1, 2)], live_out=[2])
        mid = [n.index for n in dfg.nodes if n.opcode is Opcode.ADD][0]
        collapsed = dfg.collapse({mid}, "s")
        s = [n.index for n in collapsed.nodes if n.is_super][0]
        tokens = [src for row in collapsed.operand_sources for src in row
                  if src and src[0] == "node" and src[1] == s]
        assert tokens and all(len(tok) == 2 for tok in tokens)

    def test_nested_collapse_keeps_values_distinct(self):
        # Collapse twice; the second supernode absorbs a consumer of the
        # first and the remaining consumers still count values per
        # distinct output.
        collapsed, consumers = self._two_value_super()
        add = [n.index for n in collapsed.nodes
               if n.opcode is Opcode.ADD][0]
        again = collapsed.collapse({add}, "s2")
        and_node = [n.index for n in again.nodes
                    if n.opcode is Opcode.AND][0]
        supers = [n.index for n in again.nodes if n.is_super]
        # AND still reads its own distinct value of the first supernode.
        (and_inputs,) = [again.value_reads[and_node]]
        assert len(and_inputs) == 1
        assert again.value_producer(and_inputs[0]) in supers


class TestFunctionDFGs:
    def test_weights_applied(self, adpcm_decode_app):
        weights = {d.name: d.weight for d in adpcm_decode_app.dfgs}
        hot = adpcm_decode_app.hot_dfg
        assert weights[hot.name] == hot.weight
        assert hot.weight > 1

    def test_min_nodes_filter(self):
        func = Function("f", params=["a"])
        bb = func.add_block("entry")
        bb.append(copy_reg("x", Reg("a")))
        bb.append(ret(Reg("x")))
        graphs = function_dfgs(func, min_nodes=2)
        assert graphs == []

"""Tests for CFG utilities and liveness analysis."""

from __future__ import annotations


from repro.ir import (
    Const,
    Function,
    Liveness,
    Opcode,
    Reg,
    binop,
    br,
    copy_reg,
    jmp,
    predecessors,
    reachable_blocks,
    ret,
    reverse_postorder,
    successors,
    verify_function,
)


def diamond_function():
    """entry -> (t|f) -> join, with x defined on both arms and used at
    the join; y defined only on the t arm and dead."""
    func = Function("f", params=["c", "a"])
    entry = func.add_block("entry")
    t = func.add_block("t")
    f = func.add_block("f")
    join = func.add_block("join")
    entry.append(br(Reg("c"), "t", "f"))
    t.append(copy_reg("x", Reg("a")))
    t.append(copy_reg("y", Const(1)))
    t.append(jmp("join"))
    f.append(copy_reg("x", Const(0)))
    f.append(jmp("join"))
    join.append(binop(Opcode.ADD, "r", Reg("x"), Const(1)))
    join.append(ret(Reg("r")))
    return func


class TestStructure:
    def test_successors(self):
        func = diamond_function()
        succs = successors(func)
        assert succs["entry"] == ["t", "f"]
        assert succs["t"] == ["join"]
        assert succs["join"] == []

    def test_predecessors(self):
        func = diamond_function()
        preds = predecessors(func)
        assert preds["join"] == ["t", "f"]
        assert preds["entry"] == []

    def test_reachable(self):
        func = diamond_function()
        dead = func.add_block("dead")
        dead.append(ret())
        assert reachable_blocks(func) == {"entry", "t", "f", "join"}

    def test_reverse_postorder_starts_at_entry(self):
        func = diamond_function()
        order = reverse_postorder(func)
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "t", "f", "join"}


class TestLiveness:
    def test_use_flows_backward(self):
        func = diamond_function()
        liveness = Liveness(func)
        # x is live out of both arms (used at join).
        assert "x" in liveness.live_out_of("t")
        assert "x" in liveness.live_out_of("f")
        # y is dead after t.
        assert "y" not in liveness.live_out_of("t")
        # a is live into t only (used to define x there).
        assert "a" in liveness.live_in_of("t")
        assert "a" not in liveness.live_in_of("f")

    def test_params_live_at_entry(self):
        func = diamond_function()
        liveness = Liveness(func)
        assert "c" in liveness.live_in_of("entry")
        assert "a" in liveness.live_in_of("entry")

    def test_loop_liveness(self):
        # i is live around the back edge.
        func = Function("loop", params=["n"])
        entry = func.add_block("entry")
        head = func.add_block("head")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        entry.append(copy_reg("i", Const(0)))
        entry.append(jmp("head"))
        head.append(binop(Opcode.SLT, "c", Reg("i"), Reg("n")))
        head.append(br(Reg("c"), "body", "exit"))
        body.append(binop(Opcode.ADD, "i", Reg("i"), Const(1)))
        body.append(jmp("head"))
        exit_.append(ret(Reg("i")))
        liveness = Liveness(func)
        assert "i" in liveness.live_out_of("body")
        assert "i" in liveness.live_in_of("head")
        assert "n" in liveness.live_out_of("body")


class TestVerifier:
    def test_well_formed(self):
        assert verify_function(diamond_function()) == []

    def test_missing_terminator(self):
        func = Function("g")
        func.add_block("entry")
        problems = verify_function(func)
        assert any("terminator" in p for p in problems)

    def test_unknown_target(self):
        func = Function("g")
        block = func.add_block("entry")
        block.append(jmp("nowhere"))
        problems = verify_function(func)
        assert any("nowhere" in p for p in problems)

    def test_workload_functions_verify(self, adpcm_decode_app, gsm_app):
        for app in (adpcm_decode_app, gsm_app):
            for func in app.module.functions.values():
                assert verify_function(func) == []

"""Round-trip tests for the textual IR format."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, Memory
from repro.ir.printer import IRParseError, parse_module, print_module, \
    roundtrip
from repro.passes import optimize_module
from repro.workloads import WORKLOADS, get_workload


def assert_equivalent(a, b):
    """Two modules print identically => structurally identical."""
    assert print_module(a) == print_module(b)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_modules_roundtrip(self, name):
        workload = get_workload(name)
        module = compile_source(workload.source, name)
        optimize_module(module)
        assert_equivalent(module, roundtrip(module))

    def test_roundtripped_module_executes_identically(self):
        workload = get_workload("crc32")
        module = compile_source(workload.source, "crc32")
        optimize_module(module)
        twin = roundtrip(module)

        mem_a, mem_b = Memory(module), Memory(twin)
        args = workload.driver(mem_a, 16)
        workload.driver(mem_b, 16)
        Interpreter(module, memory=mem_a).run(workload.entry, args)
        Interpreter(twin, memory=mem_b).run(workload.entry, args)
        assert mem_a.scalar("crc_out") == mem_b.scalar("crc_out")

    def test_globals_with_initialisers(self):
        module = compile_source("int a[3] = {1, -2, 3}; int g = 9;")
        twin = roundtrip(module)
        assert twin.globals["a"].init == [1, -2, 3]
        assert twin.globals["g"].init == [9]

    def test_all_instruction_forms(self):
        source = """
        int m[4];
        int callee(int x) { return x; }
        int f(int a, int b) {
          int r = 0;
          if (a < b) { r = m[a & 3]; } else { m[b & 3] = a; }
          while (r > 0) { r = r - callee(b); }
          return r;
        }
        """
        module = compile_source(source)
        assert_equivalent(module, roundtrip(module))


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRParseError):
            parse_module("func f():\nentry:\n  %x = frobnicate %a\n")

    def test_wrong_arity(self):
        with pytest.raises(IRParseError):
            parse_module("func f():\nentry:\n  %x = add %a\n")

    def test_instruction_outside_block(self):
        with pytest.raises(IRParseError):
            parse_module("func f():\n  %x = add %a, %b\n")

    def test_label_outside_function(self):
        with pytest.raises(IRParseError):
            parse_module("entry:\n")

    def test_bad_operand(self):
        with pytest.raises(IRParseError):
            parse_module("func f():\nentry:\n  %x = add foo, %b\n")

"""Tests for 32-bit value semantics and operands."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ir import Const, Reg, is_const, is_reg
from repro.ir.values import (
    INT32_MAX,
    INT32_MIN,
    to_signed,
    to_unsigned,
    wrap32,
)


class TestWrap32:
    @pytest.mark.parametrize("value,expected", [
        (0, 0),
        (1, 1),
        (-1, -1),
        (INT32_MAX, INT32_MAX),
        (INT32_MIN, INT32_MIN),
        (INT32_MAX + 1, INT32_MIN),
        (INT32_MIN - 1, INT32_MAX),
        (1 << 32, 0),
        ((1 << 31), INT32_MIN),
        (0xFFFFFFFF, -1),
    ])
    def test_known_values(self, value, expected):
        assert wrap32(value) == expected

    @given(st.integers(-2 ** 40, 2 ** 40))
    def test_range_invariant(self, value):
        wrapped = wrap32(value)
        assert INT32_MIN <= wrapped <= INT32_MAX

    @given(st.integers(-2 ** 40, 2 ** 40))
    def test_congruence_mod_2_32(self, value):
        assert (wrap32(value) - value) % (1 << 32) == 0

    @given(st.integers(INT32_MIN, INT32_MAX))
    def test_identity_in_range(self, value):
        assert wrap32(value) == value


class TestConversions:
    @given(st.integers(INT32_MIN, INT32_MAX))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value

    def test_to_unsigned_negative(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(INT32_MIN) == 0x80000000


class TestOperands:
    def test_const_wraps(self):
        assert Const(1 << 32).value == 0
        assert Const(0xFFFFFFFF).value == -1

    def test_const_equality(self):
        assert Const(5) == Const(5)
        assert Const(5) != Const(6)

    def test_reg_identity(self):
        assert Reg("a") == Reg("a")
        assert Reg("a") != Reg("b")

    def test_predicates(self):
        assert is_reg(Reg("x")) and not is_const(Reg("x"))
        assert is_const(Const(1)) and not is_reg(Const(1))

    def test_str_forms(self):
        assert str(Reg("x")) == "%x"
        assert str(Const(-3)) == "-3"

"""Tests for the synthetic DFG builders."""

from __future__ import annotations

import random

import pytest

from repro.ir.dfg import DataFlowGraph
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg, paper_figure4_dfg, random_dag_dfg


class TestMakeDFG:
    def test_renumbering_is_reverse_topological(self):
        dfg = make_dfg([Opcode.ADD] * 4, [(0, 1), (0, 2), (1, 3), (2, 3)],
                       live_out=[3])
        for i in range(dfg.n):
            assert all(s < i for s in dfg.succs[i])

    def test_keep_order_validates(self):
        with pytest.raises(ValueError):
            make_dfg([Opcode.ADD, Opcode.ADD], [(0, 1)], keep_order=True)

    def test_keep_order_preserves_ids(self):
        dfg = make_dfg([Opcode.ADD, Opcode.ADD], [(1, 0)],
                       live_out=[0], keep_order=True)
        assert dfg.succs[1] == [0]

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            make_dfg([Opcode.ADD, Opcode.ADD], [(0, 1), (1, 0)])

    def test_default_input_padding(self):
        # A binary op with no internal producers reads two input vars.
        dfg = make_dfg([Opcode.ADD], [], live_out=[0])
        assert len(dfg.node_inputs[0]) == 2

    def test_extra_inputs_override(self):
        dfg = make_dfg([Opcode.ADD], [], live_out=[0],
                       extra_inputs={0: 1})
        assert len(dfg.node_inputs[0]) == 1


class TestRandomDAG:
    def test_deterministic_for_seed(self):
        a = random_dag_dfg(8, random.Random(42), edge_prob=0.4)
        b = random_dag_dfg(8, random.Random(42), edge_prob=0.4)
        assert a.succs == b.succs
        assert [n.opcode for n in a.nodes] == [n.opcode for n in b.nodes]

    def test_is_valid_dfg(self):
        rng = random.Random(1)
        for _ in range(20):
            dfg = random_dag_dfg(rng.randint(1, 15), rng,
                                 edge_prob=rng.uniform(0, 0.7),
                                 forbidden_prob=0.2)
            assert isinstance(dfg, DataFlowGraph)   # invariants checked

    def test_sinks_are_live_out(self):
        rng = random.Random(5)
        dfg = random_dag_dfg(10, rng, edge_prob=0.4, live_out_prob=0.0)
        for i in range(dfg.n):
            if not dfg.succs[i]:
                assert dfg.nodes[i].forced_out


class TestPaperFigure4:
    def test_opcode_mix(self):
        dfg = paper_figure4_dfg()
        ops = sorted(n.opcode.value for n in dfg.nodes)
        assert ops == ["add", "add", "lshr", "mul"]

"""Unit tests for BasicBlock / Function / GlobalArray / Module."""

from __future__ import annotations

import pytest

from repro.ir import (
    BasicBlock,
    Const,
    Function,
    GlobalArray,
    Module,
    Opcode,
    Reg,
    binop,
    copy_reg,
    count_real_instructions,
    jmp,
    ret,
)


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(ret())
        with pytest.raises(ValueError):
            block.append(copy_reg("x", Const(1)))

    def test_body_excludes_terminator(self):
        block = BasicBlock("b")
        block.append(copy_reg("x", Const(1)))
        block.append(ret(Reg("x")))
        assert len(block.body) == 1
        assert block.terminator is not None

    def test_successors(self):
        block = BasicBlock("b")
        block.append(jmp("next"))
        assert block.successors() == ["next"]

    def test_str_contains_label(self):
        block = BasicBlock("mylabel")
        block.append(ret())
        assert str(block).startswith("mylabel:")


class TestFunction:
    def test_entry_is_first_block(self):
        func = Function("f")
        a = func.add_block("a")
        func.add_block("b")
        assert func.entry is a

    def test_entry_requires_blocks(self):
        with pytest.raises(ValueError):
            Function("f").entry

    def test_duplicate_label_rejected(self):
        func = Function("f")
        func.add_block("a")
        with pytest.raises(ValueError):
            func.add_block("a")

    def test_new_label_avoids_collisions(self):
        func = Function("f")
        func.add_block("bb0")
        label = func.new_label()
        assert label != "bb0"
        func.add_block(label)

    def test_new_temp_unique(self):
        func = Function("f")
        names = {func.new_temp() for _ in range(10)}
        assert len(names) == 10

    def test_remove_block(self):
        func = Function("f")
        func.add_block("a")
        func.add_block("b")
        func.remove_block("b")
        assert not func.has_block("b")
        assert len(func.blocks) == 1

    def test_instructions_iterates_all(self):
        func = Function("f")
        a = func.add_block("a")
        a.append(copy_reg("x", Const(1)))
        a.append(jmp("b"))
        b = func.add_block("b")
        b.append(ret(Reg("x")))
        assert len(list(func.instructions())) == 3

    def test_count_real_instructions(self):
        func = Function("f")
        a = func.add_block("a")
        a.append(binop(Opcode.ADD, "x", Const(1), Const(2)))
        a.append(ret(Reg("x")))
        assert count_real_instructions(func) == 1


class TestGlobalArray:
    def test_zero_fill(self):
        g = GlobalArray("a", 4, [1, 2])
        assert g.init == [1, 2, 0, 0]

    def test_init_wraps_to_32_bits(self):
        g = GlobalArray("a", 1, [0xFFFFFFFF])
        assert g.init == [-1]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            GlobalArray("a", 0)
        with pytest.raises(ValueError):
            GlobalArray("a", 1, [1, 2])


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function(Function("f"))
        with pytest.raises(ValueError):
            module.add_function(Function("f"))

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global(GlobalArray("g", 1))
        with pytest.raises(ValueError):
            module.add_global(GlobalArray("g", 2))

    def test_lookup(self):
        module = Module()
        func = module.add_function(Function("f"))
        assert module.function("f") is func

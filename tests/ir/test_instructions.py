"""Tests for IR instruction construction and structure."""

from __future__ import annotations

import pytest

from repro.ir import (
    Const,
    Instruction,
    Opcode,
    Reg,
    binop,
    br,
    call,
    copy_reg,
    jmp,
    load,
    ret,
    select,
    store,
)


class TestConstruction:
    def test_binop(self):
        insn = binop(Opcode.ADD, "d", Reg("a"), Const(1))
        assert insn.dest == "d"
        assert insn.uses() == ["a"]
        assert insn.defs() == ["d"]

    def test_load_requires_array(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, "d", (Const(0),))

    def test_store_has_no_dest(self):
        insn = store("mem", Const(0), Reg("v"))
        assert insn.dest is None
        assert insn.defs() == []
        assert insn.uses() == ["v"]

    def test_br_requires_two_targets(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, operands=(Reg("c"),), targets=("a",))

    def test_call_requires_callee(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CALL, "d", ())

    def test_missing_dest_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, None, (Const(1), Const(2)))


class TestClassification:
    def test_terminators(self):
        assert br(Reg("c"), "a", "b").is_terminator
        assert jmp("a").is_terminator
        assert ret().is_terminator
        assert not binop(Opcode.ADD, "d", Const(1), Const(2)).is_terminator

    def test_memory(self):
        assert load("d", "m", Const(0)).is_memory
        assert store("m", Const(0), Const(1)).is_memory
        assert not copy_reg("d", Const(0)).is_memory

    def test_afu_legality(self):
        assert binop(Opcode.MUL, "d", Reg("a"), Reg("b")).afu_legal
        assert select("d", Reg("c"), Reg("a"), Reg("b")).afu_legal
        assert not load("d", "m", Const(0)).afu_legal
        assert not call("d", "f").afu_legal


class TestRewriting:
    def test_replace_uses(self):
        insn = binop(Opcode.ADD, "d", Reg("a"), Reg("b"))
        insn.replace_uses({"a": Const(7)})
        assert insn.operands == (Const(7), Reg("b"))

    def test_copy_is_independent(self):
        insn = binop(Opcode.ADD, "d", Reg("a"), Reg("b"))
        clone = insn.copy()
        clone.dest = "e"
        clone.replace_uses({"a": Const(1)})
        assert insn.dest == "d"
        assert insn.operands == (Reg("a"), Reg("b"))


class TestDisplay:
    @pytest.mark.parametrize("insn,expected", [
        (binop(Opcode.ADD, "d", Reg("a"), Const(2)), "%d = add %a, 2"),
        (load("d", "tab", Reg("i")), "%d = load tab[%i]"),
        (store("tab", Const(0), Reg("v")), "store tab[0] = %v"),
        (jmp("exit"), "jmp exit"),
        (ret(Const(0)), "ret 0"),
        (br(Reg("c"), "t", "f"), "br %c, t, f"),
    ])
    def test_str(self, insn, expected):
        assert str(insn) == expected

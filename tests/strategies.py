"""Shared hypothesis strategies over the seeded program generator.

One place for "give me a random-but-reproducible MiniC program (or the
module it compiles to)", so property tests across ``tests/interp/``,
``tests/analysis/`` and ``tests/integration/`` draw from the same
corpus the fuzzer soaks — a shrink found by any suite is a seed every
suite can replay.  Shrinking stays meaningful because programs are
*derived* from (seed, shape): hypothesis minimises the seed, and
:func:`repro.fuzz.generate_program` turns it back into source.

Import as a plain module (``import strategies``) — the tests/ conftest
puts this directory on ``sys.path``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.frontend import analyze, lower_program, parse
from repro.fuzz import (
    SHAPES,
    GeneratedProgram,
    generate_invalid,
    generate_program,
)
from repro.ir.opcodes import Opcode
from repro.passes import optimize_module

__all__ = ["SHAPES", "compile_program", "i32", "inject_opcode_flip",
           "invalid_programs", "modules", "programs", "seeds",
           "small_args"]

#: Full signed 32-bit range — the IR's numeric domain.
i32 = st.integers(-(2 ** 31), 2 ** 31 - 1)

#: Generator seeds.  A bounded range keeps hypothesis shrinks readable
#: (the minimal counterexample is a small seed you can replay by hand).
seeds = st.integers(0, 2 ** 20)

#: Small argument values: generated programs mask and clamp internally,
#: so magnitude adds nothing — small values shrink better.
small_args = st.integers(-100, 100)


def programs(shapes=SHAPES) -> st.SearchStrategy[GeneratedProgram]:
    """Generated MiniC programs, optionally pinned to a shape subset."""
    return st.builds(generate_program, seeds,
                     st.sampled_from(tuple(shapes)))


def invalid_programs() -> st.SearchStrategy:
    """Corrupted programs with a known failing frontend stage."""
    return st.builds(generate_invalid, seeds)


def compile_program(program: GeneratedProgram, optimize: bool = True,
                    if_convert: bool = True):
    """Lower one generated program to an IR module (optionally through
    the cleanup pipeline) — the common prefix of most property tests."""
    ast = parse(program.source)
    module = lower_program(
        ast, analyze(ast),
        name=f"fuzz-{program.shape}-{program.seed}")
    if optimize:
        optimize_module(module, if_convert=if_convert)
    return module


#: Opcode substitutions used to plant miscompiles: each flip preserves
#: arity and IR well-formedness but changes arithmetic, so the oracle
#: must catch it as an "optimizer" divergence.
_FLIPS = {Opcode.ADD: Opcode.SUB, Opcode.SUB: Opcode.ADD,
          Opcode.XOR: Opcode.OR, Opcode.OR: Opcode.AND,
          Opcode.MUL: Opcode.ADD}


def inject_opcode_flip(module) -> bool:
    """Flip the first flippable opcode in *module* in place.

    The canonical planted miscompile for reducer and campaign tests:
    returns ``True`` when a flip landed (generated programs always
    contain at least one ADD/XOR/MUL, so a ``False`` is a test bug).
    """
    for func in module.functions.values():
        for block in func.blocks:
            for insn in block.instructions:
                replacement = _FLIPS.get(insn.opcode)
                if replacement is not None:
                    insn.opcode = replacement
                    return True
    return False


def modules(shapes=SHAPES, optimize: bool = True,
            if_convert: bool = True) -> st.SearchStrategy:
    """Optimised IR modules compiled from generated programs."""
    return programs(shapes).map(
        lambda p: compile_program(p, optimize=optimize,
                                  if_convert=if_convert))

"""Tests for the declarative sweep grid."""

from __future__ import annotations

import pytest

from repro.core import Constraints
from repro.explore import SweepSpec, resolve_model
from repro.explore.grid import ALGORITHMS, MODELS


def small_spec(**overrides):
    kwargs = dict(
        workloads=("fir",),
        ports=((2, 1), (4, 2)),
        ninstrs=(2, 4),
        algorithms=("iterative", "maxmiso"),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestExpansion:
    def test_cartesian_size(self):
        spec = small_spec(workloads=("fir", "crc32"), models=("default",
                                                              "uniform"))
        points = spec.expand()
        assert len(points) == 2 * 2 * 2 * 2 * 2

    def test_point_constraints(self):
        point = small_spec().expand()[0]
        assert point.constraints == Constraints(nin=point.nin,
                                                nout=point.nout,
                                                ninstr=point.ninstr)

    def test_deterministic_order(self):
        assert small_spec().expand() == small_spec().expand()

    def test_describe_counts_points(self):
        spec = small_spec()
        assert str(len(spec.expand())) in spec.describe()

    def test_to_dict_roundtrips(self):
        spec = small_spec()
        assert SweepSpec(**spec.to_dict()) == spec


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            small_spec(workloads=("nope",))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            small_spec(algorithms=("magic",))

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            small_spec(models=("quantum",))

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="at least one"):
            small_spec(ports=())

    def test_bad_ports(self):
        with pytest.raises(ValueError, match="positive"):
            small_spec(ports=((0, 1),))

    def test_bad_ninstr(self):
        with pytest.raises(ValueError, match="positive"):
            small_spec(ninstrs=(0,))

    def test_all_algorithms_are_known(self):
        assert set(small_spec(algorithms=ALGORITHMS).algorithms) \
            == set(ALGORITHMS)


class TestModels:
    def test_resolve_known(self):
        for name in MODELS:
            model = resolve_model(name)
            assert model.sw_latency

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            resolve_model("nope")

    def test_factories_build_fresh_instances(self):
        assert resolve_model("default") is not resolve_model("default")

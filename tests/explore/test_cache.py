"""Tests for the digest-keyed identification cache."""

from __future__ import annotations

import random
from dataclasses import asdict


from repro.core import (
    Constraints,
    SearchLimits,
    find_best_cut,
    find_best_cuts,
    select_iterative,
    select_optimal,
)
from repro.core.select_area import enumerate_candidates
from repro.explore import SearchCache, dfg_digest, model_digest
from repro.hwmodel import CostModel, uniform_cost_model
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg, random_dag_dfg

MODEL = CostModel()
CONS = Constraints(nin=4, nout=2)


def chain_dfg():
    """mul feeding add feeding xor, one value escaping."""
    return make_dfg([Opcode.MUL, Opcode.ADD, Opcode.XOR],
                    [(0, 1), (1, 2)], live_out=[2])


class TestDigests:
    def test_structurally_equal_graphs_share_digest(self):
        assert dfg_digest(chain_dfg()) == dfg_digest(chain_dfg())

    def test_name_is_cosmetic(self):
        a = make_dfg([Opcode.ADD], [], live_out=[0], name="a")
        b = make_dfg([Opcode.ADD], [], live_out=[0], name="b")
        assert dfg_digest(a) == dfg_digest(b)

    def test_opcode_changes_digest(self):
        a = make_dfg([Opcode.ADD], [], live_out=[0])
        b = make_dfg([Opcode.MUL], [], live_out=[0])
        assert dfg_digest(a) != dfg_digest(b)

    def test_weight_changes_digest(self):
        a = make_dfg([Opcode.ADD], [], live_out=[0], weight=1.0)
        b = make_dfg([Opcode.ADD], [], live_out=[0], weight=2.0)
        assert dfg_digest(a) != dfg_digest(b)

    def test_collapse_label_is_cosmetic(self):
        base = chain_dfg()
        result = find_best_cut(base, CONS, MODEL)
        one = base.collapse(result.cut.nodes, label="ise1")
        two = base.collapse(result.cut.nodes, label="area1")
        assert dfg_digest(one) == dfg_digest(two)

    def test_model_digest_tracks_content(self):
        assert model_digest(CostModel()) == model_digest(CostModel())
        assert model_digest(CostModel()) != model_digest(
            uniform_cost_model())

    def test_mutated_flags_invalidate_the_memoised_digest(self):
        # Regression: the digest used to be memoised unconditionally on
        # the graph object, so flag mutations after the first digest
        # returned a stale key and could alias different searches.
        dfg = chain_dfg()
        before = dfg_digest(dfg)
        dfg.nodes[0].forbidden = True
        after = dfg_digest(dfg)
        assert before != after
        pristine = chain_dfg()
        pristine.nodes[0].forbidden = True
        assert after == dfg_digest(pristine)

    def test_mutated_weight_invalidates_the_memoised_digest(self):
        dfg = chain_dfg()
        before = dfg_digest(dfg)
        dfg.weight = dfg.weight + 1.0
        assert dfg_digest(dfg) != before

    def test_unmutated_digest_is_stable(self):
        dfg = chain_dfg()
        assert dfg_digest(dfg) == dfg_digest(dfg)


class TestSingleCut:
    def test_hit_is_identical(self):
        cache = SearchCache()
        dfg = chain_dfg()
        cold = find_best_cut(dfg, CONS, MODEL, cache=cache)
        hit = find_best_cut(dfg, CONS, MODEL, cache=cache)
        assert cache.stats.hits == 1
        assert hit.cut.nodes == cold.cut.nodes
        assert hit.cut.merit == cold.cut.merit
        assert asdict(hit.stats) == asdict(cold.stats)
        assert hit.complete == cold.complete

    def test_hit_across_equal_objects(self):
        cache = SearchCache()
        find_best_cut(chain_dfg(), CONS, MODEL, cache=cache)
        find_best_cut(chain_dfg(), CONS, MODEL, cache=cache)
        assert cache.stats.hits == 1

    def test_ninstr_does_not_split_the_key(self):
        cache = SearchCache()
        dfg = chain_dfg()
        find_best_cut(dfg, Constraints(nin=4, nout=2, ninstr=2),
                      MODEL, cache=cache)
        find_best_cut(dfg, Constraints(nin=4, nout=2, ninstr=16),
                      MODEL, cache=cache)
        assert cache.stats.hits == 1

    def test_ports_split_the_key(self):
        cache = SearchCache()
        dfg = chain_dfg()
        find_best_cut(dfg, Constraints(nin=4, nout=2), MODEL, cache=cache)
        find_best_cut(dfg, Constraints(nin=2, nout=1), MODEL, cache=cache)
        assert cache.stats.hits == 0

    def test_model_splits_the_key(self):
        cache = SearchCache()
        dfg = chain_dfg()
        find_best_cut(dfg, CONS, CostModel(), cache=cache)
        find_best_cut(dfg, CONS, uniform_cost_model(), cache=cache)
        assert cache.stats.hits == 0

    def test_limits_split_the_key(self):
        cache = SearchCache()
        dfg = chain_dfg()
        find_best_cut(dfg, CONS, MODEL, cache=cache)
        find_best_cut(dfg, CONS, MODEL,
                      SearchLimits(max_considered=10), cache=cache)
        assert cache.stats.hits == 0

    def test_no_profitable_cut_is_cached(self):
        cache = SearchCache()
        dfg = make_dfg([Opcode.LOAD], [], live_out=[0])
        cold = find_best_cut(dfg, CONS, MODEL, cache=cache)
        hit = find_best_cut(dfg, CONS, MODEL, cache=cache)
        assert cold.cut is None and hit.cut is None
        assert cache.stats.hits == 1

    def test_random_graphs_roundtrip(self):
        rng = random.Random(11)
        cache = SearchCache()
        for _ in range(10):
            dfg = random_dag_dfg(rng.randint(2, 12), rng,
                                 forbidden_prob=0.1)
            cold = find_best_cut(dfg, CONS, MODEL, cache=cache)
            hit = find_best_cut(dfg, CONS, MODEL, cache=cache)
            assert (cold.cut is None) == (hit.cut is None)
            if cold.cut is not None:
                assert hit.cut.nodes == cold.cut.nodes
                assert hit.cut.merit == cold.cut.merit
            assert asdict(hit.stats) == asdict(cold.stats)


class TestMultiCut:
    def test_hit_is_identical(self):
        cache = SearchCache()
        dfg = random_dag_dfg(8, random.Random(3))
        cold = find_best_cuts(dfg, CONS, 2, MODEL, cache=cache)
        hit = find_best_cuts(dfg, CONS, 2, MODEL, cache=cache)
        assert cache.stats.hits == 1
        assert [c.nodes for c in hit.cuts] == [c.nodes for c in cold.cuts]
        assert hit.total_merit == cold.total_merit
        assert asdict(hit.stats) == asdict(cold.stats)

    def test_num_cuts_splits_the_key(self):
        cache = SearchCache()
        dfg = random_dag_dfg(8, random.Random(3))
        find_best_cuts(dfg, CONS, 1, MODEL, cache=cache)
        find_best_cuts(dfg, CONS, 2, MODEL, cache=cache)
        assert cache.stats.hits == 0


class TestPool:
    def test_pool_roundtrip(self, gsm_app):
        cache = SearchCache()
        cold = enumerate_candidates(gsm_app.dfgs, CONS, MODEL, cache=cache)
        hit = enumerate_candidates(gsm_app.dfgs, CONS, MODEL, cache=cache)
        assert len(hit) == len(cold) > 0
        for a, b in zip(cold, hit):
            assert a.cut.nodes == b.cut.nodes
            assert a.area == b.area
            assert a.merit == b.merit


class TestSelectionEquivalence:
    def test_iterative_with_cache_is_identical(self, gsm_app):
        cons = Constraints(nin=4, nout=2, ninstr=8)
        cache = SearchCache()
        cold = select_iterative(gsm_app.dfgs, cons, MODEL)
        warm_fill = select_iterative(gsm_app.dfgs, cons, MODEL, cache=cache)
        warm = select_iterative(gsm_app.dfgs, cons, MODEL, cache=cache)
        for other in (warm_fill, warm):
            assert [c.nodes for c in other.cuts] == \
                [c.nodes for c in cold.cuts]
            assert other.total_merit == cold.total_merit
            assert asdict(other.stats) == asdict(cold.stats)
            assert other.complete == cold.complete

    def test_optimal_with_cache_is_identical(self, fir_app):
        cons = Constraints(nin=3, nout=1, ninstr=2)
        limits = SearchLimits(max_considered=200_000)
        cache = SearchCache()
        cold = select_optimal(fir_app.dfgs, cons, MODEL, limits)
        select_optimal(fir_app.dfgs, cons, MODEL, limits, cache=cache)
        warm = select_optimal(fir_app.dfgs, cons, MODEL, limits,
                              cache=cache)
        assert cache.stats.hits > 0
        assert [c.nodes for c in warm.cuts] == [c.nodes for c in cold.cuts]
        assert warm.total_merit == cold.total_merit
        assert asdict(warm.stats) == asdict(cold.stats)


class TestSharing:
    def test_entries_merge_between_caches(self):
        a = SearchCache()
        dfg = chain_dfg()
        find_best_cut(dfg, CONS, MODEL, cache=a)
        b = SearchCache()
        b.merge(a.entries())
        hit = b.get_single(chain_dfg(), CONS, MODEL, None)
        assert hit is not None and hit.cut is not None

    def test_merge_first_writer_wins(self):
        a = SearchCache()
        find_best_cut(chain_dfg(), CONS, MODEL, cache=a)
        b = SearchCache()
        b.merge(a.entries())
        before = dict(b.store)
        b.merge(a.entries())
        assert b.store == before

    def test_entries_are_picklable(self):
        import pickle

        cache = SearchCache()
        find_best_cut(chain_dfg(), CONS, MODEL, cache=cache)
        restored = SearchCache()
        restored.merge(pickle.loads(pickle.dumps(cache.entries())))
        assert len(restored) == len(cache)

"""Tests for the sweep runner and its artifacts."""

from __future__ import annotations

import csv
import json

import pytest

from repro.explore import (
    SearchCache,
    SweepSpec,
    format_table,
    rows_payload,
    run_sweep,
    write_csv,
    write_json,
)


def small_spec(**overrides):
    kwargs = dict(
        workloads=("fir",),
        ports=((2, 1), (4, 2)),
        ninstrs=(2, 4),
        algorithms=("iterative", "clubbing", "maxmiso"),
        limit=100_000,
        n=16,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


@pytest.fixture(scope="module")
def outcome():
    return run_sweep(small_spec())


class TestRows:
    def test_one_row_per_point(self, outcome):
        assert len(outcome.rows) == len(small_spec().expand())

    def test_row_shape(self, outcome):
        for row in outcome.rows:
            assert row["status"] == "ok"
            assert row["speedup"] >= 1.0
            assert row["num_instructions"] <= row["ninstr"]
            for cut in row["cuts"]:
                assert cut["merit"] > 0
                assert cut["num_inputs"] <= row["nin"]
                assert cut["num_outputs"] <= row["nout"]

    def test_iterative_dominates_baselines(self, outcome):
        by_key = {(r["nin"], r["nout"], r["ninstr"], r["algorithm"]): r
                  for r in outcome.rows}
        for (nin, nout, ninstr, algo), row in by_key.items():
            if algo == "iterative":
                continue
            assert by_key[(nin, nout, ninstr, "iterative")]["total_merit"] \
                >= row["total_merit"] - 1e-9

    def test_cache_telemetry(self, outcome):
        assert outcome.cache_entries > 0
        assert outcome.cache_stats["hits"] > 0
        assert outcome.warm_units > 0


class TestCacheEquivalence:
    def test_cached_sweep_is_bit_identical_to_cold(self):
        spec = small_spec()
        cold = run_sweep(spec, use_cache=False)
        warm = run_sweep(spec, use_cache=True)
        assert cold.cache_stats is None
        assert strip_timing(cold.rows) == strip_timing(warm.rows)

    def test_prewarmed_cache_reused_across_sweeps(self):
        spec = small_spec()
        cache = SearchCache()
        run_sweep(spec, cache=cache)
        misses_before = cache.stats.misses
        again = run_sweep(spec, cache=cache)
        assert cache.stats.misses == misses_before
        # The planner must also skip the warm fan-out entirely: every
        # (block, constraint) unit is already covered.
        assert again.warm_units == 0
        assert strip_timing(again.rows) == \
            strip_timing(run_sweep(spec, use_cache=False).rows)


class TestAreaAndOptimalRows:
    def test_area_rows_track_budget(self):
        spec = small_spec(algorithms=("area",), area_budget=1.5,
                          ninstrs=(4,))
        outcome = run_sweep(spec)
        for row in outcome.rows:
            assert row["status"] == "ok"
            assert row["total_area"] <= 1.5 + 0.02
            assert row["area_budget"] == 1.5

    def test_area_respects_max_per_block(self):
        # Regression: spec.max_per_block must reach the evaluation
        # phase (it used to stop at the warm keys, guaranteeing misses).
        spec = small_spec(algorithms=("area",), ninstrs=(4,),
                          max_per_block=1)
        outcome = run_sweep(spec)
        assert outcome.cache_stats["misses"] == 0
        deep = run_sweep(small_spec(algorithms=("area",), ninstrs=(4,)))
        for shallow_row, deep_row in zip(outcome.rows, deep.rows):
            # One candidate per block at most.
            assert shallow_row["num_instructions"] <= \
                deep_row["num_instructions"]

    def test_optimal_too_large_reports_na(self):
        spec = small_spec(algorithms=("optimal",), ninstrs=(2,),
                          max_nodes=2)
        outcome = run_sweep(spec)
        assert all(row["status"] == "n/a" for row in outcome.rows)
        assert all("optimal selection is infeasible" in row["error"]
                   for row in outcome.rows)

    def test_optimal_runs_where_feasible(self):
        spec = small_spec(algorithms=("optimal", "iterative"),
                          ninstrs=(2,), ports=((3, 1),))
        outcome = run_sweep(spec)
        by_algo = {r["algorithm"]: r for r in outcome.rows}
        assert by_algo["optimal"]["status"] == "ok"
        # Optimal can only match or beat the greedy-identification
        # iterative scheme on total merit (both exact per block here).
        assert by_algo["optimal"]["total_merit"] >= \
            by_algo["iterative"]["total_merit"] - 1e-9


class TestArtifacts:
    def test_payload_shape(self, outcome):
        payload = rows_payload(outcome)
        assert payload["meta"]["points"] == len(outcome.rows)
        assert payload["spec"]["workloads"] == ("fir",)
        assert payload["rows"] == outcome.rows

    def test_json_roundtrip(self, outcome, tmp_path):
        path = tmp_path / "sweep.json"
        write_json(outcome, path)
        data = json.loads(path.read_text())
        assert data["meta"]["points"] == len(outcome.rows)
        assert len(data["rows"]) == len(outcome.rows)

    def test_csv_flat_table(self, outcome, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(outcome, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(outcome.rows)
        assert rows[0]["workload"] == "fir"
        assert float(rows[0]["speedup"]) >= 1.0

    def test_table_mentions_every_algorithm(self, outcome):
        table = format_table(outcome.rows)
        for algo in ("iterative", "clubbing", "maxmiso"):
            assert algo in table
        assert "Ninstr=2" in table and "Ninstr=4" in table

    def test_table_marks_na(self):
        spec = small_spec(algorithms=("optimal",), ninstrs=(2,),
                          max_nodes=2)
        table = format_table(run_sweep(spec).rows)
        assert "n/a" in table

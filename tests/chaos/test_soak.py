"""End-to-end chaos soak smoke tests (small spec, real faults)."""

from __future__ import annotations

from repro.chaos import build_plan, run_chaos


class TestBuildPlan:
    def test_poison_and_kill_are_distinct_units(self):
        plan, poison, kill = build_plan(seed=0, warm_units=10)
        assert poison is not None and kill is not None
        assert poison != kill
        assert 0 <= poison < 10 and 0 <= kill < 10

    def test_seeded_plan_is_reproducible(self):
        first = build_plan(seed=4, warm_units=12)
        second = build_plan(seed=4, warm_units=12)
        assert first[0].specs == second[0].specs
        assert first[1:] == second[1:]

    def test_flags_prune_spec_families(self):
        plan, poison, kill = build_plan(seed=0, warm_units=10,
                                        poison=False, kill=False,
                                        wire=False, flaky_store=False)
        assert poison is None and kill is None
        assert plan.specs == ()


class TestSoak:
    def test_small_soak_server_up(self, tmp_path):
        report = run_chaos(seed=0, workers=2, workloads=("fir",),
                           ports=((4, 2),), ninstrs=(2,),
                           algorithms=("iterative",), n=8,
                           server="up", workdir=tmp_path)
        assert report.ok, report.notes
        assert report.rows_identical
        assert report.keys_identical
        assert report.failed_expected
        assert [u["index"] for u in report.failed_units] \
            == [report.poison_index]
        assert report.warm_units > 0

    def test_small_soak_server_restart(self, tmp_path):
        report = run_chaos(seed=1, workers=2, workloads=("fir",),
                           ports=((2, 1), (4, 2)), ninstrs=(2,),
                           algorithms=("iterative",), n=8,
                           server="restart", workdir=tmp_path)
        assert report.ok, report.notes
        assert report.rows_identical
        assert report.keys_identical

    def test_fault_free_soak_is_clean(self, tmp_path):
        report = run_chaos(seed=0, workers=2, workloads=("fir",),
                           ports=((4, 2),), ninstrs=(2,),
                           algorithms=("iterative",), n=8,
                           server="up", poison=False, kill=False,
                           wire=False, flaky_store=False,
                           workdir=tmp_path)
        assert report.ok, report.notes
        assert report.failed_units == []
        assert report.injected_store == 0
        assert report.injected_wire == 0

"""Tests for the fault-injecting store medium wrapper."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan, FaultSpec, FaultyBackend
from repro.store import (
    ArtifactStore,
    BackendError,
    SQLiteBackend,
    StoreUnavailable,
)


@pytest.fixture
def inner(tmp_path):
    medium = SQLiteBackend(tmp_path / "store.sqlite")
    yield medium
    medium.close()


KEY = "cd" * 32


class TestInjection:
    def test_zero_fault_plan_is_identity(self, inner):
        faulty = FaultyBackend(inner, FaultPlan(seed=0))
        faulty.store("app", KEY, b"payload")
        assert faulty.load("app", KEY) == b"payload"
        assert faulty.contains("app", KEY)
        assert sorted(faulty.keys()) == [("app", KEY)]
        assert faulty.injected == 0
        assert faulty.spec == inner.spec

    def test_error_raises_backend_error(self, inner):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", ops=("load",)),))
        faulty = FaultyBackend(inner, plan)
        faulty.store("app", KEY, b"x")      # store op untouched
        with pytest.raises(BackendError):
            faulty.load("app", KEY)
        assert faulty.injected == 1

    def test_unavailable_raises_store_unavailable(self, inner):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="unavailable",
                      ops=("contains",)),))
        faulty = FaultyBackend(inner, plan)
        with pytest.raises(StoreUnavailable):
            faulty.contains("app", KEY)

    def test_windowed_outage_recovers(self, inner):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", until=2),))
        faulty = FaultyBackend(inner, plan)
        with pytest.raises(BackendError):
            faulty.load("app", KEY)
        with pytest.raises(BackendError):
            faulty.contains("app", KEY)
        faulty.store("app", KEY, b"x")      # op index 2: healthy again
        assert faulty.load("app", KEY) == b"x"

    def test_corrupt_load_damages_the_blob(self, inner):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="corrupt", ops=("load",),
                      limit=1),))
        faulty = FaultyBackend(inner, plan)
        faulty.store("app", KEY, b"payload-bytes-here")
        damaged = faulty.load("app", KEY)
        assert damaged != b"payload-bytes-here"
        # limit=1: the medium itself was never changed.
        assert faulty.load("app", KEY) == b"payload-bytes-here"


class TestPolicyLayerSurvives:
    def test_corrupt_read_is_a_miss_then_rewritable(self, inner):
        # The full contract: a corrupted blob reads as a miss through
        # ArtifactStore (never wrong data), the slot is dropped, and a
        # recompute re-put restores it.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="corrupt", ops=("load",),
                      limit=1),))
        store = ArtifactStore(FaultyBackend(inner, plan))
        key = store.key("search", {"q": 1})
        store.put("search", key, {"answer": 42})
        store._hot.clear()                   # force the backend path
        assert store.get("search", key) is None
        assert store.stats.errors == 1
        store.put("search", key, {"answer": 42})
        store._hot.clear()
        assert store.get("search", key) == {"answer": 42}

    def test_injected_errors_never_escape_the_store(self, inner):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", probability=0.5),))
        store = ArtifactStore(FaultyBackend(inner, plan),
                              degrade_after=0)
        for i in range(30):
            key = store.key("search", {"i": i})
            store.put("search", key, {"i": i})
            store._hot.clear()
            value = store.get("search", key)
            assert value in (None, {"i": i})  # miss or truth, never junk
        assert store.stats.errors > 0

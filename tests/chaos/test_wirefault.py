"""Tests for wire-level fault injection and the client retry budget."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan, FaultSpec, wire_faults
from repro.store import (
    NetworkBackend,
    SQLiteBackend,
    StoreServer,
    StoreUnavailable,
)
from repro import wire


@pytest.fixture
def served(tmp_path):
    inner = SQLiteBackend(tmp_path / "served.sqlite")
    server = StoreServer(inner, host="127.0.0.1", port=0).start()
    yield server
    server.shutdown()
    inner.close()


KEY = "ef" * 32


class TestHookScoping:
    def test_no_wire_specs_means_no_hook(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error"),))
        with wire_faults(plan):
            assert wire._FAULT_HOOK is None

    def test_hook_installed_and_restored(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="reset", limit=1),))
        assert wire._FAULT_HOOK is None
        with wire_faults(plan):
            assert wire._FAULT_HOOK is not None
        assert wire._FAULT_HOOK is None

    def test_none_plan_is_a_no_op(self):
        with wire_faults(None):
            assert wire._FAULT_HOOK is None


class TestClientRecovery:
    def test_retry_absorbs_a_connection_reset(self, served):
        # One injected reset on the client's first send; the retry
        # budget reconnects and the operation still succeeds.
        client = NetworkBackend(served.spec, retries=3,
                                backoff_s=0.01)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="reset", ops=("send",),
                      limit=1),))
        try:
            with wire_faults(plan):
                client.store("app", KEY, b"survives")
            assert client.retry_count >= 1
            assert client.load("app", KEY) == b"survives"
        finally:
            client.close()

    def test_retry_absorbs_a_truncated_frame(self, served):
        # Truncation ships half a frame then drops the socket: the
        # server must reject the partial frame and the client must
        # retry its way to success.
        client = NetworkBackend(served.spec, retries=3,
                                backoff_s=0.01)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="truncate", ops=("send",),
                      limit=1),))
        try:
            with wire_faults(plan):
                client.store("app", KEY, b"whole-payload")
            assert client.load("app", KEY) == b"whole-payload"
        finally:
            client.close()

    def test_exhausted_budget_raises_store_unavailable(self, served):
        client = NetworkBackend(served.spec, retries=1,
                                backoff_s=0.01)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="reset", ops=("send",)),))
        try:
            with wire_faults(plan):
                with pytest.raises(StoreUnavailable):
                    client.store("app", KEY, b"never-lands")
        finally:
            client.close()

    def test_stall_delays_but_succeeds(self, served):
        client = NetworkBackend(served.spec, retries=0)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="stall", delay_s=0.01,
                      limit=2),))
        try:
            with wire_faults(plan):
                client.store("app", KEY, b"slow-but-sure")
                assert client.load("app", KEY) == b"slow-but-sure"
        finally:
            client.close()

"""Tests for the seeded fault plan: determinism, windows, transport."""

from __future__ import annotations

import os
import time

import pytest

from repro.chaos import (
    CHAOS_PLAN_ENV,
    ChaosInjectedError,
    FaultPlan,
    FaultSpec,
    env_plan,
    plan_from_env,
)


def _draw_trace(plan, site, ops):
    return [[spec.kind for spec in plan.draw(site, op)] for op in ops]


class TestDeterminism:
    def test_same_seed_same_draws(self):
        specs = (FaultSpec(site="store", kind="error", probability=0.3),)
        ops = ["load"] * 50
        first = _draw_trace(FaultPlan(seed=7, specs=specs), "store", ops)
        second = _draw_trace(FaultPlan(seed=7, specs=specs), "store", ops)
        assert first == second
        assert any(hit for hit in first)       # 0.3 over 50 ops fires
        assert not all(hit for hit in first)   # ...but not always

    def test_different_seeds_diverge(self):
        specs = (FaultSpec(site="store", kind="error", probability=0.3),)
        ops = ["load"] * 50
        a = _draw_trace(FaultPlan(seed=0, specs=specs), "store", ops)
        b = _draw_trace(FaultPlan(seed=1, specs=specs), "store", ops)
        assert a != b

    def test_sites_have_independent_streams(self):
        specs = (FaultSpec(site="store", kind="error", probability=0.5),
                 FaultSpec(site="wire", kind="reset", probability=0.5))
        plan = FaultPlan(seed=3, specs=specs)
        fresh = FaultPlan(seed=3, specs=specs)
        # Interleaving draws across sites does not perturb either
        # site's own deterministic sequence.
        interleaved = []
        for _ in range(20):
            interleaved.append(plan.draw("store", "load"))
            plan.draw("wire", "send")
        alone = [fresh.draw("store", "load") for _ in range(20)]
        assert interleaved == alone


class TestWindows:
    def test_after_until_window_is_exact(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", after=2, until=4),))
        kinds = _draw_trace(plan, "store", ["load"] * 6)
        assert kinds == [[], [], ["error"], ["error"], [], []]

    def test_limit_caps_total_injections(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="wire", kind="reset", limit=2),))
        kinds = _draw_trace(plan, "wire", ["send"] * 5)
        assert kinds == [["reset"], ["reset"], [], [], []]

    def test_ops_filter(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", ops=("load",)),))
        assert plan.draw("store", "store") == []
        assert [s.kind for s in plan.draw("store", "load")] == ["error"]

    def test_injected_counts_per_site(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="store", kind="error", limit=1),
            FaultSpec(site="wire", kind="reset", limit=1)))
        plan.draw("store", "load")
        plan.draw("wire", "send")
        assert plan.injected("store") == 1
        assert plan.injected("wire") == 1
        assert plan.injected() == 2


class TestCheckUnit:
    def test_poison_raises_for_its_unit_only(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="unit", kind="poison", ops=("3",)),))
        plan.check_unit(0)
        plan.check_unit(2)
        with pytest.raises(ChaosInjectedError):
            plan.check_unit(3)

    def test_kill_is_skipped_without_allow_kill(self):
        # A kill schedule must never take down a thread or the
        # leader's inline fallback — only a forked worker process.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="unit", kind="kill", ops=("1",)),))
        plan.check_unit(1, allow_kill=False)   # survives

    def test_stall_sleeps(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="unit", kind="stall", ops=("0",),
                      delay_s=0.05),))
        start = time.perf_counter()
        plan.check_unit(0)
        assert time.perf_counter() - start >= 0.04


class TestTransport:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(site="store", kind="error", probability=0.25,
                      ops=("load", "contains"), after=1, until=9,
                      limit=3, delay_s=0.5),))
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.specs == plan.specs
        # Fresh draw state: the clone replays the same sequence.
        ops = ["load"] * 20
        assert _draw_trace(clone, "store", ops) \
            == _draw_trace(FaultPlan(11, plan.specs), "store", ops)

    def test_env_round_trip(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(site="unit", kind="poison", ops=("2",)),))
        with env_plan(plan):
            carried = plan_from_env()
            assert carried is not None
            assert carried.seed == 5
            assert carried.specs == plan.specs
        assert plan_from_env() is None

    def test_env_plan_restores_previous_value(self):
        os.environ[CHAOS_PLAN_ENV] = "junk-not-json"
        try:
            with env_plan(FaultPlan(seed=1)):
                assert os.environ[CHAOS_PLAN_ENV] != "junk-not-json"
            assert os.environ[CHAOS_PLAN_ENV] == "junk-not-json"
        finally:
            del os.environ[CHAOS_PLAN_ENV]

    def test_unparsable_env_is_ignored_not_fatal(self):
        os.environ[CHAOS_PLAN_ENV] = "{broken json"
        try:
            assert plan_from_env() is None
        finally:
            del os.environ[CHAOS_PLAN_ENV]

    def test_env_plan_none_clears(self):
        os.environ[CHAOS_PLAN_ENV] = FaultPlan(seed=1).to_json()
        try:
            with env_plan(None):
                assert plan_from_env() is None
        finally:
            os.environ.pop(CHAOS_PLAN_ENV, None)

"""Assertions tied directly to the paper's figures 4, 5 and 7.

The reconstruction of the Fig. 4 example graph (see
:func:`repro.ir.synth.paper_figure4_dfg`) must reproduce the search trace
of Fig. 7 *exactly*: with ``Nout = 1`` the algorithm examines 11 of the 16
possible cuts, finds 5 feasible, 6 infeasible, and never looks at the
remaining 4.
"""

from __future__ import annotations

import pytest

from repro.core import Constraints, enumerate_feasible_cuts, find_best_cut
from repro.core.bruteforce import all_feasible_cuts
from repro.ir.synth import paper_figure4_dfg


@pytest.fixture(scope="module")
def fig4():
    return paper_figure4_dfg()


class TestFigure4Graph:
    def test_four_nodes(self, fig4):
        assert fig4.n == 4

    def test_reverse_topological_numbering(self, fig4):
        # Paper: edge (u, v) means u appears after v.
        for i in range(fig4.n):
            for s in fig4.succs[i]:
                assert s < i

    def test_edges_match_paper(self, fig4):
        # 3 -> 2 -> 0 and 1 -> 0.
        assert fig4.succs[3] == [2]
        assert fig4.succs[2] == [0]
        assert fig4.succs[1] == [0]
        assert fig4.succs[0] == []

    def test_nonconvex_cut_is_rejected(self, fig4):
        # The shaded subgraph {0, 1, 3} of Fig. 4 is not convex: the path
        # 3 -> 2 -> 0 leaves and re-enters the cut.
        assert not fig4.is_convex({0, 1, 3})
        assert fig4.is_convex({0, 1, 2, 3})
        assert fig4.is_convex({0, 1})
        assert fig4.is_convex({1, 3})

    def test_convexity_repairs_from_paper_text(self, fig4):
        # "the only ways to regain convexity are to either include node 2
        # or remove from the cut nodes 0 or 3"
        assert fig4.is_convex({0, 1, 2, 3})   # include node 2
        assert fig4.is_convex({1, 3})          # remove node 0
        assert fig4.is_convex({0, 1})          # remove node 3


class TestFigure7Trace:
    """With Nout=1: 11 cuts considered, 5 pass, 6 fail, 4 eliminated."""

    @pytest.fixture(scope="class")
    def result(self, fig4):
        return find_best_cut(fig4, Constraints(nin=16, nout=1))

    def test_cuts_considered(self, result):
        assert result.stats.cuts_considered == 11

    def test_cuts_feasible(self, result):
        assert result.stats.cuts_feasible == 5

    def test_cuts_infeasible(self, result):
        assert result.stats.cuts_infeasible == 6

    def test_cuts_eliminated(self, result):
        assert result.stats.cuts_eliminated == 4

    def test_search_complete(self, result):
        assert result.complete

    def test_feasible_set_matches_bruteforce(self, fig4):
        cons = Constraints(nin=16, nout=1)
        fast = {frozenset(nodes)
                for nodes, _ in enumerate_feasible_cuts(fig4, cons)}
        slow = {frozenset(c.nodes)
                for c in all_feasible_cuts(fig4, cons)}
        assert fast == slow
        assert len(fast) == 5


class TestFigure5SearchTree:
    """Without any constraint pruning the tree enumerates every nonempty
    cut exactly once (Fig. 5 has 16 tree nodes for 4 graph nodes)."""

    def test_all_cuts_visited_unconstrained(self, fig4):
        result = find_best_cut(fig4, Constraints(nin=16, nout=16))
        assert result.stats.cuts_considered == 15   # 2^4 - 1 nonempty
        assert result.stats.cuts_eliminated == 0

    def test_distinct_cuts(self, fig4):
        cons = Constraints(nin=16, nout=16)
        cuts = [frozenset(nodes)
                for nodes, _ in enumerate_feasible_cuts(fig4, cons)]
        assert len(cuts) == len(set(cuts))


class TestTighterConstraintsPruneMore:
    """Section 6.1: 'the tighter the constraints are, the faster the
    algorithm is'."""

    def test_nout_monotonicity(self, fig4):
        considered = []
        for nout in (1, 2, 4):
            res = find_best_cut(fig4, Constraints(nin=16, nout=nout))
            considered.append(res.stats.cuts_considered)
        assert considered[0] <= considered[1] <= considered[2]

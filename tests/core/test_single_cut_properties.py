"""Property-based validation of the exact search against brute force.

These are the strongest correctness guarantees in the suite: on random
DAGs with random constraints, the optimised incremental search must agree
*exactly* with naive enumeration — same best merit, same feasible set, and
incremental IN/OUT/convexity must match their from-scratch definitions.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Constraints,
    enumerate_feasible_cuts,
    evaluate_cut,
    find_best_cut,
)
from repro.core.bruteforce import all_feasible_cuts, best_cut_bruteforce
from repro.hwmodel import CostModel
from repro.ir.synth import random_dag_dfg

MODEL = CostModel()


@st.composite
def dag_and_constraints(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n = draw(st.integers(1, 10))
    edge_prob = draw(st.floats(0.05, 0.7))
    forbidden_prob = draw(st.sampled_from([0.0, 0.1, 0.3]))
    rng = random.Random(seed)
    dfg = random_dag_dfg(n, rng, edge_prob=edge_prob,
                         forbidden_prob=forbidden_prob)
    nin = draw(st.integers(1, 6))
    nout = draw(st.integers(1, 4))
    return dfg, Constraints(nin=nin, nout=nout)


@settings(max_examples=120, deadline=None)
@given(dag_and_constraints())
def test_best_merit_matches_bruteforce(case):
    dfg, cons = case
    fast = find_best_cut(dfg, cons, MODEL)
    slow = best_cut_bruteforce(dfg, cons, MODEL)
    fast_merit = fast.cut.merit if fast.cut else 0.0
    slow_merit = slow.merit if slow else 0.0
    assert fast_merit == pytest.approx(slow_merit)


@settings(max_examples=80, deadline=None)
@given(dag_and_constraints())
def test_feasible_sets_match_bruteforce(case):
    dfg, cons = case
    fast = {frozenset(nodes)
            for nodes, _ in enumerate_feasible_cuts(dfg, cons, MODEL)}
    slow = {frozenset(c.nodes) for c in all_feasible_cuts(dfg, cons, MODEL)}
    assert fast == slow


@settings(max_examples=80, deadline=None)
@given(dag_and_constraints())
def test_incremental_merit_matches_reference(case):
    """The merit reported during the search equals evaluate_cut's."""
    dfg, cons = case
    for nodes, merit in enumerate_feasible_cuts(dfg, cons, MODEL):
        ref = evaluate_cut(dfg, nodes, MODEL)
        assert merit == pytest.approx(ref.merit)
        assert ref.convex
        assert ref.num_inputs <= cons.nin
        assert ref.num_outputs <= cons.nout


@settings(max_examples=60, deadline=None)
@given(dag_and_constraints())
def test_returned_cut_is_feasible_and_positive(case):
    dfg, cons = case
    res = find_best_cut(dfg, cons, MODEL)
    if res.cut is not None:
        assert res.cut.satisfies(cons)
        assert res.cut.merit > 0
        assert not any(dfg.nodes[i].forbidden for i in res.cut.nodes)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(2, 12))
def test_convexity_definition(seed, n):
    """dfg.is_convex agrees with the path definition of the paper."""
    rng = random.Random(seed)
    dfg = random_dag_dfg(n, rng, edge_prob=0.4)
    for _ in range(10):
        members = {i for i in range(n) if rng.random() < 0.5}
        convex = dfg.is_convex(members)
        # Reference: for every pair (u, v) in S, no path u->...->v leaves S.
        violation = False
        for u in members:
            # BFS over paths starting outside the cut.
            frontier = [s for s in dfg.succs[u] if s not in members]
            seen = set(frontier)
            while frontier:
                x = frontier.pop()
                for s in dfg.succs[x]:
                    if s in members:
                        violation = True
                    elif s not in seen:
                        seen.add(s)
                        frontier.append(s)
        assert convex == (not violation)

"""Property tests for the selection layer (Problem 2 machinery)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Constraints, select_iterative, select_optimal
from repro.core.bruteforce import best_disjoint_cuts_bruteforce
from repro.hwmodel import CostModel
from repro.ir.synth import random_dag_dfg

MODEL = CostModel()


@st.composite
def small_app(draw):
    seed = draw(st.integers(0, 2 ** 31))
    num_blocks = draw(st.integers(1, 3))
    rng = random.Random(seed)
    dfgs = []
    for k in range(num_blocks):
        dfgs.append(random_dag_dfg(
            rng.randint(2, 7), rng,
            edge_prob=rng.uniform(0.1, 0.5),
            forbidden_prob=0.1,
            name=f"f/b{k}",
            weight=float(rng.randint(1, 20)),
        ))
    cons = Constraints(nin=rng.randint(2, 4), nout=rng.randint(1, 2),
                       ninstr=rng.randint(1, 4))
    return dfgs, cons


@settings(max_examples=50, deadline=None)
@given(small_app())
def test_iterative_invariants(case):
    dfgs, cons = case
    result = select_iterative(dfgs, cons, MODEL)
    # Cardinality and merit bookkeeping.
    assert result.num_instructions <= cons.ninstr
    assert result.total_merit == pytest.approx(
        sum(c.merit for c in result.cuts))
    # Every cut individually feasible and profitable.
    for cut in result.cuts:
        assert cut.merit > 0
        assert cut.num_inputs <= cons.nin
        assert cut.num_outputs <= cons.nout
        assert cut.convex
    # No instruction (IR object) is covered twice across cuts.
    seen = set()
    for cut in result.cuts:
        for i in cut.nodes:
            for insn in cut.dfg.nodes[i].insns:
                assert id(insn) not in seen
                seen.add(id(insn))


@settings(max_examples=25, deadline=None)
@given(small_app())
def test_optimal_dominates_iterative(case):
    dfgs, cons = case
    optimal = select_optimal(dfgs, cons, MODEL, max_nodes=None)
    iterative = select_iterative(dfgs, cons, MODEL)
    assert optimal.total_merit >= iterative.total_merit - 1e-9


@settings(max_examples=20, deadline=None)
@given(small_app())
def test_optimal_matches_global_bruteforce_single_block(case):
    dfgs, cons = case
    if len(dfgs) != 1:
        return
    optimal = select_optimal(dfgs, cons, MODEL, max_nodes=None)
    _, best = best_disjoint_cuts_bruteforce(dfgs[0], cons, cons.ninstr,
                                            MODEL)
    assert optimal.total_merit == pytest.approx(best)


@settings(max_examples=30, deadline=None)
@given(small_app())
def test_speedup_consistent_with_merit(case):
    dfgs, cons = case
    result = select_iterative(dfgs, cons, MODEL)
    if result.total_merit == 0:
        assert result.speedup == pytest.approx(1.0)
    else:
        assert result.speedup > 1.0
        # speedup = base / (base - merit)
        base = result.baseline_cycles
        assert result.speedup == pytest.approx(
            base / (base - result.total_merit))

"""Unit tests for Cut, Constraints and the reference evaluation."""

from __future__ import annotations

import math

import pytest

from repro.core import Constraints, Cut, cut_is_feasible, evaluate_cut
from repro.hwmodel import CostModel
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg

MODEL = CostModel()


@pytest.fixture()
def dfg():
    # mul -> add -> shr, plus an independent xor.
    return make_dfg(
        [Opcode.MUL, Opcode.ADD, Opcode.ASHR, Opcode.XOR],
        [(0, 1), (1, 2)],
        live_out=[2, 3],
        name="t",
    )


def by_op(dfg, op):
    return [n.index for n in dfg.nodes if n.opcode is op][0]


class TestConstraints:
    def test_validation(self):
        with pytest.raises(ValueError):
            Constraints(nin=0, nout=1)
        with pytest.raises(ValueError):
            Constraints(nin=1, nout=0)
        with pytest.raises(ValueError):
            Constraints(nin=1, nout=1, ninstr=0)

    def test_describe(self):
        text = Constraints(nin=4, nout=2, ninstr=16).describe()
        assert "Nin=4" in text and "Nout=2" in text and "Ninstr=16" in text

    def test_frozen(self):
        cons = Constraints(nin=2, nout=1)
        with pytest.raises(Exception):
            cons.nin = 3


class TestEvaluateCut:
    def test_empty_cut(self, dfg):
        cut = evaluate_cut(dfg, [], MODEL)
        assert cut.size == 0
        assert cut.merit == 0.0
        assert cut.convex

    def test_single_node(self, dfg):
        mul = by_op(dfg, Opcode.MUL)
        cut = evaluate_cut(dfg, [mul], MODEL)
        assert cut.num_inputs == 2
        assert cut.num_outputs == 1
        assert cut.convex
        assert cut.merit == 1.0        # 2 sw - 1 hw

    def test_chain_cut(self, dfg):
        members = [by_op(dfg, op) for op in
                   (Opcode.MUL, Opcode.ADD, Opcode.ASHR)]
        cut = evaluate_cut(dfg, members, MODEL)
        assert cut.num_outputs == 1
        assert cut.is_connected()
        assert cut.satisfies(Constraints(nin=4, nout=1))
        assert not cut.satisfies(Constraints(nin=3, nout=1))

    def test_disconnected_cut(self, dfg):
        members = [by_op(dfg, Opcode.MUL), by_op(dfg, Opcode.XOR)]
        cut = evaluate_cut(dfg, members, MODEL)
        assert not cut.is_connected()
        assert cut.num_outputs == 2

    def test_nonconvex_cut_flagged(self, dfg):
        members = [by_op(dfg, Opcode.MUL), by_op(dfg, Opcode.ASHR)]
        cut = evaluate_cut(dfg, members, MODEL)
        assert not cut.convex
        assert not cut.satisfies(Constraints(nin=8, nout=8))

    def test_out_of_range_node(self, dfg):
        with pytest.raises(ValueError):
            evaluate_cut(dfg, [99], MODEL)

    def test_forbidden_node_merit(self):
        g = make_dfg([Opcode.LOAD], [], live_out=[0])
        cut = evaluate_cut(g, [0], MODEL)
        assert cut.merit == -math.inf

    def test_node_labels(self, dfg):
        mul = by_op(dfg, Opcode.MUL)
        cut = evaluate_cut(dfg, [mul], MODEL)
        assert cut.node_labels() == [dfg.nodes[mul].label]

    def test_describe_mentions_shape(self, dfg):
        members = [by_op(dfg, Opcode.MUL), by_op(dfg, Opcode.XOR)]
        cut = evaluate_cut(dfg, members, MODEL)
        assert "disconnected" in cut.describe()


class TestFeasibility:
    def test_feasible_cut(self, dfg):
        mul = by_op(dfg, Opcode.MUL)
        assert cut_is_feasible(dfg, [mul], Constraints(nin=2, nout=1))
        assert not cut_is_feasible(dfg, [mul], Constraints(nin=1, nout=1))

    def test_forbidden_rejected(self):
        g = make_dfg([Opcode.STORE], [], live_out=[])
        assert not cut_is_feasible(g, [0], Constraints(nin=8, nout=8))

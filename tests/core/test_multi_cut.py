"""Tests for the (M+1)-ary multi-cut identification (Section 6.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Constraints, find_best_cut, find_best_cuts
from repro.core.bruteforce import best_disjoint_cuts_bruteforce
from repro.hwmodel import CostModel
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg, random_dag_dfg

MODEL = CostModel()


class TestBasics:
    def test_m1_equals_single_cut(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD],
                       [(0, 1), (1, 2)], live_out=[2])
        cons = Constraints(nin=4, nout=1)
        single = find_best_cut(dfg, cons, MODEL)
        multi = find_best_cuts(dfg, cons, 1, MODEL)
        assert multi.total_merit == pytest.approx(single.cut.merit)

    def test_two_cuts_capture_two_islands(self):
        # Two independent mul->add chains; Nout=1 forces two separate cuts.
        ops = [Opcode.MUL, Opcode.ADD, Opcode.MUL, Opcode.ADD]
        edges = [(0, 1), (2, 3)]
        dfg = make_dfg(ops, edges, live_out=[1, 3])
        cons = Constraints(nin=2, nout=1)
        one = find_best_cuts(dfg, cons, 1, MODEL)
        two = find_best_cuts(dfg, cons, 2, MODEL)
        assert len(two.cuts) == 2
        assert two.total_merit > one.total_merit
        sets = [c.nodes for c in two.cuts]
        assert sets[0].isdisjoint(sets[1])

    def test_cuts_are_disjoint_and_feasible(self):
        rng = random.Random(3)
        dfg = random_dag_dfg(7, rng, edge_prob=0.3)
        cons = Constraints(nin=3, nout=2)
        result = find_best_cuts(dfg, cons, 3, MODEL)
        used = set()
        for cut in result.cuts:
            assert cut.satisfies(cons)
            assert not (cut.nodes & used)
            used |= cut.nodes

    def test_more_cuts_never_hurt(self):
        rng = random.Random(11)
        dfg = random_dag_dfg(8, rng, edge_prob=0.35)
        cons = Constraints(nin=3, nout=1)
        merits = [find_best_cuts(dfg, cons, m, MODEL).total_merit
                  for m in (1, 2, 3)]
        assert merits[0] <= merits[1] <= merits[2]


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(2, 7), st.integers(1, 3))
def test_multi_cut_matches_bruteforce(seed, n, m):
    rng = random.Random(seed)
    dfg = random_dag_dfg(n, rng, edge_prob=rng.uniform(0.1, 0.6),
                         forbidden_prob=0.1)
    cons = Constraints(nin=rng.randint(1, 4), nout=rng.randint(1, 3))
    fast = find_best_cuts(dfg, cons, m, MODEL)
    _, slow_total = best_disjoint_cuts_bruteforce(dfg, cons, m, MODEL)
    assert fast.total_merit == pytest.approx(slow_total)

"""Equivalence of the bitset branch-and-bound engine with the naive
reference semantics.

The engine (``repro.core.engine``) encodes the search state in Python-int
bitsets; these tests pin it, property-style, against the from-scratch
oracles (``dfg.is_convex`` / ``cut_inputs`` / ``cut_outputs`` /
``evaluate_cut``), against brute-force enumeration, and — for the
upper-bound pruning mode, which must never change the returned optimum —
against the engine's own exhaustive default on randomized DFGs and on
every registered workload.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Constraints,
    SearchLimits,
    enumerate_feasible_cuts,
    evaluate_cut,
    find_best_cut,
    find_best_cuts,
    parallel_map,
    resolve_workers,
    select_iterative,
)
from repro.core.bruteforce import best_cut_bruteforce
from repro.hwmodel import CostModel
from repro.ir.synth import make_dfg, random_dag_dfg
from repro.ir.opcodes import Opcode
from repro.pipeline import prepare_application
from repro.workloads import WORKLOADS

MODEL = CostModel()

#: Session fixtures from tests/conftest.py where one exists; other
#: registered workloads are compiled on demand at a small problem size.
APP_FIXTURES = {
    "adpcm-decode": "adpcm_decode_app",
    "adpcm-encode": "adpcm_encode_app",
    "gsm": "gsm_app",
    "fir": "fir_app",
    "crc32": "crc_app",
    "mixer": "mixer_app",
}

_APP_CACHE = {}


def _workload_app(name, request):
    fixture = APP_FIXTURES.get(name)
    if fixture is not None:
        return request.getfixturevalue(fixture)
    if name not in _APP_CACHE:
        _APP_CACHE[name] = prepare_application(name, n=16)
    return _APP_CACHE[name]


@st.composite
def dag_and_constraints(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n = draw(st.integers(1, 12))
    edge_prob = draw(st.floats(0.05, 0.7))
    forbidden_prob = draw(st.sampled_from([0.0, 0.1, 0.3]))
    rng = random.Random(seed)
    dfg = random_dag_dfg(n, rng, edge_prob=edge_prob,
                         forbidden_prob=forbidden_prob)
    nin = draw(st.integers(1, 6))
    nout = draw(st.integers(1, 4))
    return dfg, Constraints(nin=nin, nout=nout)


class TestMasks:
    """The cached bitset encoding must mirror the adjacency lists."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 14))
    def test_masks_match_adjacency(self, seed, n):
        rng = random.Random(seed)
        dfg = random_dag_dfg(n, rng, edge_prob=0.4, forbidden_prob=0.2)
        masks = dfg.masks
        assert masks is dfg.masks          # cached, built once
        for i in range(dfg.n):
            assert masks.succ[i] == sum(1 << s for s in dfg.succs[i])
            assert masks.pred[i] == sum(1 << p for p in dfg.preds[i])
            assert masks.producer[i] == sum(
                1 << p for p in dfg.producers_of(i))
            assert bool(masks.forced_out >> i & 1) == dfg.nodes[i].forced_out
            assert bool(masks.forbidden >> i & 1) == dfg.nodes[i].forbidden
        assert masks.all_nodes == (1 << dfg.n) - 1

    def test_producers_cached(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD], [(0, 1)], live_out=[1])
        assert dfg.producers is dfg.producers
        assert dfg.producers == [dfg.producers_of(i) for i in range(dfg.n)]

    def test_cost_vectors_cached_per_model(self):
        dfg = make_dfg([Opcode.MUL, Opcode.LOAD], [(0, 1)], live_out=[1])
        sw, hw = dfg.cost_vectors(MODEL)
        assert dfg.cost_vectors(MODEL)[0] is sw
        forbidden = [i for i in range(dfg.n) if dfg.nodes[i].forbidden]
        assert forbidden, "fixture must contain a forbidden node"
        for i in forbidden:
            assert sw[i] == 0.0
            assert hw[i] == float("inf")
        other = CostModel()
        assert dfg.cost_vectors(other)[0] is not sw


class TestAgainstNaiveOracles:
    """Every cut the engine reports feasible must satisfy the from-scratch
    definitions; the engine's incremental merit must match evaluate_cut."""

    @settings(max_examples=80, deadline=None)
    @given(dag_and_constraints())
    def test_feasible_cuts_satisfy_oracles(self, case):
        dfg, cons = case
        for nodes, merit in enumerate_feasible_cuts(dfg, cons, MODEL):
            members = set(nodes)
            assert dfg.is_convex(members)
            assert len(dfg.cut_inputs(members)) <= cons.nin
            assert len(dfg.cut_outputs(members)) <= cons.nout
            ref = evaluate_cut(dfg, members, MODEL)
            assert merit == pytest.approx(ref.merit)

    @settings(max_examples=60, deadline=None)
    @given(dag_and_constraints())
    def test_best_cut_matches_bruteforce(self, case):
        dfg, cons = case
        fast = find_best_cut(dfg, cons, MODEL)
        slow = best_cut_bruteforce(dfg, cons, MODEL)
        fast_merit = fast.cut.merit if fast.cut else 0.0
        slow_merit = slow.merit if slow else 0.0
        assert fast_merit == pytest.approx(slow_merit)
        if fast.cut is not None:
            members = set(fast.cut.nodes)
            assert dfg.is_convex(members)
            assert len(dfg.cut_inputs(members)) <= cons.nin
            assert len(dfg.cut_outputs(members)) <= cons.nout


class TestUpperBoundPruning:
    """The admissible bound may only discard subtrees that cannot beat
    the incumbent: identical best cut, never more work."""

    UB = SearchLimits(use_upper_bound=True)

    @settings(max_examples=80, deadline=None)
    @given(dag_and_constraints())
    def test_same_best_cut_fewer_cuts(self, case):
        dfg, cons = case
        plain = find_best_cut(dfg, cons, MODEL)
        pruned = find_best_cut(dfg, cons, MODEL, limits=self.UB)
        plain_nodes = plain.cut.nodes if plain.cut else None
        pruned_nodes = pruned.cut.nodes if pruned.cut else None
        assert plain_nodes == pruned_nodes
        assert plain.merit == pruned.merit
        assert pruned.stats.cuts_considered <= plain.stats.cuts_considered
        assert plain.stats.ub_pruned == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_space_covered_complete_search(self, seed):
        rng = random.Random(seed)
        dfg = random_dag_dfg(rng.randint(1, 10), rng, edge_prob=0.3)
        res = find_best_cut(dfg, Constraints(nin=4, nout=2), MODEL)
        assert res.complete
        assert res.stats.space_covered == pytest.approx(1.0)

    def test_budget_is_a_loop_condition(self):
        # Long chains used to need recursion-limit games; the iterative
        # engine walks a 500-node graph without any.
        ops = [Opcode.ADD] * 500
        edges = [(i, i + 1) for i in range(499)]
        dfg = make_dfg(ops, edges, live_out=[499])
        res = find_best_cut(dfg, Constraints(nin=8, nout=1), MODEL,
                            limits=SearchLimits(max_considered=5_000))
        assert not res.complete
        assert res.stats.cuts_considered <= 5_001
        assert 0.0 < res.stats.space_covered < 1.0


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("nin,nout", [(4, 2), (2, 1)])
def test_workload_blocks_ub_equivalence(workload, nin, nout, request):
    """On every registered workload, the pruned search returns the exact
    optimum of the default search on every (tractable) block, and the
    optimum passes the naive oracles."""
    app = _workload_app(workload, request)
    cons = Constraints(nin=nin, nout=nout)
    limits = SearchLimits(max_considered=300_000, use_upper_bound=True)
    checked = 0
    for dfg in app.dfgs:
        if dfg.n > 40:
            continue
        plain = find_best_cut(dfg, cons, MODEL,
                              SearchLimits(max_considered=300_000))
        pruned = find_best_cut(dfg, cons, MODEL, limits)
        if not plain.complete:
            continue
        plain_nodes = plain.cut.nodes if plain.cut else None
        pruned_nodes = pruned.cut.nodes if pruned.cut else None
        assert plain_nodes == pruned_nodes
        assert plain.merit == pruned.merit
        if plain.cut is not None:
            members = set(plain.cut.nodes)
            assert dfg.is_convex(members)
            assert len(dfg.cut_inputs(members)) == plain.cut.num_inputs
            assert len(dfg.cut_outputs(members)) == plain.cut.num_outputs
        checked += 1
    assert checked > 0, f"no tractable blocks checked in {workload}"


class TestMultiCutEngine:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(2, 7), st.integers(1, 3))
    def test_multi_cut_members_pass_oracles(self, seed, n, m):
        rng = random.Random(seed)
        dfg = random_dag_dfg(n, rng, edge_prob=0.4, forbidden_prob=0.1)
        cons = Constraints(nin=3, nout=2)
        result = find_best_cuts(dfg, cons, m, MODEL)
        used = set()
        for cut in result.cuts:
            members = set(cut.nodes)
            assert not members & used
            used |= members
            assert dfg.is_convex(members)
            assert len(dfg.cut_inputs(members)) <= cons.nin
            assert len(dfg.cut_outputs(members)) <= cons.nout


class TestParallelSelection:
    def _dfgs(self):
        rng = random.Random(7)
        return [random_dag_dfg(8, rng, edge_prob=0.35, name=f"b{k}")
                for k in range(3)]

    def test_workers_do_not_change_selection(self):
        dfgs = self._dfgs()
        cons = Constraints(nin=3, nout=2, ninstr=4)
        serial = select_iterative(dfgs, cons, MODEL, workers=1)
        forked = select_iterative(dfgs, cons, MODEL, workers=2)
        assert ([sorted(c.nodes) for c in serial.cuts]
                == [sorted(c.nodes) for c in forked.cuts])
        assert serial.total_merit == forked.total_merit
        assert serial.stats.cuts_considered == forked.stats.cuts_considered

    def test_parallel_map_matches_serial(self):
        items = list(range(7))
        assert parallel_map(_square, items, workers=2) == \
            [x * x for x in items]

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert resolve_workers(None) == 1


def _square(x: int) -> int:
    return x * x

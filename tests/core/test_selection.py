"""Tests for the optimal and iterative selection algorithms (Problem 2)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BlockTooLargeError,
    Constraints,
    select_iterative,
    select_optimal,
)
from repro.core.bruteforce import best_disjoint_cuts_bruteforce
from repro.hwmodel import CostModel
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg, random_dag_dfg

MODEL = CostModel()


def two_block_app():
    """Two blocks with different weights and structures."""
    hot = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD, Opcode.XOR],
                   [(0, 1), (1, 2), (2, 3)], live_out=[3],
                   name="f/hot", weight=100.0)
    cold = make_dfg([Opcode.MUL, Opcode.MUL],
                    [(0, 1)], live_out=[1], name="f/cold", weight=1.0)
    return [hot, cold]


class TestIterative:
    def test_respects_ninstr(self):
        dfgs = two_block_app()
        for ninstr in (1, 2, 3):
            res = select_iterative(
                dfgs, Constraints(nin=4, nout=1, ninstr=ninstr), MODEL)
            assert res.num_instructions <= ninstr

    def test_prefers_hot_block(self):
        dfgs = two_block_app()
        res = select_iterative(dfgs, Constraints(4, 1, 1), MODEL)
        assert res.cuts[0].dfg.name == "f/hot"

    def test_cuts_do_not_overlap_instructions(self):
        rng = random.Random(5)
        dfgs = [random_dag_dfg(9, rng, edge_prob=0.35, name=f"b{k}")
                for k in range(3)]
        res = select_iterative(dfgs, Constraints(3, 2, 6), MODEL)
        seen = set()
        for cut in res.cuts:
            for i in cut.nodes:
                for insn in cut.dfg.nodes[i].insns:
                    assert id(insn) not in seen
                    seen.add(id(insn))

    def test_total_merit_is_sum(self):
        dfgs = two_block_app()
        res = select_iterative(dfgs, Constraints(4, 1, 4), MODEL)
        assert res.total_merit == pytest.approx(
            sum(c.merit for c in res.cuts))

    def test_speedup_greater_one_when_cuts_found(self):
        res = select_iterative(two_block_app(), Constraints(4, 1, 2), MODEL)
        assert res.cuts
        assert res.speedup > 1.0

    def test_monotone_in_ninstr(self):
        rng = random.Random(9)
        dfgs = [random_dag_dfg(8, rng, edge_prob=0.3, name=f"b{k}")
                for k in range(2)]
        merits = [
            select_iterative(dfgs, Constraints(3, 1, m), MODEL).total_merit
            for m in (1, 2, 4, 8)
        ]
        assert merits == sorted(merits)


class TestOptimal:
    def test_matches_bruteforce_on_one_block(self):
        rng = random.Random(17)
        for trial in range(8):
            dfg = random_dag_dfg(6, rng, edge_prob=0.4, name=f"t{trial}")
            cons = Constraints(nin=3, nout=1, ninstr=2)
            res = select_optimal([dfg], cons, MODEL)
            _, slow = best_disjoint_cuts_bruteforce(dfg, cons, 2, MODEL)
            assert res.total_merit == pytest.approx(slow)

    def test_optimal_at_least_iterative(self):
        rng = random.Random(23)
        for trial in range(6):
            dfgs = [random_dag_dfg(6, rng, edge_prob=0.35,
                                   name=f"b{trial}_{k}") for k in range(2)]
            cons = Constraints(nin=3, nout=1, ninstr=3)
            optimal = select_optimal(dfgs, cons, MODEL)
            iterative = select_iterative(dfgs, cons, MODEL)
            assert optimal.total_merit >= iterative.total_merit - 1e-9

    def test_large_block_guard(self):
        rng = random.Random(1)
        big = random_dag_dfg(50, rng, edge_prob=0.1, name="big")
        with pytest.raises(BlockTooLargeError):
            select_optimal([big], Constraints(4, 2, 2), MODEL,
                           max_nodes=40)

    def test_guard_can_be_disabled(self):
        rng = random.Random(2)
        small = random_dag_dfg(5, rng, edge_prob=0.4)
        res = select_optimal([small], Constraints(3, 1, 1), MODEL,
                             max_nodes=None)
        assert res.algorithm == "Optimal"

    def test_allocates_across_blocks(self):
        # One block with one good cut; another with two good cuts: with
        # ninstr=3 the optimal selection must take all three.
        a = make_dfg([Opcode.MUL, Opcode.MUL], [], live_out=[0, 1],
                     name="f/a", weight=10.0)
        b = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD],
                     [(0, 1), (1, 2)], live_out=[2], name="f/b",
                     weight=10.0)
        cons = Constraints(nin=2, nout=1, ninstr=3)
        res = select_optimal([a, b], cons, MODEL)
        blocks = sorted(c.dfg.name for c in res.cuts)
        assert blocks.count("f/a") == 2
        assert blocks.count("f/b") == 1

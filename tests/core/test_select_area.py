"""Tests for area-constrained selection (the paper's Section 9
future-work item)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import Constraints, select_iterative
from repro.core.select_area import (
    AreaCandidate,
    enumerate_candidates,
    greedy_select,
    knapsack_select,
    select_area_constrained,
)
from repro.hwmodel import CostModel, cut_area
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg

MODEL = CostModel()
CONS = Constraints(nin=4, nout=2, ninstr=16)


def pool_from(dfgs):
    return enumerate_candidates(dfgs, CONS, MODEL)


class TestCandidatePool:
    def test_candidates_are_profitable(self, gsm_app):
        pool = pool_from(gsm_app.dfgs)
        assert pool
        assert all(c.merit > 0 for c in pool)
        assert all(c.area >= 0 for c in pool)

    def test_candidates_do_not_overlap(self, gsm_app):
        pool = pool_from(gsm_app.dfgs)
        seen = set()
        for cand in pool:
            for i in cand.cut.nodes:
                for insn in cand.cut.dfg.nodes[i].insns:
                    assert id(insn) not in seen
                    seen.add(id(insn))

    def test_area_matches_model(self, gsm_app):
        for cand in pool_from(gsm_app.dfgs):
            assert cand.area == pytest.approx(
                cut_area(cand.cut.dfg, cand.cut.nodes, MODEL))


class TestKnapsack:
    def test_exact_beats_or_matches_greedy(self):
        rng = random.Random(0)
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        from dataclasses import replace

        from repro.core import evaluate_cut
        base = evaluate_cut(dfg, {0}, MODEL)
        for trial in range(30):
            pool = [
                AreaCandidate(cut=replace(base,
                                          merit=float(rng.randint(1, 50))),
                              area=rng.choice([0.1, 0.25, 0.5, 1.0, 2.0]))
                for _ in range(rng.randint(1, 8))
            ]
            budget = rng.choice([0.5, 1.0, 2.0, 3.0])
            exact = knapsack_select(pool, budget)
            greedy = greedy_select(pool, budget)
            exact_merit = sum(c.merit for c in exact)
            greedy_merit = sum(c.merit for c in greedy)
            assert exact_merit >= greedy_merit - 1e-9
            assert sum(c.area for c in exact) <= budget + 0.01 + 1e-9

    def test_matches_bruteforce_enumeration(self):
        rng = random.Random(7)
        from dataclasses import replace

        from repro.core import evaluate_cut
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        base = evaluate_cut(dfg, {0}, MODEL)
        for trial in range(20):
            pool = [
                AreaCandidate(cut=replace(base,
                                          merit=float(rng.randint(1, 30))),
                              area=rng.randint(1, 8) * 0.25)
                for _ in range(rng.randint(1, 7))
            ]
            budget = rng.randint(1, 10) * 0.25
            exact = sum(c.merit for c in knapsack_select(pool, budget))
            best = 0.0
            for r in range(len(pool) + 1):
                for combo in itertools.combinations(pool, r):
                    if sum(c.area for c in combo) <= budget + 1e-9:
                        best = max(best, sum(c.merit for c in combo))
            assert exact == pytest.approx(best)

    def test_cardinality_cap_inside_dp_beats_post_truncation(self):
        """Regression: truncating the unconstrained DP solution to
        Ninstr afterwards can be arbitrarily suboptimal.  Two small
        candidates beat one big one on *total* merit, but under a
        one-instruction cap the big one is the optimum — post-truncation
        keeps the wrong set."""
        from dataclasses import replace

        from repro.core import evaluate_cut
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        base = evaluate_cut(dfg, {0}, MODEL)
        pool = [
            AreaCandidate(cut=replace(base, merit=10.0), area=0.5),
            AreaCandidate(cut=replace(base, merit=10.0), area=0.5),
            AreaCandidate(cut=replace(base, merit=15.0), area=1.0),
        ]
        unconstrained = knapsack_select(pool, 1.0)
        assert sum(c.merit for c in unconstrained) == 20.0
        # The old code truncated `unconstrained` to the cap: merit 10.
        truncated_merit = sum(
            c.merit for c in
            sorted(unconstrained, key=lambda c: -c.merit)[:1])
        assert truncated_merit == 10.0
        capped = knapsack_select(pool, 1.0, max_count=1)
        assert len(capped) == 1
        assert sum(c.merit for c in capped) == 15.0

    def test_cardinality_matches_bruteforce(self):
        rng = random.Random(42)
        from dataclasses import replace

        from repro.core import evaluate_cut
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        base = evaluate_cut(dfg, {0}, MODEL)
        for trial in range(25):
            pool = [
                AreaCandidate(cut=replace(base,
                                          merit=float(rng.randint(1, 30))),
                              area=rng.randint(1, 8) * 0.25)
                for _ in range(rng.randint(1, 7))
            ]
            budget = rng.randint(1, 10) * 0.25
            max_count = rng.randint(1, 4)
            picked = knapsack_select(pool, budget, max_count=max_count)
            assert len(picked) <= max_count
            assert sum(c.area for c in picked) <= budget + 0.01 + 1e-9
            best = 0.0
            for r in range(min(len(pool), max_count) + 1):
                for combo in itertools.combinations(pool, r):
                    if sum(c.area for c in combo) <= budget + 1e-9:
                        best = max(best, sum(c.merit for c in combo))
            assert sum(c.merit for c in picked) == pytest.approx(best)

    def test_greedy_respects_cap(self):
        from dataclasses import replace

        from repro.core import evaluate_cut
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        base = evaluate_cut(dfg, {0}, MODEL)
        pool = [AreaCandidate(cut=replace(base, merit=float(m)), area=0.1)
                for m in (5, 4, 3, 2)]
        picked = greedy_select(pool, 10.0, max_count=2)
        assert [c.merit for c in picked] == [5.0, 4.0]

    def test_zero_budget_selects_nothing_with_area(self):
        from dataclasses import replace

        from repro.core import evaluate_cut
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        base = evaluate_cut(dfg, {0}, MODEL)
        pool = [AreaCandidate(cut=replace(base, merit=10.0), area=0.5)]
        assert knapsack_select(pool, 0.0) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            knapsack_select([], -1.0)


class TestEndToEnd:
    def test_budget_monotone(self, adpcm_decode_app):
        merits = []
        for budget in (0.5, 1.5, 5.0):
            res = select_area_constrained(
                adpcm_decode_app.dfgs, CONS, budget, MODEL)
            total_area = sum(
                cut_area(c.dfg, c.nodes, MODEL) for c in res.cuts)
            assert total_area <= budget + 0.02
            merits.append(res.total_merit)
        assert merits == sorted(merits)

    def test_unlimited_budget_matches_iterative_pool(self, gsm_app):
        res = select_area_constrained(gsm_app.dfgs, CONS, 1000.0, MODEL)
        iterative = select_iterative(gsm_app.dfgs, CONS, MODEL)
        # With an effectively infinite budget the knapsack keeps every
        # profitable candidate, so it can only match or beat Iterative
        # (same pool, same Ninstr cap).
        assert res.total_merit >= iterative.total_merit - 1e-9

    def test_greedy_method(self, gsm_app):
        res = select_area_constrained(gsm_app.dfgs, CONS, 2.0, MODEL,
                                      method="greedy")
        assert res.algorithm.startswith("AreaConstrained(greedy")

    def test_ninstr_cap_respected(self, gsm_app):
        cons = Constraints(nin=4, nout=2, ninstr=2)
        res = select_area_constrained(gsm_app.dfgs, cons, 1000.0, MODEL)
        assert res.num_instructions <= 2
        # With an unlimited area budget the capped optimum is simply the
        # top-ninstr merits of the pool.
        pool = enumerate_candidates(gsm_app.dfgs, cons, MODEL)
        best_two = sum(sorted((c.merit for c in pool), reverse=True)[:2])
        assert res.total_merit == pytest.approx(best_two)

    def test_unknown_method(self, gsm_app):
        with pytest.raises(ValueError):
            select_area_constrained(gsm_app.dfgs, CONS, 2.0, MODEL,
                                    method="magic")

"""Unit tests for the exact single-cut identification algorithm."""

from __future__ import annotations


import pytest

from repro.core import (
    Constraints,
    SearchLimits,
    enumerate_feasible_cuts,
    evaluate_cut,
    find_best_cut,
)
from repro.hwmodel import CostModel, uniform_cost_model
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg


@pytest.fixture(scope="module")
def model():
    return CostModel()


def chain(n, op=Opcode.ADD, live_last=True):
    """A linear chain: user 0 -> 1 -> ... -> n-1 (renumbered reverse)."""
    ops = [op] * n
    edges = [(i, i + 1) for i in range(n - 1)]
    live = [n - 1] if live_last else []
    return make_dfg(ops, edges, live_out=live, name="chain")


class TestSimpleGraphs:
    def test_single_node_mul(self, model):
        dfg = make_dfg([Opcode.MUL], [], live_out=[0])
        res = find_best_cut(dfg, Constraints(nin=2, nout=1), model)
        assert res.cut is not None
        assert res.cut.nodes == frozenset({0})
        # MUL: 2 sw cycles vs 1 hw cycle.
        assert res.cut.merit == 1.0

    def test_single_add_not_profitable(self, model):
        # ADD saves nothing (1 sw cycle vs 1 hw cycle) -> no cut.
        dfg = make_dfg([Opcode.ADD], [], live_out=[0])
        res = find_best_cut(dfg, Constraints(nin=2, nout=1), model)
        assert res.cut is None

    def test_add_chain_profitable(self, model):
        # Three chained adds: 3 sw cycles vs ceil(0.9) = 1 hw cycle.
        dfg = chain(3)
        res = find_best_cut(dfg, Constraints(nin=8, nout=1), model)
        assert res.cut is not None
        assert res.cut.size == 3
        assert res.cut.merit == 2.0

    def test_empty_graph(self, model):
        dfg = make_dfg([], [], live_out=[])
        res = find_best_cut(dfg, Constraints(nin=4, nout=2), model)
        assert res.cut is None
        assert res.stats.cuts_considered == 0

    def test_forbidden_nodes_never_selected(self, model):
        # load -> add -> store; only the add is legal.
        ops = [Opcode.LOAD, Opcode.ADD, Opcode.STORE]
        edges = [(0, 1), (1, 2)]
        dfg = make_dfg(ops, edges, live_out=[])
        res = find_best_cut(dfg, Constraints(nin=8, nout=4), model)
        if res.cut is not None:
            for i in res.cut.nodes:
                assert not dfg.nodes[i].forbidden


class TestConstraintEnforcement:
    def test_input_constraint(self, model):
        # A 4-input adder tree: under Nin=2 only single adds fit... which
        # are unprofitable, so nothing is chosen.
        ops = [Opcode.ADD, Opcode.ADD, Opcode.ADD]
        edges = [(0, 2), (1, 2)]  # two adds feeding a third
        dfg = make_dfg(ops, edges, live_out=[2])
        res2 = find_best_cut(dfg, Constraints(nin=2, nout=1), model)
        res4 = find_best_cut(dfg, Constraints(nin=4, nout=1), model)
        assert res2.cut is None
        assert res4.cut is not None and res4.cut.size == 3

    def test_every_returned_cut_satisfies_constraints(self, model):
        dfg = make_dfg(
            [Opcode.MUL, Opcode.MUL, Opcode.ADD, Opcode.ADD, Opcode.XOR],
            [(0, 2), (1, 2), (2, 3), (1, 4)],
            live_out=[3, 4],
        )
        for nin in (1, 2, 3, 4):
            for nout in (1, 2):
                cons = Constraints(nin=nin, nout=nout)
                res = find_best_cut(dfg, cons, model)
                if res.cut is not None:
                    assert res.cut.satisfies(cons)
                for nodes, _ in enumerate_feasible_cuts(dfg, cons, model):
                    cut = evaluate_cut(dfg, nodes, model)
                    assert cut.num_inputs <= nin
                    assert cut.num_outputs <= nout
                    assert cut.convex

    def test_constants_do_not_consume_ports(self, model):
        # shift by constant: only one register input.
        dfg = make_dfg([Opcode.SHL], [], live_out=[0],
                       extra_inputs={0: 1})
        res = find_best_cut(dfg, Constraints(nin=1, nout=1), model)
        # SHL reads one variable + one implicit const: fits Nin=1 and the
        # constant-shift is nearly free in hardware -> no positive merit
        # (1 sw vs 1 hw cycle); just assert feasibility accounting.
        cuts = list(enumerate_feasible_cuts(dfg, Constraints(1, 1), model))
        assert [c for c, _ in cuts] == [(0,)]


class TestDisconnectedCuts:
    def test_two_components_selected_together(self, model):
        # Two independent MULs; with Nout=2 both fit in one instruction.
        dfg = make_dfg([Opcode.MUL, Opcode.MUL], [], live_out=[0, 1])
        res1 = find_best_cut(dfg, Constraints(nin=4, nout=1), model)
        res2 = find_best_cut(dfg, Constraints(nin=4, nout=2), model)
        assert res1.cut.size == 1
        assert res2.cut.size == 2
        assert not res2.cut.is_connected()
        # Parallel execution: both mults in 1 cycle -> merit 4-1=3.
        assert res2.cut.merit == 3.0

    def test_disconnected_critical_path_is_max_not_sum(self, model):
        dfg = make_dfg([Opcode.MUL, Opcode.MUL], [], live_out=[0, 1])
        cut = evaluate_cut(dfg, {0, 1}, model)
        assert cut.hardware_cycles == 1


class TestMerit:
    def test_merit_uses_block_weight(self, model):
        light = chain(3)
        heavy = make_dfg([Opcode.ADD] * 3, [(0, 1), (1, 2)],
                         live_out=[2], weight=100.0)
        res_l = find_best_cut(light, Constraints(8, 1), model)
        res_h = find_best_cut(heavy, Constraints(8, 1), model)
        assert res_h.cut.merit == 100.0 * res_l.cut.merit

    def test_uniform_model(self):
        dfg = chain(4)
        res = find_best_cut(dfg, Constraints(8, 1), uniform_cost_model())
        # 4 ops at 0.3 -> cp 1.2 -> 2 cycles; merit 4-2 = 2.
        assert res.cut is not None
        assert res.cut.merit == 2.0

    def test_negative_merit_cut_not_returned(self, model):
        # A lone DIV is far slower in our AFU model than in software
        # pipelines?  No: DIV sw=18, hw=ceil(10)=10 -> positive.  Use a
        # single ADD (merit 0) to check the >0 filter instead.
        dfg = make_dfg([Opcode.ADD], [], live_out=[0])
        res = find_best_cut(dfg, Constraints(4, 2), model)
        assert res.cut is None


class TestSearchLimits:
    def test_budget_stops_search(self, model):
        dfg = chain(14)
        limited = find_best_cut(dfg, Constraints(16, 8), model,
                                limits=SearchLimits(max_considered=10))
        assert not limited.complete
        assert limited.stats.cuts_considered <= 11

    def test_budget_large_enough_is_complete(self, model):
        dfg = chain(6)
        res = find_best_cut(dfg, Constraints(16, 8), model,
                            limits=SearchLimits(max_considered=10_000))
        assert res.complete


class TestStats:
    def test_considered_counts_every_one_branch(self, model):
        # Independent nodes, unconstrained: every nonempty cut is convex
        # and within ports, so all 2^n - 1 cuts get examined.
        dfg = make_dfg([Opcode.MUL] * 5, [], live_out=list(range(5)))
        res = find_best_cut(dfg, Constraints(nin=16, nout=16), model)
        assert res.stats.cuts_considered == 2 ** 5 - 1
        assert res.stats.cuts_feasible == 2 ** 5 - 1

    def test_chain_convexity_prunes_even_unconstrained(self, model):
        # In a 5-chain only the 15 contiguous subsets are convex.
        dfg = chain(5)
        res = find_best_cut(dfg, Constraints(nin=16, nout=16), model)
        assert res.stats.cuts_feasible == 15

    def test_graph_nodes_recorded(self, model):
        dfg = chain(5)
        res = find_best_cut(dfg, Constraints(nin=2, nout=1), model)
        assert res.stats.graph_nodes == 5

"""Tests for the Clubbing and MaxMISO baselines."""

from __future__ import annotations

import random

import pytest

from repro.core import Constraints, select_clubbing, select_maxmiso
from repro.core.baselines import clubs_of_block, maxmiso_cuts, \
    maxmiso_partition
from repro.core.cut import cut_is_feasible
from repro.core import select_iterative
from repro.hwmodel import CostModel
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg, random_dag_dfg

MODEL = CostModel()


class TestMaxMISOPartition:
    def test_chain_is_one_miso(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD],
                       [(0, 1), (1, 2)], live_out=[2])
        groups = [g for g in maxmiso_partition(dfg) if len(g) > 0]
        assert sorted(len(g) for g in groups) == [3]

    def test_fanout_splits_misos(self):
        # Node 0 feeds nodes 1 and 2: node 0 must root its own MISO.
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.ADD],
                       [(0, 1), (0, 2)], live_out=[1, 2])
        groups = maxmiso_partition(dfg)
        assert sorted(len(g) for g in groups) == [1, 1, 1]

    def test_partition_is_a_partition(self):
        rng = random.Random(4)
        for trial in range(20):
            dfg = random_dag_dfg(rng.randint(1, 12), rng,
                                 edge_prob=rng.uniform(0.1, 0.6),
                                 forbidden_prob=0.2)
            groups = maxmiso_partition(dfg)
            all_nodes = sorted(i for g in groups for i in g)
            assert all_nodes == list(range(dfg.n))

    def test_single_output_property(self):
        rng = random.Random(8)
        for trial in range(20):
            dfg = random_dag_dfg(rng.randint(1, 12), rng,
                                 edge_prob=rng.uniform(0.1, 0.6))
            for group in maxmiso_partition(dfg):
                if any(dfg.nodes[i].forbidden for i in group):
                    continue
                assert len(dfg.cut_outputs(group)) <= 1

    def test_misos_are_convex(self):
        rng = random.Random(12)
        for trial in range(20):
            dfg = random_dag_dfg(rng.randint(2, 12), rng,
                                 edge_prob=rng.uniform(0.1, 0.6))
            for group in maxmiso_partition(dfg):
                assert dfg.is_convex(group)

    def test_maximality(self):
        """No MISO can absorb its neighbour producer without either
        gaining a second output or stealing a shared node."""
        rng = random.Random(21)
        for trial in range(10):
            dfg = random_dag_dfg(rng.randint(2, 10), rng, edge_prob=0.4)
            groups = maxmiso_partition(dfg)
            group_of = {}
            for gid, g in enumerate(groups):
                for i in g:
                    group_of[i] = gid
            for gid, g in enumerate(groups):
                if any(dfg.nodes[i].forbidden for i in g):
                    continue
                members = set(g)
                for i in g:
                    for p in dfg.preds[i]:
                        if p in members or dfg.nodes[p].forbidden:
                            continue
                        grown = members | {p}
                        # Adding the producer must break the single-output
                        # property (otherwise the MISO was not maximal).
                        assert len(dfg.cut_outputs(grown)) > 1 or \
                            dfg.nodes[p].forced_out


class TestMaxMISOSelection:
    def test_input_constraint_filters_whole_misos(self):
        # 3-input MISO (two adds feeding one) is dropped at Nin=2 even
        # though a 2-input sub-cut exists inside it — the paper's point
        # about M1 buried in M2.
        dfg = make_dfg([Opcode.MUL, Opcode.MUL, Opcode.ADD],
                       [(0, 2), (1, 2)], live_out=[2])
        wide = maxmiso_cuts(dfg, Constraints(nin=4, nout=1), MODEL)
        narrow = maxmiso_cuts(dfg, Constraints(nin=2, nout=1), MODEL)
        assert len(wide) == 1 and wide[0].size == 3
        assert narrow == []

    def test_insensitive_to_nout(self, adpcm_decode_app):
        cons1 = Constraints(nin=4, nout=1, ninstr=8)
        cons4 = Constraints(nin=4, nout=4, ninstr=8)
        res1 = select_maxmiso(adpcm_decode_app.dfgs, cons1, MODEL)
        res4 = select_maxmiso(adpcm_decode_app.dfgs, cons4, MODEL)
        assert res1.total_merit == pytest.approx(res4.total_merit)

    def test_selection_sorted_by_merit(self):
        rng = random.Random(31)
        dfgs = [random_dag_dfg(8, rng, edge_prob=0.3, name=f"b{k}")
                for k in range(3)]
        res = select_maxmiso(dfgs, Constraints(8, 1, 4), MODEL)
        merits = [c.merit for c in res.cuts]
        assert merits == sorted(merits, reverse=True)


class TestClubbing:
    def test_clubs_are_feasible(self):
        rng = random.Random(6)
        for trial in range(15):
            dfg = random_dag_dfg(rng.randint(1, 14), rng,
                                 edge_prob=rng.uniform(0.1, 0.5),
                                 forbidden_prob=0.15)
            cons = Constraints(nin=rng.randint(1, 4),
                               nout=rng.randint(1, 3))
            for club in clubs_of_block(dfg, cons, MODEL):
                assert cut_is_feasible(dfg, club.nodes, cons)

    def test_clubs_do_not_overlap(self):
        rng = random.Random(7)
        dfg = random_dag_dfg(12, rng, edge_prob=0.3)
        cons = Constraints(3, 2)
        seen = set()
        for club in clubs_of_block(dfg, cons, MODEL):
            assert not (club.nodes & seen)
            seen |= club.nodes

    def test_never_beats_exact_on_single_cut(self):
        rng = random.Random(13)
        for trial in range(10):
            dfg = random_dag_dfg(rng.randint(2, 10), rng, edge_prob=0.4,
                                 name=f"t{trial}")
            cons = Constraints(nin=3, nout=2, ninstr=1)
            club = select_clubbing([dfg], cons, MODEL)
            exact = select_iterative([dfg], cons, MODEL)
            assert club.total_merit <= exact.total_merit + 1e-9


class TestBaselinesVsExact:
    """The paper's headline: the exact algorithms dominate the baselines."""

    def test_iterative_dominates_on_adpcm(self, adpcm_decode_app):
        cons = Constraints(nin=4, nout=2, ninstr=16)
        iterative = select_iterative(adpcm_decode_app.dfgs, cons, MODEL)
        clubbing = select_clubbing(adpcm_decode_app.dfgs, cons, MODEL)
        maxmiso = select_maxmiso(adpcm_decode_app.dfgs, cons, MODEL)
        assert iterative.total_merit >= clubbing.total_merit
        assert iterative.total_merit >= maxmiso.total_merit
        assert iterative.speedup > 1.0

"""Tests for the work-stealing scheduler and the workers knob."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.parallel import (
    WORKERS_ENV,
    UnitReport,
    _dispatch_order,
    parallel_map,
    resolve_workers,
    scheduled_map,
)


def _square(x):
    return x * x


def _nap(x):
    time.sleep(float(x))
    return x


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_unset_env_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_unparsable_env_warns_and_runs_serial(self, monkeypatch,
                                                  capsys):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        assert resolve_workers() == 1
        err = capsys.readouterr().err
        assert "warning" in err
        assert "lots" in err
        assert WORKERS_ENV in err

    def test_parsable_env_does_not_warn(self, monkeypatch, capsys):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers() == 2
        assert capsys.readouterr().err == ""

    @pytest.mark.parametrize("value", [0, -1, -8])
    def test_zero_and_negative_mean_one_per_cpu(self, value):
        assert resolve_workers(value) == (os.cpu_count() or 1)

    def test_env_zero_means_one_per_cpu(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers() == (os.cpu_count() or 1)


class TestDispatchOrder:
    def test_no_hints_is_input_order(self):
        assert _dispatch_order(4, None) == [0, 1, 2, 3]

    def test_largest_first(self):
        assert _dispatch_order(4, [1.0, 9.0, 3.0, 7.0]) == [1, 3, 2, 0]

    def test_ties_keep_input_order(self):
        assert _dispatch_order(4, [2.0, 5.0, 2.0, 5.0]) == [1, 3, 0, 2]


class TestScheduledMap:
    def test_results_match_serial_comprehension(self):
        items = list(range(20))
        results, reports = scheduled_map(_square, items, workers=2)
        assert results == [x * x for x in items]
        assert sorted(r.index for r in reports) == items

    def test_hints_reorder_dispatch_not_results(self):
        items = [3, 1, 4, 1, 5]
        hints = [30.0, 10.0, 40.0, 10.0, 50.0]
        results, _ = scheduled_map(_square, items, workers=2,
                                   size_hints=hints)
        assert results == [x * x for x in items]

    def test_reports_carry_hints_and_timing(self):
        items = [0.0, 0.0, 0.0]
        hints = [7.0, 5.0, 3.0]
        _, reports = scheduled_map(_nap, items, workers=1,
                                   size_hints=hints)
        by_index = {r.index: r for r in reports}
        assert by_index[0].size_hint == 7.0
        assert by_index[2].size_hint == 3.0
        assert all(r.elapsed_s >= 0.0 for r in reports)
        assert all(r.worker for r in reports)

    def test_serial_path_reports_serial_worker(self):
        _, reports = scheduled_map(_square, [1, 2, 3], workers=1)
        assert {r.worker for r in reports} == {"serial"}

    def test_serial_dispatch_runs_largest_first(self):
        # With one worker the reports land in dispatch order, which
        # makes the largest-first policy directly observable.
        _, reports = scheduled_map(_square, [1, 2, 3], workers=1,
                                   size_hints=[1.0, 3.0, 2.0])
        assert [r.index for r in reports] == [1, 2, 0]

    def test_pool_path_uses_process_workers(self):
        results, reports = scheduled_map(_square, list(range(8)),
                                         workers=2)
        assert results == [x * x for x in range(8)]
        # Pool workers report their pid; a pool-infrastructure failure
        # degrades to the serial path, which is equally correct.
        workers = {r.worker for r in reports}
        assert workers == {"serial"} or all(
            w.startswith("pid") for w in workers)

    def test_unpicklable_fn_degrades_to_serial(self):
        results, reports = scheduled_map(lambda x: x + 1, [1, 2, 3],
                                         workers=2)
        assert results == [2, 3, 4]
        assert {r.worker for r in reports} == {"serial"}

    def test_empty_items(self):
        assert scheduled_map(_square, [], workers=2) == ([], [])

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            scheduled_map(_reciprocal, [1, 0], workers=1)

    def test_unit_report_as_dict(self):
        record = UnitReport(index=2, size_hint=4.0, elapsed_s=0.5,
                            worker="pid9").as_dict()
        assert record == {"index": 2, "size_hint": 4.0,
                          "elapsed_s": 0.5, "worker": "pid9",
                          "status": "ok", "attempts": 1, "error": None}


def _reciprocal(x):
    return 1 / x


class TestParallelMap:
    def test_matches_serial(self):
        items = list(range(17))
        assert parallel_map(_square, items, workers=2, chunksize=3) == \
            [x * x for x in items]

    def test_serial_fallback(self):
        assert parallel_map(_square, [3], workers=4) == [9]

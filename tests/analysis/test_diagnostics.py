"""The diagnostic vocabulary is API: codes, severities and renderings
are stable, so tools and CI gates can match on them."""

from __future__ import annotations

import pytest

from repro.analysis import CODES, Diagnostic, VerificationError, errors_of
from repro.analysis.diagnostics import SEVERITIES


class TestCodesTable:
    def test_every_family_is_populated(self):
        families = {code[:2] if code[0] == "V" else code[0]
                    for code in CODES}
        assert {"V0", "V1", "V2", "V3", "S", "C"} <= families

    def test_expected_codes_present(self):
        expected = {
            "V001", "V002", "V003", "V004", "V005", "V006",
            "V101", "V102", "V103", "V104", "V105", "V106",
            "V201", "V202",
            "V301", "V302", "V303", "V304", "V305", "V306",
            "S001", "S002", "S003", "S004", "S005", "S006",
            "C001", "C002", "C003",
        }
        assert expected == set(CODES)

    def test_meanings_are_one_liners(self):
        for code, meaning in CODES.items():
            assert meaning and "\n" not in meaning, code


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="V999", message="nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic(code="V001", message="m", severity="fatal")

    def test_location_forms(self):
        full = Diagnostic(code="V002", message="m", function="f",
                          block="entry")
        assert full.location == "f/entry"
        func_only = Diagnostic(code="V001", message="m", function="f")
        assert func_only.location == "f"
        assert Diagnostic(code="V001", message="m").location == "<module>"

    def test_render_is_canonical(self):
        d = Diagnostic(code="V004", message="branch target 'x' names no "
                       "block", function="f", block="entry")
        assert d.render() == ("V004 f/entry: branch target 'x' names no "
                              "block")
        assert str(d) == d.render()

    def test_as_dict_round_trip(self):
        d = Diagnostic(code="S002", message="m", function="f", block="b",
                       severity="warning")
        assert d.as_dict() == {
            "code": "S002", "severity": "warning", "function": "f",
            "block": "b", "message": "m",
        }

    def test_severities(self):
        assert SEVERITIES == ("error", "warning")


class TestVerificationError:
    def test_carries_diagnostics_and_renders_them(self):
        diags = [
            Diagnostic(code="V002", message="block has no terminator",
                       function="f", block="entry"),
            Diagnostic(code="V004", message="branch target 'x' names no "
                       "block", function="f", block="entry"),
        ]
        exc = VerificationError("pass 'Dce' broke function 'f'", diags)
        assert exc.context == "pass 'Dce' broke function 'f'"
        assert exc.diagnostics == diags
        text = str(exc)
        assert text.startswith(
            "pass 'Dce' broke function 'f': 2 verifier diagnostic(s)")
        assert "  V002 f/entry: block has no terminator" in text

    def test_is_a_value_error(self):
        assert issubclass(VerificationError, ValueError)


class TestErrorsOf:
    def test_filters_warnings(self):
        err = Diagnostic(code="V002", message="m")
        warn = Diagnostic(code="V006", message="m", severity="warning")
        assert errors_of([warn, err, warn]) == [err]

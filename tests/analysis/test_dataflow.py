"""Unit tests for the worklist dataflow framework and its three
analyses (dominance, reaching definitions, definite assignment)."""

from __future__ import annotations

from repro.analysis import (
    DefiniteAssignment,
    Dominance,
    Liveness,
    ReachingDefinitions,
)
from repro.analysis.dataflow import solve_forward
from repro.ir import (
    Const,
    Function,
    Opcode,
    Reg,
    binop,
    br,
    copy_reg,
    jmp,
    ret,
)


def diamond():
    """entry -> (t|f) -> join; x defined on both arms, y on one."""
    func = Function("f", params=["c", "a"])
    entry = func.add_block("entry")
    t = func.add_block("t")
    f = func.add_block("f")
    join = func.add_block("join")
    entry.append(br(Reg("c"), "t", "f"))
    t.append(copy_reg("x", Reg("a")))
    t.append(copy_reg("y", Const(1)))
    t.append(jmp("join"))
    f.append(copy_reg("x", Const(0)))
    f.append(jmp("join"))
    join.append(binop(Opcode.ADD, "r", Reg("x"), Const(1)))
    join.append(ret(Reg("r")))
    return func


def loop():
    """entry -> head -> (body -> head | exit); i redefined in body."""
    func = Function("loop", params=["n"])
    entry = func.add_block("entry")
    head = func.add_block("head")
    body = func.add_block("body")
    exit_ = func.add_block("exit")
    entry.append(copy_reg("i", Const(0)))
    entry.append(jmp("head"))
    head.append(binop(Opcode.SLT, "c", Reg("i"), Reg("n")))
    head.append(br(Reg("c"), "body", "exit"))
    body.append(binop(Opcode.ADD, "i", Reg("i"), Const(1)))
    body.append(jmp("head"))
    exit_.append(ret(Reg("i")))
    return func


class TestSolveForward:
    def test_union_reaches_fixed_point_through_loop(self):
        func = loop()
        # Trivial "set of defining blocks per register" analysis.
        defs = {b.label: {name for insn in b.instructions
                          for name in insn.defs()}
                for b in func.blocks}

        def transfer(label, in_set):
            return in_set | {(label, name) for name in defs[label]}

        in_sets, out_sets = solve_forward(
            func, init=lambda label: set(), transfer=transfer,
            meet=lambda sets: set().union(*sets), entry_in=set())
        # The back edge carries body's definition of i into head.
        assert ("body", "i") in in_sets["head"]
        assert ("entry", "i") in in_sets["head"]
        assert ("body", "i") in out_sets["exit"]

    def test_unreachable_blocks_not_visited(self):
        func = diamond()
        dead = func.add_block("dead")
        dead.append(ret())
        in_sets, out_sets = solve_forward(
            func, init=lambda label: set(),
            transfer=lambda label, s: s,
            meet=lambda sets: set().union(*sets), entry_in=set())
        assert "dead" not in in_sets
        assert "dead" not in out_sets


class TestDominance:
    def test_diamond(self):
        dom = Dominance(diamond())
        assert dom.idom["entry"] == "entry"
        assert dom.idom["t"] == "entry"
        assert dom.idom["f"] == "entry"
        # Neither arm dominates the join; the entry does.
        assert dom.idom["join"] == "entry"
        assert dom.dominators("join") == ["join", "entry"]
        assert dom.dominates("entry", "join")
        assert not dom.dominates("t", "join")

    def test_loop(self):
        dom = Dominance(loop())
        assert dom.idom["body"] == "head"
        assert dom.idom["exit"] == "head"
        assert dom.dominates("head", "body")
        # The back edge does not make body dominate head.
        assert not dom.dominates("body", "head")

    def test_unreachable_absent(self):
        func = diamond()
        dead = func.add_block("dead")
        dead.append(ret())
        dom = Dominance(func)
        assert "dead" not in dom.idom


class TestReachingDefinitions:
    def test_both_arm_defs_reach_join(self):
        func = diamond()
        reach = ReachingDefinitions(func)
        assert reach.reaching("join", "x") == [("f", 0), ("t", 0)]

    def test_params_reach_as_entry_sites(self):
        func = diamond()
        reach = ReachingDefinitions(func)
        assert reach.reaching("entry", "a") == [
            ReachingDefinitions.PARAM_SITE]

    def test_loop_redefinition_kills_along_its_path(self):
        func = loop()
        reach = ReachingDefinitions(func)
        # Both the entry's init and the body's increment may reach head.
        assert reach.reaching("head", "i") == [("body", 0), ("entry", 0)]
        # But only the body's definition leaves the body.
        assert reach.reaching("exit", "i") == [("body", 0), ("entry", 0)]


class TestDefiniteAssignment:
    def test_both_arms_define_x(self):
        func = diamond()
        assigned = DefiniteAssignment(func)
        assert "x" in assigned.defined_at_entry("join")
        # y only flows down one arm: not definite at the join.
        assert "y" not in assigned.defined_at_entry("join")

    def test_params_definite_everywhere(self):
        func = diamond()
        assigned = DefiniteAssignment(func)
        for label in ("entry", "t", "f", "join"):
            assert {"c", "a"} <= assigned.defined_at_entry(label)

    def test_loop_optimistic_init_converges(self):
        func = loop()
        assigned = DefiniteAssignment(func)
        # i is definite at head despite the back edge (defined before
        # the loop and redefined inside it).
        assert "i" in assigned.defined_at_entry("head")
        assert "c" not in assigned.defined_at_entry("entry")

    def test_unreachable_guarantees_nothing(self):
        func = diamond()
        dead = func.add_block("dead")
        dead.append(ret())
        assigned = DefiniteAssignment(func)
        assert assigned.defined_at_entry("dead") == set()


class TestLivenessReexport:
    def test_same_class_as_ir_cfg(self):
        from repro.ir.cfg import Liveness as CfgLiveness

        assert Liveness is CfgLiveness

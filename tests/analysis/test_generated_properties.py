"""Property tests: analysis gates over the shared generated corpus.

The verifier and the selection checker were built against hand-written
IR and the seven registry workloads; this suite points them at the
fuzzer's program generator (via the shared ``tests/strategies.py``
module) instead.  Every well-formed generated program must verify
clean after every pipeline stage, and every cut the DP selector emits
on one must satisfy the paper's §4 feasibility predicates.
"""

from __future__ import annotations

from hypothesis import given, settings

import strategies as sh
from repro.analysis import check_cut_record, errors_of, verify_module
from repro.core import Constraints, SearchLimits, select_iterative
from repro.exec.rewrite import rewrite_module
from repro.hwmodel import CostModel
from repro.ir.dfg import function_dfgs

LIMITS = SearchLimits(max_considered=50_000)


@settings(max_examples=40, deadline=None)
@given(sh.programs())
def test_generated_modules_verify_clean(program):
    """Lowered and optimised modules pass every verifier rule."""
    raw = sh.compile_program(program, optimize=False)
    assert not errors_of(verify_module(raw))
    optimized = sh.compile_program(program)
    assert not errors_of(verify_module(optimized))


@settings(max_examples=20, deadline=None)
@given(sh.programs())
def test_selected_cuts_are_feasible(program):
    """Cuts found on generated programs satisfy the §4 constraints
    (inputs, outputs, convexity, no forbidden ops) and the rewritten
    module still verifies."""
    module = sh.compile_program(program)
    model = CostModel()
    constraints = Constraints(nin=4, nout=2, ninstr=8)
    cuts = []
    for func in module.functions.values():
        for dfg in function_dfgs(func, min_nodes=2):
            result = select_iterative([dfg], constraints, model, LIMITS)
            cuts.extend(result.cuts)
    for cut in cuts:
        assert not errors_of(check_cut_record(cut, nin=4, nout=2))
    if cuts:
        rewritten = rewrite_module(module, cuts, model, verify=False)
        assert not errors_of(verify_module(rewritten.module))

"""Seeded IR-corruption corpus: every mutation class must be caught.

Each mutation clones a real workload module, corrupts it in one
specific, seeded way, and asserts the analysis subsystem reports an
error-severity diagnostic.  Detection runs through
:func:`check_rewrite(original, mutated)`, which subsumes the full
module verifier and adds the memory-chain comparison — the same
surface ``repro check`` gates on.

The aggregate test pins the headline number: at least 90% of all
seeded corruptions across the corpus are detected (in practice 100% —
the bound leaves room for future mutation classes that are legal but
suspicious).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import check_rewrite, errors_of
from repro.exec.rewrite import clone_module
from repro.ir import Const, Opcode, Reg, binop
from repro.ir.opcodes import opinfo

def _FIXED_ARITY(op):
    """Opcodes whose operand count the verifier pins exactly."""
    return op not in (Opcode.RET, Opcode.CALL, Opcode.ISE)


def _blocks(module):
    return [(func, block) for func in module.functions.values()
            for block in func.blocks]


def _insns(module):
    return [(func, block, pos)
            for func, block in _blocks(module)
            for pos in range(len(block.instructions))]


# ----------------------------------------------------------------------
# Mutations: (module, rng) -> True if applied, False if not applicable.
# ----------------------------------------------------------------------
def drop_terminator(module, rng):
    candidates = [(f, b) for f, b in _blocks(module) if b.terminator]
    if not candidates:
        return False
    _, block = rng.choice(candidates)
    block.instructions.pop()
    return True


def retarget_branch(module, rng):
    candidates = [(f, b) for f, b in _blocks(module)
                  if b.terminator is not None and b.terminator.targets]
    if not candidates:
        return False
    _, block = rng.choice(candidates)
    term = block.terminator
    targets = list(term.targets)
    targets[rng.randrange(len(targets))] = "__bogus__"
    term.targets = tuple(targets)
    return True


def drop_operand(module, rng):
    candidates = [
        (f, b, p) for f, b, p in _insns(module)
        if not b.instructions[p].is_terminator
        and b.instructions[p].operands
        and _FIXED_ARITY(b.instructions[p].opcode)
    ]
    if not candidates:
        return False
    _, block, pos = rng.choice(candidates)
    insn = block.instructions[pos]
    insn.operands = insn.operands[:-1]
    return True


def alias_store_dest(module, rng):
    candidates = [
        (f, b, p) for f, b, p in _insns(module)
        if b.instructions[p].opcode is Opcode.STORE
    ]
    if not candidates:
        return False
    _, block, pos = rng.choice(candidates)
    block.instructions[pos].dest = "__alias__"
    return True


def ghost_array(module, rng):
    candidates = [
        (f, b, p) for f, b, p in _insns(module)
        if b.instructions[p].is_memory
    ]
    if not candidates:
        return False
    _, block, pos = rng.choice(candidates)
    block.instructions[pos].array = "__ghost__"
    return True


def wrong_call_arity(module, rng):
    candidates = [
        (f, b, p) for f, b, p in _insns(module)
        if b.instructions[p].opcode is Opcode.CALL
    ]
    if not candidates:
        return False
    _, block, pos = rng.choice(candidates)
    insn = block.instructions[pos]
    insn.operands = insn.operands + (Const(0),)
    return True


def undefined_use(module, rng):
    func = rng.choice(list(module.functions.values()))
    if not func.blocks:
        return False
    func.entry.instructions.insert(
        0, binop(Opcode.ADD, "__mut__", Reg("__undef__"), Const(1)))
    return True


def delete_def(module, rng):
    """Delete a definition whose register is used later in the same
    block and defined nowhere else in the function."""
    candidates = []
    for func in module.functions.values():
        def_counts = {}
        for insn in func.instructions():
            for name in insn.defs():
                def_counts[name] = def_counts.get(name, 0) + 1
        for block in func.blocks:
            for pos, insn in enumerate(block.instructions):
                dest = insn.dest
                if dest is None or def_counts.get(dest, 0) != 1:
                    continue
                if dest in func.params:
                    continue
                used_later = any(
                    dest in later.uses()
                    for later in block.instructions[pos + 1:])
                if used_later:
                    candidates.append((block, pos))
    if not candidates:
        return False
    block, pos = rng.choice(candidates)
    del block.instructions[pos]
    return True


def _chain_key(insn):
    return (insn.opcode.value, insn.array or insn.callee)


def reorder_memory(module, rng):
    """Swap two memory/call operations with distinct chain keys."""
    candidates = []
    for func, block in _blocks(module):
        chain = [(p, i) for p, i in enumerate(block.instructions)
                 if i.is_memory or i.opcode is Opcode.CALL]
        for (pa, a), (pb, b) in zip(chain, chain[1:]):
            if _chain_key(a) != _chain_key(b):
                candidates.append((block, pa, pb))
    if not candidates:
        return False
    block, pa, pb = rng.choice(candidates)
    insns = block.instructions
    insns[pa], insns[pb] = insns[pb], insns[pa]
    return True


MUTATIONS = {
    "drop_terminator": drop_terminator,
    "retarget_branch": retarget_branch,
    "drop_operand": drop_operand,
    "alias_store_dest": alias_store_dest,
    "ghost_array": ghost_array,
    "wrong_call_arity": wrong_call_arity,
    "undefined_use": undefined_use,
    "delete_def": delete_def,
    "reorder_memory": reorder_memory,
}


@pytest.fixture(scope="module")
def corpus_modules(adpcm_decode_app, fir_app, crc_app, gsm_app):
    return {
        "adpcm-decode": adpcm_decode_app.module,
        "fir": fir_app.module,
        "crc32": crc_app.module,
        "gsm": gsm_app.module,
    }


def _detected(original, mutated):
    return bool(errors_of(check_rewrite(original, mutated)))


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
@pytest.mark.parametrize("workload",
                         ["adpcm-decode", "fir", "crc32", "gsm"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mutation_is_caught(corpus_modules, workload, mutation, seed):
    original = corpus_modules[workload]
    mutated = clone_module(original)
    applied = MUTATIONS[mutation](mutated, random.Random(seed))
    if not applied:
        pytest.skip(f"{mutation} not applicable to {workload}")
    assert _detected(original, mutated), (
        f"{mutation} (seed {seed}) on {workload} went undetected")


def test_detection_rate_at_least_90_percent(corpus_modules):
    applied = detected = 0
    for workload, original in corpus_modules.items():
        for name, mutate in MUTATIONS.items():
            for seed in range(5):
                mutated = clone_module(original)
                if not mutate(mutated, random.Random(1000 + seed)):
                    continue
                applied += 1
                detected += _detected(original, mutated)
    assert applied >= 50, "corpus unexpectedly small"
    assert detected / applied >= 0.9, (
        f"detection rate {detected}/{applied}")


def test_unmutated_clone_is_clean(corpus_modules):
    for original in corpus_modules.values():
        assert errors_of(
            check_rewrite(original, clone_module(original))) == []


def test_opinfo_agrees_with_mutation_assumptions():
    # drop_operand assumes pinned arity for these common opcodes.
    for op in (Opcode.ADD, Opcode.LOAD, Opcode.STORE, Opcode.SELECT):
        assert _FIXED_ARITY(op)
        assert opinfo(op).arity >= 1

"""The independent selection checker: golden ``S0xx`` messages, and
agreement with the two existing implementations (the reference
``core/cut.py`` recomputation and the search engine itself)."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.analysis import (
    VerificationError,
    assert_cut,
    check_cut,
    check_cut_record,
)
from repro.analysis.selection_check import reach_masks
from repro.core import Constraints, select_iterative, select_optimal
from repro.core.cut import cut_is_feasible, evaluate_cut
from repro.core.select_area import select_area_constrained
from repro.hwmodel import CostModel
from repro.ir import Const, Function, Opcode, Reg, binop, load, ret
from repro.ir.dfg import build_dfg, function_dfgs
from repro.ir.synth import random_dag_dfg

MODEL = CostModel()


def chain_dfg():
    """t0 -> t1 -> t2 add chain plus one load; t2 returned.

    Returns ``(dfg, pos)`` where ``pos[k]`` is the DFG node index of
    body position ``k`` (node numbering is reverse topological, so the
    two differ).
    """
    func = Function("f", params=["p", "q", "r", "s"])
    entry = func.add_block("entry")
    entry.append(binop(Opcode.ADD, "t0", Reg("p"), Reg("q")))
    entry.append(binop(Opcode.ADD, "t1", Reg("t0"), Reg("r")))
    entry.append(binop(Opcode.ADD, "t2", Reg("t1"), Reg("s")))
    entry.append(load("m", "arr", Const(0)))
    entry.append(ret(Reg("t2")))
    dfg = build_dfg(entry, live_out=set(), name="f/entry")
    by_label = {node.label: i for i, node in enumerate(dfg.nodes)}
    pos = {k: by_label[f"add#{k}"] for k in range(3)}
    pos[3] = by_label["load#3"]
    return dfg, pos


class TestGoldenSelectionCodes:
    def test_s001_non_convex(self):
        dfg, pos = chain_dfg()
        cut = [pos[0], pos[2]]
        (d,) = [x for x in check_cut(dfg, cut, nin=8, nout=8)
                if x.code == "S001"]
        assert d.function == "f" and d.block == "entry"
        assert d.message == (
            f"cut {sorted(cut)} is not convex: path re-enters it "
            f"through excluded node(s) [{pos[1]}]")

    def test_s002_input_budget(self):
        dfg, pos = chain_dfg()
        cut = [pos[0]]       # reads p and q: IN = 2.
        (d,) = check_cut(dfg, cut, nin=1, nout=8)
        assert d.code == "S002"
        assert d.message == (f"cut {sorted(cut)} reads 2 value(s), "
                             f"budget is Nin=1")

    def test_s003_output_budget(self):
        dfg, pos = chain_dfg()
        # t0 and t2 both escape: t0 feeds t1 (outside), t2 is returned.
        cut = [pos[0], pos[1], pos[2]]
        diags = check_cut(dfg, cut, nin=8, nout=1)
        assert [d.code for d in diags] == []
        cut = [pos[0], pos[2]]
        codes = {d.code for d in check_cut(dfg, cut, nin=8, nout=1)}
        assert "S003" in codes
        (d,) = [x for x in check_cut(dfg, cut, nin=8, nout=1)
                if x.code == "S003"]
        assert d.message == (f"cut {sorted(cut)} writes 2 value(s), "
                             f"budget is Nout=1")

    def test_s004_forbidden_node(self):
        dfg, pos = chain_dfg()
        cut = [pos[3]]
        (d,) = check_cut(dfg, cut, nin=8, nout=8)
        assert d.code == "S004"
        assert d.message == (f"cut {sorted(cut)} contains forbidden "
                             f"node(s) load#3")

    def test_s005_out_of_range(self):
        dfg, _ = chain_dfg()
        (d,) = check_cut(dfg, [0, 99], nin=8, nout=8)
        assert d.code == "S005"
        assert d.message == (f"cut [0, 99] references node indices "
                             f"[99] outside graph of {dfg.n} node(s)")

    def test_s006_metric_mismatch(self):
        dfg, pos = chain_dfg()
        honest = evaluate_cut(dfg, [pos[0], pos[1]], MODEL)
        forged = dataclasses.replace(honest, num_inputs=1)
        (d,) = check_cut_record(forged, nin=8, nout=8)
        assert d.code == "S006"
        assert d.message == (
            f"cut {sorted(forged.nodes)} records IN=1, mask "
            f"recomputation says {honest.num_inputs}")

    def test_honest_cut_record_is_clean(self):
        dfg, pos = chain_dfg()
        cut = evaluate_cut(dfg, [pos[0], pos[1]], MODEL)
        assert check_cut_record(cut, nin=8, nout=8) == []

    def test_empty_cut_is_clean(self):
        dfg, _ = chain_dfg()
        assert check_cut(dfg, [], nin=1, nout=1) == []

    def test_assert_cut_names_algorithm_and_block(self):
        dfg, pos = chain_dfg()
        cut = evaluate_cut(dfg, [pos[0]], MODEL)
        with pytest.raises(VerificationError) as info:
            assert_cut(cut, nin=1, nout=8, algorithm="iterative")
        assert info.value.context == (
            f"iterative selection returned an invalid cut "
            f"{sorted(cut.nodes)} in f/entry")
        assert [d.code for d in info.value.diagnostics] == ["S002"]


class TestReachMasks:
    def test_transitive_closure_on_chain(self):
        dfg, pos = chain_dfg()
        down = reach_masks(dfg)
        # pos[0] produces t0 consumed by t1 consumed by t2.
        assert down[pos[0]] & (1 << pos[1])
        assert down[pos[0]] & (1 << pos[2])
        assert not down[pos[2]] & (1 << pos[0])
        assert down[pos[3]] == 0     # the load feeds nothing.


class TestAgreementWithReference:
    """The checker is a third implementation; it must agree with
    ``cut_is_feasible`` (set-wise reference) on random cuts."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_cuts(self, seed):
        rng = random.Random(seed)
        dfg = random_dag_dfg(rng.randint(3, 10), rng,
                             edge_prob=rng.uniform(0.1, 0.6),
                             forbidden_prob=0.15, name="f/b0")
        cons = Constraints(nin=rng.randint(1, 4),
                           nout=rng.randint(1, 3))
        for _ in range(200):
            size = rng.randint(1, dfg.n)
            cut = rng.sample(range(dfg.n), size)
            reference = cut_is_feasible(dfg, cut, cons)
            diags = check_cut(dfg, cut, cons.nin, cons.nout)
            assert (not diags) == reference, (
                f"disagreement on {sorted(cut)}: reference="
                f"{reference}, checker={[d.render() for d in diags]}")

    @pytest.mark.parametrize("seed", range(6))
    def test_evaluate_cut_metrics_always_match(self, seed):
        rng = random.Random(1000 + seed)
        dfg = random_dag_dfg(rng.randint(3, 9), rng,
                             edge_prob=0.3, forbidden_prob=0.1,
                             name="f/b0")
        for _ in range(100):
            cut = rng.sample(range(dfg.n), rng.randint(1, dfg.n))
            record = evaluate_cut(dfg, cut, MODEL)
            diags = check_cut_record(record, nin=99, nout=99)
            # Port budgets are unbounded: only S001/S004 violations
            # (properties, not bookkeeping) or nothing may remain;
            # S006 would mean core/cut.py and the masks disagree.
            assert not any(d.code == "S006" for d in diags)


class TestAgreementWithEngine:
    """Every cut the engine selects must satisfy the independent
    checker, across a sweep grid of constraint points."""

    GRID = [(2, 1), (3, 2), (4, 2), (6, 3)]

    @pytest.fixture(scope="class")
    def dfgs(self, fir_app, crc_app):
        graphs = []
        for app in (fir_app, crc_app):
            for func in app.module.functions.values():
                graphs.extend(function_dfgs(func, min_nodes=2))
        return graphs

    @pytest.mark.parametrize("nin,nout", GRID)
    def test_iterative_and_optimal(self, dfgs, nin, nout):
        cons = Constraints(nin=nin, nout=nout, ninstr=4)
        for algorithm in (select_iterative, select_optimal):
            result = algorithm(dfgs, cons, MODEL)
            for cut in result.cuts:
                assert check_cut_record(cut, nin, nout) == []

    def test_area_constrained(self, dfgs):
        cons = Constraints(nin=4, nout=2, ninstr=4)
        result = select_area_constrained(dfgs, cons, area_budget=8.0,
                                         model=MODEL)
        for cut in result.cuts:
            assert check_cut_record(cut, cons.nin, cons.nout) == []

"""The check gate end to end: pass-boundary verification, rewrite
cross-checks, compile fallback telemetry, ``CheckReport`` /
``Session.check`` / ``repro check``."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Diagnostic, VerificationError, verify_module
from repro.analysis.report import CheckReport
from repro.cli import main
from repro.exec.rewrite import rewrite_module
from repro.frontend import analyze, lower_program, parse
from repro.ir import Const, Function, ret
from repro.ir.function import BasicBlock
from repro.passes import PassManager, optimize_module
from repro.session import Session
from repro.workloads.registry import get_workload


# ----------------------------------------------------------------------
# Pass-boundary verification.
# ----------------------------------------------------------------------
class TestPassManagerVerification:
    def make_func(self):
        func = Function("f")
        func.add_block("entry").append(ret(Const(0)))
        return func

    def test_breaking_pass_is_named(self):
        def drop_terminator(func):
            func.entry.instructions.pop()
            return True

        manager = PassManager([drop_terminator], verify=True)
        with pytest.raises(VerificationError) as info:
            manager.run(self.make_func())
        assert info.value.context == (
            "pass 'drop_terminator' broke function 'f'")
        assert [d.code for d in info.value.diagnostics] == ["V002"]

    def test_unchanged_function_is_not_reverified(self):
        def lazy_liar(func):
            func.entry.instructions.pop()
            return False        # reports "no change": not re-checked.

        manager = PassManager([lazy_liar], verify=True)
        manager.run(self.make_func())   # does not raise

    def test_verify_off_skips_checks(self):
        def drop_terminator(func):
            func.entry.instructions.pop()
            return True

        manager = PassManager([drop_terminator], verify=False)
        manager.run(self.make_func())   # does not raise
        assert manager.verifying is False

    def test_method_pass_named_by_class(self):
        class Nop:
            def run(self, func):
                return False

        manager = PassManager([Nop().run], verify=True)
        assert manager.run(self.make_func()) is False


@settings(max_examples=8, deadline=None)
@given(
    workload=st.sampled_from(["fir", "crc32", "mixer"]),
    if_convert=st.booleans(),
    max_speculated=st.integers(0, 64),
)
def test_pipeline_keeps_modules_verifier_clean(workload, if_convert,
                                               max_speculated):
    """Property: the standard pass pipeline never produces IR with
    error-severity diagnostics, whatever its configuration."""
    spec = get_workload(workload)
    program = parse(spec.source)
    module = lower_program(program, analyze(program), name=workload)
    optimize_module(module, if_convert=if_convert,
                    max_speculated=max_speculated, verify=True)
    assert [d for d in verify_module(module)
            if d.severity == "error"] == []


# ----------------------------------------------------------------------
# Rewrite verification wiring.
# ----------------------------------------------------------------------
class TestRewriteVerification:
    def test_rewrite_module_verifies_clone(self, fir_app, model):
        from repro.core import Constraints, select_iterative

        cons = Constraints(nin=4, nout=2, ninstr=4)
        result = select_iterative(fir_app.dfgs, cons, model)
        rewritten = rewrite_module(fir_app.module, result.cuts,
                                   model=model, verify=True)
        assert rewritten.rewritten_blocks >= 1
        assert [d for d in verify_module(rewritten.module)
                if d.severity == "error"] == []


# ----------------------------------------------------------------------
# Compile fallback telemetry.
# ----------------------------------------------------------------------
class TestFallbackTelemetry:
    def test_fallback_reason_v002(self):
        from repro.interp.compile import compile_block

        block = BasicBlock("b")
        code = compile_block(block)
        assert code.fn is None
        assert code.reason == "V002"
        assert code.detail == "no terminator"

    def test_fallback_reason_c002(self):
        from repro.interp.compile import compile_block
        from repro.ir import Opcode, binop

        block = BasicBlock("b")
        insn = binop(Opcode.ADD, "d", Const(1), Const(2))
        insn.operands = ("mystery", Const(2))
        block.instructions.append(insn)
        block.append(ret(Const(0)))
        # The digest walk also chokes on the alien operand; pass one.
        code = compile_block(block, digest="test-c002")
        assert code.fn is None
        assert code.reason == "C002"
        assert code.detail == "operand 'mystery'"

    def test_fallback_reason_c003(self):
        from repro.interp.compile import compile_region

        first = BasicBlock("a")
        first.append(ret(Const(0)))
        second = BasicBlock("b")
        second.append(ret(Const(0)))
        code = compile_region([first, second])
        assert code.fn is None
        assert code.reason == "C003"
        assert code.detail == ("chain link is not a JMP/BR into the "
                               "next block")

    def test_stats_count_by_code(self):
        from repro.interp.compile import BlockCode, CodeMemoStats

        stats = CodeMemoStats()
        stats.count_fallback(BlockCode(fn=None, label="b",
                                       reason="V002"))
        stats.count_fallback(BlockCode(fn=None, label="b",
                                       reason="V002"))
        # Legacy fallbacks without a recorded reason count as C001.
        stats.count_fallback(BlockCode(fn=None, label="b"))
        assert stats.fallbacks == 3
        assert stats.fallback_codes == {"V002": 2, "C001": 1}
        assert stats.as_dict()["fallback_codes"] == {
            "C001": 1, "V002": 2}

    def test_memo_counts_fallbacks(self):
        from repro.interp import compile as compmod

        compmod.clear_code_memo()
        before = dict(compmod.code_memo_stats().fallback_codes)
        assert before == {}
        block = BasicBlock("naked")
        compmod.get_block_code(block)
        assert compmod.code_memo_stats().fallback_codes == {"V002": 1}
        # A memo hit does not double-count.
        compmod.get_block_code(block)
        assert compmod.code_memo_stats().fallback_codes == {"V002": 1}
        compmod.clear_code_memo()
        assert compmod.code_memo_stats().fallback_codes == {}


# ----------------------------------------------------------------------
# CheckReport.
# ----------------------------------------------------------------------
def make_report(**kwargs):
    defaults = dict(workload="fir", algorithm="iterative", nin=4,
                    nout=2, ninstr=16)
    defaults.update(kwargs)
    return CheckReport(**defaults)


class TestCheckReport:
    def test_ok_ignores_warnings(self):
        warn = Diagnostic(code="V006", message="m", severity="warning")
        report = make_report(phases={"baseline": [warn]})
        assert report.ok is True
        report.phases["selection"] = [Diagnostic(code="S001",
                                                 message="m")]
        assert report.ok is False

    def test_diagnostics_in_phase_order(self):
        a = Diagnostic(code="S001", message="m")
        b = Diagnostic(code="V002", message="m")
        report = make_report(phases={"selection": [a],
                                     "baseline": [b]})
        assert report.diagnostics == [b, a]

    def test_as_dict_shape(self):
        report = make_report(
            phases={"baseline": [Diagnostic(code="V002", message="m",
                                            function="f", block="b")]},
            functions=2, cuts_checked=5, rewritten_blocks=1,
            skipped=["note"])
        record = report.as_dict()
        assert record["workload"] == "fir"
        assert record["ok"] is False
        assert record["functions"] == 2
        assert record["cuts_checked"] == 5
        assert record["skipped"] == ["note"]
        assert record["diagnostics"]["baseline"][0]["code"] == "V002"
        json.dumps(record)      # JSON-serialisable throughout.

    def test_render_clean_and_failing(self):
        report = make_report(phases={"baseline": [], "selection": [],
                                     "rewritten": []},
                             functions=1, cuts_checked=3,
                             rewritten_blocks=2)
        text = report.render()
        assert text.splitlines()[0] == (
            "check fir (iterative, Nin=4, Nout=2, Ninstr=16)")
        assert "baseline:  clean (1 function(s) verified)" in text
        assert "selection: clean (3 cut(s) checked)" in text
        assert "rewritten: clean (2 block(s) rewritten)" in text
        assert text.endswith("result: OK")
        report.phases["baseline"].append(
            Diagnostic(code="V002", message="block has no terminator",
                       function="f", block="entry"))
        text = report.render()
        assert "baseline:  1 error(s) (1 function(s) verified)" in text
        assert "    V002 f/entry: block has no terminator" in text
        assert text.endswith("result: FAIL")


# ----------------------------------------------------------------------
# Session.check and the CLI verb.
# ----------------------------------------------------------------------
class TestSessionCheck:
    def test_clean_workload(self):
        report = Session().check("fir", n=16, ninstr=4)
        assert report.ok
        assert set(report.phases) == {"baseline", "selection",
                                      "rewritten"}
        assert report.functions >= 1
        assert report.cuts_checked >= 1
        assert report.rewritten_blocks >= 1
        assert report.diagnostics == [d for d in report.diagnostics
                                      if d.severity == "warning"]

    def test_report_carries_constraint_point(self):
        report = Session().check("crc32", n=16, nin=3, nout=1,
                                 ninstr=2, algorithm="maxmiso")
        assert (report.nin, report.nout, report.ninstr) == (3, 1, 2)
        assert report.algorithm == "maxmiso"
        assert report.ok


class TestCheckCli:
    def test_text_mode(self, capsys):
        assert main(["check", "fir", "--n", "16", "--ninstr", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("check fir (iterative, Nin=4, Nout=2, "
                              "Ninstr=4)")
        assert "result: OK" in out

    def test_json_to_stdout(self, capsys):
        assert main(["check", "fir", "--n", "16", "--ninstr", "4",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert [r["workload"] for r in payload["reports"]] == ["fir"]

    def test_json_to_file_and_csv_workloads(self, tmp_path, capsys):
        path = tmp_path / "check.json"
        assert main(["check", "fir,crc32", "--n", "16", "--ninstr", "4",
                     "--json", str(path)]) == 0
        captured = capsys.readouterr()
        assert f"wrote {path}" in captured.err
        payload = json.loads(path.read_text())
        assert [r["workload"] for r in payload["reports"]] == [
            "fir", "crc32"]
        assert all(r["ok"] for r in payload["reports"])

    def test_failing_module_exits_nonzero(self, capsys, monkeypatch):
        broken = make_report(phases={"baseline": [
            Diagnostic(code="V002", message="block has no terminator",
                       function="f", block="entry")]})
        monkeypatch.setattr(Session, "check",
                            lambda self, name, **kw: broken)
        assert main(["check", "fir"]) == 1
        assert "result: FAIL" in capsys.readouterr().out


class TestRunTelemetry:
    def test_run_reports_fallback_codes_on_stderr(self, capsys):
        from repro.interp import compile as compmod

        compmod.clear_code_memo()
        assert main(["run", "fir", "--n", "16"]) == 0
        err = capsys.readouterr().err
        # fir compiles fully: no fallback line.
        assert "walker fallbacks:" not in err

    def test_fallback_line_format(self, capsys):
        from repro.cli import _print_fallbacks
        from repro.interp import compile as compmod

        compmod.clear_code_memo()
        compmod.get_block_code(BasicBlock("naked"))
        _print_fallbacks()
        err = capsys.readouterr().err
        assert err.strip() == "walker fallbacks: V002x1"
        compmod.clear_code_memo()


# ----------------------------------------------------------------------
# Session.check surfaces verifier failures instead of raising.
# ----------------------------------------------------------------------
class TestCheckSurfacesFailures:
    def test_broken_baseline_is_reported_not_raised(self, monkeypatch):
        import repro.session as sessmod

        real_prepare = sessmod.prepare_application

        def sabotage(*args, **kwargs):
            app = real_prepare(*args, **kwargs)
            bad = Function("__broken__")
            bad.add_block("entry")     # no terminator
            app.module.add_function(bad)
            return app

        monkeypatch.setattr(sessmod, "prepare_application", sabotage)
        report = Session().check("fir", n=16, ninstr=2)
        assert report.ok is False
        assert any(d.code == "V002"
                   for d in report.phases["baseline"])

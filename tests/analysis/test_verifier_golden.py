"""Golden tests: one per verifier diagnostic code, pinning the exact
message.  These are the compatibility surface of the analysis
subsystem — ``repro check`` consumers and CI gates match on them."""

from __future__ import annotations

import pytest

from repro.analysis import (
    VerificationError,
    assert_verified,
    check_fused_schedule,
    check_rewrite,
    verify_enabled,
    verify_function,
    verify_module,
)
from repro.exec.rewrite import FusedGate
from repro.ir import (
    Const,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Opcode,
    Reg,
    binop,
    call,
    copy_reg,
    jmp,
    load,
    ret,
    store,
)
from repro.ir.function import BasicBlock
from repro.ir.instructions import ISEInstruction


def straight(*insns):
    """One-block function ending in ``ret`` around *insns*."""
    func = Function("f", params=["p"])
    entry = func.add_block("entry")
    for insn in insns:
        entry.instructions.append(insn)
    if not entry.is_terminated:
        entry.instructions.append(ret())
    return func


def only(diags, code):
    """The diagnostics with *code* (asserting there is at least one)."""
    found = [d for d in diags if d.code == code]
    assert found, f"no {code} in {[d.render() for d in diags]}"
    return found


class FakeAFU:
    """Minimal stand-in honouring the duck-typed AFU surface."""

    def __init__(self, name="afu0", input_ports=("p0",),
                 output_wires=("n0",), gates=None):
        self.name = name
        self.input_ports = tuple(input_ports)
        self.output_wires = tuple(output_wires)
        if gates is None:
            gates = (FusedGate(Opcode.ADD, "n0", ("p0", 1)),)
        self.gates = tuple(gates)
        self.latency_cycles = 1


class TestCfgCodes:
    def test_v001_no_blocks(self):
        diags = verify_function(Function("empty"))
        (d,) = diags
        assert d.render() == "V001 empty: function has no basic blocks"

    def test_v002_missing_terminator(self):
        func = Function("f")
        func.add_block("entry").append(copy_reg("x", Const(1)))
        (d,) = only(verify_function(func), "V002")
        assert d.render() == "V002 f/entry: block has no terminator"

    def test_v003_terminator_not_last(self):
        func = Function("f")
        entry = func.add_block("entry")
        exit_ = func.add_block("exit")
        exit_.append(ret())
        entry.append(jmp("exit"))
        # Bypass the append() guard: splice a second terminator after.
        entry.instructions.append(jmp("exit"))
        (d,) = only(verify_function(func), "V003")
        assert d.render() == ("V003 f/entry: terminator jmp exit at "
                              "position 0 is not last")

    def test_v004_unknown_target(self):
        func = Function("f")
        func.add_block("entry").append(jmp("nowhere"))
        (d,) = only(verify_function(func), "V004")
        assert d.render() == ("V004 f/entry: branch target 'nowhere' "
                              "names no block")

    def test_v005_stale_label_index(self):
        func = Function("f")
        func.add_block("entry").append(ret())
        # Surgery on .blocks without reindex().
        orphan = BasicBlock("orphan")
        orphan.append(ret())
        func.blocks.append(orphan)
        (d,) = only(verify_function(func), "V005")
        assert d.render() == ("V005 f/orphan: label index does not map "
                              "'orphan' to its block (reindex() "
                              "missing?)")

    def test_v005_duplicate_label(self):
        func = Function("f")
        func.add_block("entry").append(ret())
        twin = BasicBlock("entry")
        twin.append(ret())
        func.blocks.append(twin)
        dups = only(verify_function(func), "V005")
        assert any(d.render() == "V005 f/entry: duplicate block label "
                   "'entry'" for d in dups)

    def test_v006_unreachable_is_a_warning(self):
        func = Function("f")
        func.add_block("entry").append(ret())
        func.add_block("dead").append(ret())
        (d,) = only(verify_function(func), "V006")
        assert d.severity == "warning"
        assert d.render() == ("V006 f/dead: block is unreachable from "
                              "the entry")
        # Warnings keep the function acceptable to the gate.
        module = Module()
        module.add_function(func)
        assert_verified(module, "warnings pass")


class TestOpcodeCodes:
    def test_v101_wrong_arity(self):
        func = straight(Instruction(Opcode.ADD, "d", (Const(1),)))
        (d,) = only(verify_function(func), "V101")
        assert d.render() == ("V101 f/entry: add expects 2 operand(s), "
                              "has 1: %d = add 1")

    def test_v101_ret_with_two_operands(self):
        func = Function("f")
        entry = func.add_block("entry")
        entry.append(Instruction(Opcode.RET,
                                 operands=(Const(1), Const(2))))
        (d,) = only(verify_function(func), "V101")
        assert d.render() == ("V101 f/entry: ret expects at most 1 "
                              "operand, has 2")

    def test_v102_missing_dest(self):
        insn = binop(Opcode.ADD, "d", Const(1), Const(2))
        insn.dest = None
        func = straight(insn)
        (d,) = only(verify_function(func), "V102")
        assert d.render() == "V102 f/entry: add requires a destination"

    def test_v103_unexpected_dest(self):
        insn = store("arr", Const(0), Const(1))
        insn.dest = "x"
        func = straight(insn)
        (d,) = only(verify_function(func), "V103")
        assert d.render() == ("V103 f/entry: store defines no register "
                              "but dest is %x")

    def test_v104_missing_array_symbol(self):
        insn = load("d", "arr", Const(0))
        insn.array = None
        func = straight(insn)
        (d,) = only(verify_function(func), "V104")
        assert d.render() == "V104 f/entry: load has no array symbol"

    def test_v104_undeclared_array(self):
        module = Module()
        func = module.add_function(straight(load("d", "arr", Const(0))))
        (d,) = only(verify_function(func, module), "V104")
        assert d.render() == ("V104 f/entry: load addresses undeclared "
                              "array 'arr'")

    def test_v105_unknown_callee(self):
        module = Module()
        func = module.add_function(straight(call(None, "g")))
        (d,) = only(verify_function(func, module), "V105")
        assert d.render() == ("V105 f/entry: call to unknown function "
                              "'g'")

    def test_v105_wrong_call_arity(self):
        module = Module()
        g = Function("g", params=["a", "b"])
        g.add_block("entry").append(ret(Const(0)))
        module.add_function(g)
        func = module.add_function(
            straight(call("r", "g", (Const(1),))))
        (d,) = only(verify_function(func, module), "V105")
        assert d.render() == ("V105 f/entry: call to 'g' passes 1 "
                              "argument(s), expects 2")

    def test_v105_missing_callee(self):
        insn = call(None, "g")
        insn.callee = None
        func = straight(insn)
        (d,) = only(verify_function(func), "V105")
        assert d.render() == "V105 f/entry: call has no callee"

    def test_v106_wrong_target_count(self):
        insn = jmp("exit")
        insn.targets = ()
        func = Function("f")
        func.add_block("entry").append(insn)
        (d,) = only(verify_function(func), "V106")
        assert d.render() == ("V106 f/entry: jmp carries 0 target(s), "
                              "expects 1")


class TestDataflowCodes:
    def test_v201_use_before_def(self):
        func = straight(binop(Opcode.ADD, "r", Reg("x"), Const(1)))
        (d,) = only(verify_function(func), "V201")
        assert d.render() == ("V201 f/entry: %x may be read before "
                              "definition in %r = add %x, 1")

    def test_v201_one_arm_definition_is_flagged(self):
        from repro.ir import br

        func = Function("f", params=["c"])
        entry = func.add_block("entry")
        t = func.add_block("t")
        join = func.add_block("join")
        entry.append(br(Reg("c"), "t", "join"))
        t.append(copy_reg("x", Const(1)))
        t.append(jmp("join"))
        join.append(binop(Opcode.ADD, "r", Reg("x"), Const(1)))
        join.append(ret(Reg("r")))
        (d,) = only(verify_function(func), "V201")
        assert d.block == "join"

    def test_v202_duplicate_dest(self):
        afu = FakeAFU(output_wires=("n0", "n0"))
        insn = ISEInstruction(afu, (Reg("p"),), dests=("a", "a"))
        func = straight(insn)
        (d,) = only(verify_function(func), "V202")
        assert d.render() == ("V202 f/entry: instruction defines %a "
                              "more than once: %a, %a = ise afu0(%p)")


class TestIseCodes:
    def run_ise(self, afu, operands=(Reg("p"),), dests=("a",)):
        return verify_function(
            straight(ISEInstruction(afu, operands, dests=dests)))

    def test_v301_operand_port_mismatch(self):
        (d,) = only(self.run_ise(FakeAFU(), operands=()), "V301")
        assert d.render() == ("V301 f/entry: ise afu0 passes 0 "
                              "operand(s) to 1 input port(s)")

    def test_v302_dest_wire_mismatch(self):
        (d,) = only(self.run_ise(FakeAFU(), dests=()), "V302")
        assert d.render() == ("V302 f/entry: ise afu0 binds 0 dest(s) "
                              "to 1 output wire(s)")

    def test_v303_undriven_gate_input(self):
        afu = FakeAFU(gates=(FusedGate(Opcode.ADD, "n0", ("zzz", 1)),))
        (d,) = only(self.run_ise(afu), "V303")
        assert d.render() == ("V303 f/entry: ise afu0: gate n0 reads "
                              "undriven wire 'zzz'")

    def test_v303_undriven_output_wire(self):
        afu = FakeAFU(output_wires=("nope",))
        (d,) = only(self.run_ise(afu), "V303")
        assert d.render() == ("V303 f/entry: ise afu0: output wire "
                              "'nope' is driven by no gate")

    def test_v304_afu_illegal_gate(self):
        afu = FakeAFU(gates=(FusedGate(Opcode.LOAD, "n0", ("p0",)),))
        (d,) = only(self.run_ise(afu), "V304")
        assert d.render() == ("V304 f/entry: ise afu0: gate n0 has "
                              "AFU-illegal opcode load")

    def test_well_formed_ise_is_clean(self):
        assert self.run_ise(FakeAFU()) == []


def two_load_module(order):
    module = Module()
    module.add_global(GlobalArray("A", 4))
    module.add_global(GlobalArray("B", 4))
    func = Function("f")
    entry = func.add_block("entry")
    for array, dest in order:
        entry.append(load(dest, array, Const(0)))
    entry.append(ret(Reg("a")))
    module.add_function(func)
    return module


class TestRewriteCodes:
    def test_v305_memory_chain_reordered(self):
        original = two_load_module([("A", "a"), ("B", "b")])
        swapped = two_load_module([("B", "b"), ("A", "a")])
        (d,) = only(check_rewrite(original, swapped), "V305")
        assert d.render() == (
            "V305 f/entry: memory/call chain changed from "
            "[('load', 'A'), ('load', 'B')] to "
            "[('load', 'B'), ('load', 'A')]")

    def test_v305_clean_when_chain_preserved(self):
        original = two_load_module([("A", "a"), ("B", "b")])
        clone = two_load_module([("A", "a"), ("B", "b")])
        assert check_rewrite(original, clone) == []

    def test_v306_register_carried_cycle(self):
        body = [
            binop(Opcode.ADD, "a", Reg("p"), Const(1)),
            binop(Opcode.ADD, "b", Reg("a"), Const(1)),
            binop(Opcode.ADD, "c", Reg("b"), Const(1)),
        ]
        d = check_fused_schedule(body, [{0, 2}])
        assert d is not None
        assert d.render() == ("V306 <module>: dependence cycle through "
                              "the fused region(s) at positions "
                              "[[0, 2]]")

    def test_v306_memory_carried_cycle(self):
        body = [
            store("A", Const(0), Reg("p")),
            load("x", "A", Const(1)),
            store("A", Const(2), Reg("p")),
        ]
        assert check_fused_schedule(body, [{0, 2}]) is not None

    def test_contiguous_region_schedules(self):
        body = [
            binop(Opcode.ADD, "a", Reg("p"), Const(1)),
            binop(Opcode.ADD, "b", Reg("a"), Const(1)),
            binop(Opcode.ADD, "c", Reg("b"), Const(1)),
        ]
        assert check_fused_schedule(body, [{0, 1}]) is None
        assert check_fused_schedule(body, [{1, 2}]) is None
        assert check_fused_schedule(body, []) is None


class TestModuleSurface:
    def test_verify_module_concatenates(self):
        module = Module()
        module.add_function(Function("empty"))
        good = Function("good")
        good.add_block("entry").append(ret())
        module.add_function(good)
        diags = verify_module(module)
        assert [d.code for d in diags] == ["V001"]

    def test_assert_verified_raises_with_context(self):
        module = Module()
        module.add_function(Function("empty"))
        with pytest.raises(VerificationError) as info:
            assert_verified(module, "seed module")
        assert info.value.context == "seed module"
        assert [d.code for d in info.value.diagnostics] == ["V001"]

    def test_workloads_are_clean(self, adpcm_decode_app, fir_app):
        for app in (adpcm_decode_app, fir_app):
            assert verify_module(app.module) == []


class TestVerifyEnabled:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verify_enabled(False) is False
        monkeypatch.delenv("REPRO_VERIFY")
        assert verify_enabled(True) is True

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF", "false",
                                       "no"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert verify_enabled() is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "anything"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert verify_enabled() is True

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert verify_enabled() is False

"""Tests for the MiniC lexer."""

from __future__ import annotations

import pytest

from repro.frontend import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert len(tokenize("  \n\t \r\n ")) == 1

    def test_keywords_vs_identifiers(self):
        toks = tokenize("int x intx for forx")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.IDENT,
            TokenKind.KEYWORD, TokenKind.IDENT,
        ]

    def test_line_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestNumbers:
    @pytest.mark.parametrize("src,value", [
        ("0", 0), ("42", 42), ("0x10", 16), ("0xff", 255),
        ("0XABCDEF", 0xABCDEF), ("'A'", 65), ("'\\n'", 10), ("'\\0'", 0),
    ])
    def test_literals(self, src, value):
        tok = tokenize(src)[0]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.value == value

    def test_bad_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_bad_suffix(self):
        with pytest.raises(LexError):
            tokenize("123abc")


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("a++ +b") == ["a", "++", "+", "b"]

    def test_all_compound_ops(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="]:
            assert op in texts(f"x {op} 1")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_comment_like_operators(self):
        assert texts("a / b") == ["a", "/", "b"]

"""Tests for AST -> IR lowering, checked by executing the result."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp import execute
from repro.ir import verify_function
from repro.passes import optimize_module


def run(source, func, args=(), optimize=False):
    module = compile_source(source)
    if optimize:
        optimize_module(module)
    for f in module.functions.values():
        assert verify_function(f) == []
    return execute(module, func, args).value


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 / 3", 3),
        ("-10 / 3", -3),          # C truncates toward zero
        ("10 % 3", 1),
        ("-10 % 3", -1),
        ("1 << 4", 16),
        ("-8 >> 1", -4),          # arithmetic shift
        ("5 & 3", 1),
        ("5 | 2", 7),
        ("5 ^ 1", 4),
        ("~0", -1),
        ("!5", 0),
        ("!0", 1),
        ("-(3)", -3),
        ("3 < 4", 1),
        ("4 <= 3", 0),
        ("2147483647 + 1", -2147483648),   # wraparound
    ])
    def test_constant_expressions(self, expr, expected):
        assert run(f"int f() {{ return {expr}; }}", "f") == expected

    @pytest.mark.parametrize("expr,a,expected", [
        ("a ? 10 : 20", 1, 10),
        ("a ? 10 : 20", 0, 20),
        ("a && (a > 2)", 3, 1),
        ("a && (a > 2)", 1, 0),
        ("a || (a > 2)", 0, 0),
        ("(a == 0) || (a > 2)", 0, 1),
    ])
    def test_conditional_expressions(self, expr, a, expected):
        src = f"int f(int a) {{ return {expr}; }}"
        assert run(src, "f", [a]) == expected

    def test_short_circuit_skips_side_effect(self):
        # Division by zero on the right of && must not execute.
        src = "int f(int a) { return (a != 0) && (10 / a > 1); }"
        assert run(src, "f", [0]) == 0
        assert run(src, "f", [5]) == 1


class TestControlFlow:
    def test_while_loop(self):
        src = """
        int f(int n) {
          int s = 0;
          int i = 0;
          while (i < n) { s += i; i++; }
          return s;
        }
        """
        assert run(src, "f", [5]) == 10

    def test_for_with_break_continue(self):
        src = """
        int f(int n) {
          int s = 0;
          int i;
          for (i = 0; i < n; i++) {
            if (i == 2) continue;
            if (i == 5) break;
            s += i;
          }
          return s;
        }
        """
        assert run(src, "f", [10]) == 0 + 1 + 3 + 4

    def test_nested_loops(self):
        src = """
        int f(int n) {
          int s = 0;
          int i; int j;
          for (i = 0; i < n; i++)
            for (j = 0; j < i; j++)
              s++;
          return s;
        }
        """
        assert run(src, "f", [5]) == 10

    def test_early_return(self):
        src = """
        int f(int a) {
          if (a > 0) return 1;
          return -1;
        }
        """
        assert run(src, "f", [5]) == 1
        assert run(src, "f", [-5]) == -1


class TestMemoryAndCalls:
    def test_global_arrays(self):
        src = """
        int a[4] = {10, 20, 30, 40};
        int f(int i) { a[i] = a[i] + 1; return a[i]; }
        """
        assert run(src, "f", [2]) == 31

    def test_global_scalar(self):
        src = """
        int g = 7;
        int f() { g += 1; return g; }
        """
        assert run(src, "f") == 8

    def test_function_calls(self):
        src = """
        int square(int x) { return x * x; }
        int f(int a) { return square(a) + square(a + 1); }
        """
        assert run(src, "f", [3]) == 9 + 16

    def test_recursion(self):
        src = """
        int fact(int n) {
          if (n <= 1) return 1;
          return n * fact(n - 1);
        }
        """
        assert run(src, "fact", [6]) == 720

    def test_shadowed_variables(self):
        src = """
        int f(int a) {
          int x = a;
          { int x = 100; x += 1; }
          return x;
        }
        """
        assert run(src, "f", [7]) == 7


class TestOptimizedEquivalence:
    """Optimisation must not change observable results."""

    @pytest.mark.parametrize("args", [[0], [1], [7], [-3], [100]])
    def test_mixed_program(self, args):
        src = """
        int table[8] = {3, 1, 4, 1, 5, 9, 2, 6};
        int f(int a) {
          int s = 0;
          int i;
          for (i = 0; i < 8; i++) {
            int v = table[i];
            s += (v > a) ? v - a : a - v;
            if (s > 100 && v != 2) s = s - 50;
          }
          return s;
        }
        """
        plain = run(src, "f", args, optimize=False)
        optimized = run(src, "f", args, optimize=True)
        assert plain == optimized

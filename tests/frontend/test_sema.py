"""Tests for MiniC semantic analysis."""

from __future__ import annotations

import pytest

from repro.frontend import SemanticError, analyze, parse


def check(source):
    return analyze(parse(source))


class TestDeclarations:
    def test_symbols_collected(self):
        symbols = check("int g; int a[4]; int f(int x) { return x; }")
        assert "g" in symbols.scalars
        assert symbols.arrays["a"] == 4
        assert symbols.functions["f"].num_params == 1

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            check("int g; int g;")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError):
            check("void f() {} void f() {}")

    def test_function_global_collision(self):
        with pytest.raises(SemanticError):
            check("int f; void f() {}")

    def test_zero_size_array(self):
        with pytest.raises(SemanticError):
            check("int a[0];")

    def test_too_many_initialisers(self):
        with pytest.raises(SemanticError):
            check("int a[2] = {1, 2, 3};")


class TestNames:
    def test_undeclared_use(self):
        with pytest.raises(SemanticError):
            check("int f() { return nope; }")

    def test_undeclared_assignment(self):
        with pytest.raises(SemanticError):
            check("void f() { x = 1; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; int x; }")

    def test_shadowing_in_nested_scope_ok(self):
        check("void f() { int x; { int x; x = 1; } x = 2; }")

    def test_scope_ends_at_block(self):
        with pytest.raises(SemanticError):
            check("void f() { { int x; } x = 1; }")

    def test_params_visible(self):
        check("int f(int a) { return a + 1; }")

    def test_duplicate_params(self):
        with pytest.raises(SemanticError):
            check("int f(int a, int a) { return a; }")


class TestArrays:
    def test_array_needs_index(self):
        with pytest.raises(SemanticError):
            check("int a[4]; int f() { return a; }")

    def test_index_on_non_array(self):
        with pytest.raises(SemanticError):
            check("int g; int f() { return g[0]; }")

    def test_assign_to_whole_array(self):
        with pytest.raises(SemanticError):
            check("int a[4]; void f() { a = 1; }")

    def test_global_scalar_assignment_ok(self):
        check("int g; void f() { g = 1; }")

    def test_local_cannot_shadow_array(self):
        with pytest.raises(SemanticError):
            check("int a[4]; void f() { int a; }")


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            check("int g(int x) { return x; } void f() { g(1, 2); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            check("void f() { nothing(); }")

    def test_void_as_value(self):
        with pytest.raises(SemanticError):
            check("void g() {} int f() { return g(); }")

    def test_void_call_statement_ok(self):
        check("void g() {} void f() { g(); }")


class TestReturnsAndLoops:
    def test_void_returns_value(self):
        with pytest.raises(SemanticError):
            check("void f() { return 1; }")

    def test_int_returns_nothing(self):
        with pytest.raises(SemanticError):
            check("int f() { return; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            check("void f() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            check("void f() { continue; }")

    def test_break_in_loop_ok(self):
        check("void f() { while (1) { break; } }")

"""Tests for the MiniC parser."""

from __future__ import annotations

import pytest

from repro.frontend import ParseError, parse
from repro.frontend import ast_nodes as ast


class TestTopLevel:
    def test_global_scalar(self):
        prog = parse("int g;")
        assert prog.globals[0].name == "g"
        assert prog.globals[0].size is None

    def test_global_with_init(self):
        prog = parse("int g = -5;")
        assert prog.globals[0].init == [-5]

    def test_global_array(self):
        prog = parse("int a[4] = {1, 2, 3, 4};")
        decl = prog.globals[0]
        assert decl.size == 4 and decl.init == [1, 2, 3, 4]

    def test_trailing_comma_in_initialiser(self):
        prog = parse("int a[2] = {1, 2,};")
        assert prog.globals[0].init == [1, 2]

    def test_function_params(self):
        prog = parse("int f(int a, int b) { return a; }")
        func = prog.functions[0]
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.returns_value

    def test_void_function(self):
        prog = parse("void f() { }")
        assert not prog.functions[0].returns_value

    def test_void_param_list(self):
        prog = parse("int f(void) { return 0; }")
        assert prog.functions[0].params == []

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse("return 1;")


class TestStatements:
    def _body(self, stmts):
        return parse("void f() { " + stmts + " }").functions[0].body

    def test_declaration_list(self):
        body = self._body("int a = 1, b;")
        inner = body.statements[0]
        assert isinstance(inner, ast.Block)
        assert [d.name for d in inner.statements] == ["a", "b"]

    def test_if_else(self):
        body = self._body("if (1) { } else { }")
        stmt = body.statements[0]
        assert isinstance(stmt, ast.If) and stmt.else_body is not None

    def test_if_without_braces(self):
        body = self._body("if (1) return;")
        stmt = body.statements[0]
        assert isinstance(stmt.then_body, ast.Block)

    def test_dangling_else_binds_inner(self):
        body = self._body("if (1) if (2) return; else return;")
        outer = body.statements[0]
        assert outer.else_body is None
        inner = outer.then_body.statements[0]
        assert inner.else_body is not None

    def test_for_loop_parts(self):
        body = self._body("int i; for (i = 0; i < 4; i++) { }")
        loop = body.statements[1]
        assert isinstance(loop, ast.For)
        assert loop.init is not None and loop.cond is not None
        assert isinstance(loop.step, ast.Assign)

    def test_for_with_decl_init(self):
        body = self._body("for (int i = 0; i < 4; i++) { }")
        loop = body.statements[0]
        assert isinstance(loop.init, ast.Decl)

    def test_empty_for_parts(self):
        body = self._body("for (;;) { break; }")
        loop = body.statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_compound_assignment_desugars(self):
        body = self._body("int x; x += 3;")
        assign = body.statements[1]
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"

    def test_increment_desugars(self):
        body = self._body("int x; x++;")
        assign = body.statements[1]
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"
        assert isinstance(assign.value.right, ast.IntLit)

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            self._body("1 = 2;")


class TestExpressions:
    def _expr(self, text):
        prog = parse(f"int f(int a, int b, int c) {{ return {text}; }}")
        return prog.functions[0].body.statements[0].value

    def test_precedence_mul_over_add(self):
        e = self._expr("a + b * c")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self._expr("a << 2 < b")
        assert e.op == "<" and e.left.op == "<<"

    def test_left_associativity(self):
        e = self._expr("a - b - c")
        assert e.op == "-" and e.left.op == "-"

    def test_parentheses(self):
        e = self._expr("(a + b) * c")
        assert e.op == "*" and e.left.op == "+"

    def test_ternary_right_associative(self):
        e = self._expr("a ? 1 : b ? 2 : 3")
        assert isinstance(e, ast.Ternary)
        assert isinstance(e.if_false, ast.Ternary)

    def test_unary_chain(self):
        e = self._expr("-~!a")
        assert e.op == "-" and e.operand.op == "~" \
            and e.operand.operand.op == "!"

    def test_logical_precedence(self):
        e = self._expr("a == 1 && b == 2 || c")
        assert e.op == "||" and e.left.op == "&&"

    def test_call_and_index(self):
        prog = parse("""
            int t[4];
            int g(int x) { return x; }
            int f(int a) { return g(t[a + 1]); }
        """)
        ret = prog.functions[1].body.statements[0]
        call = ret.value
        assert isinstance(call, ast.Call) and call.callee == "g"
        assert isinstance(call.args[0], ast.Index)

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            self._expr("(a + b")

"""Property tests: the shared 32-bit evaluator vs. an independent oracle.

``evaluate_pure_op`` is the single source of arithmetic truth for the
constant folder, the interpreter and the AFU functional model — so it gets
its own oracle: two's-complement semantics reconstructed through
``struct`` packing (a mechanism entirely unlike the ``wrap32`` arithmetic
in the implementation).
"""

from __future__ import annotations

import struct

from hypothesis import given, strategies as st

from repro.ir.opcodes import Opcode
from repro.passes.constant_folding import evaluate_pure_op
from strategies import i32


def pack32(value: int) -> int:
    """Independent wrap: pack as unsigned 32-bit, unpack as signed."""
    return struct.unpack("<i", struct.pack("<I", value & 0xFFFFFFFF))[0]


def as_u32(value: int) -> int:
    return value & 0xFFFFFFFF


@given(i32, i32)
def test_add_sub_mul(a, b):
    assert evaluate_pure_op(Opcode.ADD, [a, b]) == pack32(a + b)
    assert evaluate_pure_op(Opcode.SUB, [a, b]) == pack32(a - b)
    assert evaluate_pure_op(Opcode.MUL, [a, b]) == pack32(a * b)


@given(i32, i32)
def test_division_truncates_toward_zero(a, b):
    if b == 0:
        assert evaluate_pure_op(Opcode.DIV, [a, b]) is None
        assert evaluate_pure_op(Opcode.REM, [a, b]) is None
        return
    # C99 semantics: trunc division, remainder with dividend's sign.
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    remainder = a - quotient * b
    assert evaluate_pure_op(Opcode.DIV, [a, b]) == pack32(quotient)
    assert evaluate_pure_op(Opcode.REM, [a, b]) == pack32(remainder)
    if a != -(2 ** 31) or b != -1:   # the only overflowing case
        assert abs(remainder) < abs(b)


@given(i32, i32)
def test_bitwise(a, b):
    assert evaluate_pure_op(Opcode.AND, [a, b]) == \
        pack32(as_u32(a) & as_u32(b))
    assert evaluate_pure_op(Opcode.OR, [a, b]) == \
        pack32(as_u32(a) | as_u32(b))
    assert evaluate_pure_op(Opcode.XOR, [a, b]) == \
        pack32(as_u32(a) ^ as_u32(b))
    assert evaluate_pure_op(Opcode.NOT, [a]) == pack32(~a)


@given(i32, st.integers(0, 63))
def test_shifts_mask_amount(a, amount):
    eff = amount & 31
    assert evaluate_pure_op(Opcode.SHL, [a, amount]) == \
        pack32(as_u32(a) << eff)
    assert evaluate_pure_op(Opcode.LSHR, [a, amount]) == \
        pack32(as_u32(a) >> eff)
    assert evaluate_pure_op(Opcode.ASHR, [a, amount]) == a >> eff


@given(i32, i32)
def test_comparisons(a, b):
    assert evaluate_pure_op(Opcode.EQ, [a, b]) == int(a == b)
    assert evaluate_pure_op(Opcode.NE, [a, b]) == int(a != b)
    assert evaluate_pure_op(Opcode.SLT, [a, b]) == int(a < b)
    assert evaluate_pure_op(Opcode.SLE, [a, b]) == int(a <= b)
    assert evaluate_pure_op(Opcode.SGT, [a, b]) == int(a > b)
    assert evaluate_pure_op(Opcode.SGE, [a, b]) == int(a >= b)


@given(i32, i32, i32)
def test_select(c, a, b):
    expected = a if c != 0 else b
    assert evaluate_pure_op(Opcode.SELECT, [c, a, b]) == expected


@given(i32)
def test_neg_copy(a):
    assert evaluate_pure_op(Opcode.NEG, [a]) == pack32(-a)
    assert evaluate_pure_op(Opcode.COPY, [a]) == a


@given(i32, i32)
def test_algebraic_identities(a, b):
    """Sanity identities the folder's rewrites rely on."""
    assert evaluate_pure_op(Opcode.ADD, [a, 0]) == a
    assert evaluate_pure_op(Opcode.MUL, [a, 1]) == a
    assert evaluate_pure_op(Opcode.AND, [a, -1]) == a
    assert evaluate_pure_op(Opcode.XOR, [a, a]) == 0
    assert evaluate_pure_op(Opcode.SUB, [a, a]) == 0
    add_ab = evaluate_pure_op(Opcode.ADD, [a, b])
    add_ba = evaluate_pure_op(Opcode.ADD, [b, a])
    assert add_ab == add_ba

"""Differential suite: the compiled backend vs. the walker oracle.

The compiled-block backend (:mod:`repro.interp.compile`) carries strict
bit-identity obligations (DESIGN.md §11): identical ``RunResult``
values, step counts, profile block/call counts, traps, measured cycles
and measured-speedup artifacts on every workload, with the walker kept
as the reference.  This suite enforces all of it:

* every registry workload × {baseline, ISE-rewritten} × both backends;
* byte-identical ``repro speedup`` rows and ``sweep --measure`` rows;
* randomized-input property tests over op-dense blocks (division,
  remainder, shifts, selects — everything with a wrap or a trap edge);
* the step-limit regression: ``ExecutionLimitExceeded`` must fire at
  the same step index with the same side effects even when the budget
  expires in the middle of a block (or inside a callee).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Constraints, SearchLimits, select_iterative
from repro.exec.cycles import run_with_cycles
from repro.exec.rewrite import rewrite_module
from repro.exec.speedup import run_speedup
from repro.frontend import compile_source
from repro.hwmodel import CostModel
from repro.interp import (
    ExecutionLimitExceeded,
    Interpreter,
    Memory,
    TrapError,
    resolve_backend,
)
from repro.interp.compile import (
    block_digest,
    clear_code_memo,
    code_memo_stats,
    get_block_code,
)
from repro.pipeline import prepare_application
from repro.workloads.registry import WORKLOADS, get_workload

#: Small profiling sizes keep the whole-registry sweep quick.
RUN_SIZES = {
    "adpcm-decode": 48, "adpcm-encode": 48, "gsm": 24, "fir": 24,
    "crc32": 12, "g721": 16, "mixer": 24, "sha": 2,
}

LIMITS = SearchLimits(max_considered=200_000)


def _run(module, entry, driver, n, backend):
    """One full execution: returns (result, profile, memory arrays)."""
    memory = Memory(module)
    args = driver(memory, n)
    interp = Interpreter(module, memory=memory, backend=backend)
    outcome = interp.run(entry, args)
    return outcome, interp.profile, memory.arrays


def _assert_same_run(module, entry, driver, n):
    walk, walk_prof, walk_mem = _run(module, entry, driver, n, "walk")
    comp, comp_prof, comp_mem = _run(module, entry, driver, n, "compiled")
    assert comp.value == walk.value
    assert comp.steps == walk.steps
    assert comp_prof.counts == walk_prof.counts
    assert comp_prof.calls == walk_prof.calls
    assert comp_prof.steps == walk_prof.steps
    assert comp_mem == walk_mem


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_baseline_equivalence(name):
    workload = get_workload(name)
    n = RUN_SIZES[name]
    app = prepare_application(name, n=n)
    _assert_same_run(app.module, app.entry, workload.driver, n)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_rewritten_equivalence(name):
    workload = get_workload(name)
    n = RUN_SIZES[name]
    app = prepare_application(name, n=n)
    model = CostModel()
    selection = select_iterative(app.dfgs, Constraints(nin=4, nout=2,
                                                       ninstr=8),
                                 model, LIMITS)
    rewritten = rewrite_module(app.module, selection.cuts, model)
    _assert_same_run(rewritten.module, app.entry, workload.driver, n)


@pytest.mark.parametrize("name", ["fir", "crc32", "g721"])
def test_measured_cycles_identical(name):
    """run_with_cycles must charge identical cycles on both backends."""
    workload = get_workload(name)
    n = RUN_SIZES[name]
    app = prepare_application(name, n=n)
    reports = {}
    for backend in ("walk", "compiled"):
        memory = Memory(app.module)
        args = workload.driver(memory, n)
        reports[backend] = run_with_cycles(app.module, app.entry, args,
                                           memory=memory,
                                           backend=backend)
    assert reports["compiled"] == reports["walk"]


def test_speedup_rows_byte_identical():
    """The Fig. 9/10 table artifact must not depend on the backend."""
    rows = {}
    for backend in ("walk", "compiled"):
        rows[backend] = [
            row.as_dict()
            for row in run_speedup(["fir", "crc32"], n=24, limits=LIMITS,
                                   backend=backend)
        ]
    assert rows["compiled"] == rows["walk"]


def test_sweep_measure_rows_byte_identical():
    """`sweep --measure` rows (timing aside) are backend-independent."""
    from repro.explore import SweepSpec, run_sweep

    spec = SweepSpec(workloads=("fir",), ports=((4, 2),), ninstrs=(2, 4),
                     algorithms=("iterative",), n=16, limit=100_000,
                     measure=True)
    outcomes = {}
    for backend in ("walk", "compiled"):
        outcome = run_sweep(spec, use_cache=False, backend=backend)
        outcomes[backend] = [
            {k: v for k, v in row.items() if k != "elapsed_s"}
            for row in outcome.rows
        ]
    assert outcomes["compiled"] == outcomes["walk"]


# ----------------------------------------------------------------------
# Randomized-input property tests on op-dense blocks.
# ----------------------------------------------------------------------
EXPRESSION_SOURCE = """
int scratch[4];
int f(int a, int b, int c) {
  int t = a * 3 + (b ^ c) - (a >> 3);
  int u = (t << 2) | (b & 15);
  int s = t < u ? t : u;
  scratch[0] = s;
  scratch[1] = (a >> 31) ^ (b >> 31);
  return s + u * 5 - (c >> 1);
}
"""

DIVISION_SOURCE = """
int f(int a, int b) {
  int q = a / b;
  int r = a % b;
  return q * b + r + (q == a ? 1 : 0);
}
"""

MIDBLOCK_TRAP_SOURCE = """
int a[4];
int f(int x, int y) {
  int t = x * 2 + 1;
  a[0] = t;
  int u = t - y;
  a[1] = u;
  int q = u / y;
  a[2] = q;
  return q + t;
}
"""

CALL_SOURCE = """
int helper(int x, int y) {
  int i;
  int acc = x;
  for (i = 0; i < 3; i++) { acc = acc * 2 + y; }
  return acc;
}
int f(int a, int b) {
  return helper(a, b) - helper(b, a) + helper(a & 7, 1);
}
"""

int32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


def _compare_backends(module, args):
    """Run both backends; both must agree on the outcome *or* the trap.

    Trap outcomes compare the message, the committed memory image AND
    ``Interpreter._steps`` — the cumulative step budget must survive a
    caught trap identically, or a later ``run()`` on the same
    interpreter would hit its limit at different indices per backend.
    """
    outcomes = {}
    for backend in ("walk", "compiled"):
        memory = Memory(module)
        interp = Interpreter(module, memory=memory, backend=backend)
        try:
            result = interp.run("f", args)
            outcomes[backend] = ("ok", result.value, result.steps,
                                 memory.arrays)
        except TrapError as exc:
            outcomes[backend] = ("trap", str(exc), interp._steps,
                                 memory.arrays)
    assert outcomes["compiled"] == outcomes["walk"]


class TestRandomizedInputs:
    @settings(max_examples=60, deadline=None)
    @given(a=int32, b=int32, c=int32)
    def test_expression_block(self, a, b, c):
        module = compile_source(EXPRESSION_SOURCE)
        _compare_backends(module, [a, b, c])

    @settings(max_examples=60, deadline=None)
    @given(a=int32, b=int32)
    def test_division_block(self, a, b):
        # b=0 exercises the trap path: both backends must raise the
        # same TrapError with the same message.
        module = compile_source(DIVISION_SOURCE)
        _compare_backends(module, [a, b])

    @settings(max_examples=30, deadline=None)
    @given(a=int32, b=int32)
    def test_call_block(self, a, b):
        module = compile_source(CALL_SOURCE)
        _compare_backends(module, [a, b])

    def test_midblock_trap_steps_and_side_effects_exact(self):
        """A trap in the middle of a block must leave the identical
        step counter and committed stores as the walker (regression:
        the fast path used to pre-commit the whole block's steps)."""
        module = compile_source(MIDBLOCK_TRAP_SOURCE)
        _compare_backends(module, [7, 0])    # y=0: div traps mid-block
        _compare_backends(module, [7, 3])    # and the clean path too


# ----------------------------------------------------------------------
# Step-limit exactness (the PR's accounting bugfix).
# ----------------------------------------------------------------------
LIMIT_SOURCE = """
int a[8];
int f(int n) {
  int i;
  int s = 1;
  for (i = 0; i < n; i++) {
    s = s + i;
    a[0] = s;
    s = s * 2;
    a[1] = s;
    s = s - 3;
    a[2] = s;
  }
  return s;
}
"""


def _run_with_limit(source, args, max_steps, backend):
    module = compile_source(source)
    memory = Memory(module)
    interp = Interpreter(module, memory=memory, max_steps=max_steps,
                         backend=backend)
    try:
        outcome = interp.run("f", args)
        return ("ok", outcome.value, outcome.steps, interp._steps,
                memory.arrays)
    except ExecutionLimitExceeded as exc:
        return ("limit", str(exc), interp._steps, memory.arrays)


class TestStepLimitExactness:
    def test_limit_mid_block_every_index(self):
        """Sweep the budget across every step index of a run whose hot
        block stores mid-block: the limit must trip at the identical
        index, with identical committed side effects, on both backends
        (the regression for block-granular fast paths)."""
        total = _run_with_limit(LIMIT_SOURCE, [4], 10**9, "walk")[2]
        assert total > 30
        for max_steps in range(1, total + 2):
            walk = _run_with_limit(LIMIT_SOURCE, [4], max_steps, "walk")
            comp = _run_with_limit(LIMIT_SOURCE, [4], max_steps,
                                   "compiled")
            assert comp == walk, f"diverged at max_steps={max_steps}"

    def test_limit_inside_callee_every_index(self):
        """Same sweep with the budget expiring inside called functions
        (exercises the per-segment accounting around CALL sites)."""
        total = _run_with_limit(CALL_SOURCE, [5, 9], 10**9, "walk")[2]
        for max_steps in range(1, total + 2):
            walk = _run_with_limit(CALL_SOURCE, [5, 9], max_steps, "walk")
            comp = _run_with_limit(CALL_SOURCE, [5, 9], max_steps,
                                   "compiled")
            assert comp == walk, f"diverged at max_steps={max_steps}"

    def test_infinite_loop_message(self):
        module = compile_source("void f() { while (1) { } }")
        for backend in ("walk", "compiled"):
            interp = Interpreter(module, max_steps=999, backend=backend)
            with pytest.raises(ExecutionLimitExceeded,
                               match="exceeded 999 steps in 'f'"):
                interp.run("f")


# ----------------------------------------------------------------------
# Backend selection and the code memo.
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "compiled"

    def test_env_var_selects_walker(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "walk")
        module = compile_source("int f() { return 7; }")
        interp = Interpreter(module)
        assert interp.backend == "walk"
        assert interp.run("f").value == 7

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "walk")
        assert resolve_backend("compiled") == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("jit")

    def test_unknown_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        module = compile_source("int f() { return 7; }")
        with pytest.raises(ValueError, match="unknown execution backend"):
            Interpreter(module)


class TestUndefinedRegisterFallback:
    def test_trap_point_and_side_effects_match_walker(self):
        """Hand-built IR reading an undefined register after a store:
        the compiled backend must replay the entry on the walker so the
        store commits, the step counter matches, and the trap message
        names the register (regression: eager entry loads used to trap
        before the store, at step 0)."""
        from repro.ir.function import Function, GlobalArray, Module
        from repro.ir.instructions import binop, ret, store
        from repro.ir.opcodes import Opcode
        from repro.ir.values import Const, Reg

        def build():
            module = Module("m")
            module.add_global(GlobalArray("a", 4))
            func = Function("f", params=["x"])
            block = func.add_block("entry")
            block.append(store("a", Const(0), Reg("x")))
            block.append(binop(Opcode.ADD, "y", Reg("ghost"), Const(1)))
            block.append(ret(Reg("y")))
            module.add_function(func)
            return module

        outcomes = {}
        for backend in ("walk", "compiled"):
            module = build()
            memory = Memory(module)
            interp = Interpreter(module, memory=memory, backend=backend)
            with pytest.raises(TrapError, match="undefined register "
                                                "%ghost"):
                interp.run("f", [5])
            outcomes[backend] = (interp._steps, memory.read_array("a"))
        assert outcomes["compiled"] == outcomes["walk"]
        assert outcomes["walk"][1][0] == 5      # the store committed


class TestCodeMemo:
    def test_cloned_blocks_share_compiled_code(self):
        """Digest-equal blocks (e.g. from rewrite_module's clones) must
        reuse one compiled closure — the sweep/measure warm path."""
        module_a = compile_source("int f(int x) { return x * 2 + 1; }")
        module_b = compile_source("int f(int x) { return x * 2 + 1; }")
        block_a = module_a.functions["f"].entry
        block_b = module_b.functions["f"].entry
        assert block_digest(block_a) == block_digest(block_b)
        before = code_memo_stats().hits
        code_a = get_block_code(block_a)
        code_b = get_block_code(block_b)
        assert code_a is code_b
        assert code_a.fn is not None
        assert code_memo_stats().hits > before

    def test_afu_name_is_digest_relevant(self):
        """Blocks identical up to the bound AFU's *name* must not share
        a closure: the compiled trap message bakes the name in, and the
        walker's message would diverge (regression)."""
        from repro.exec.rewrite import FusedAFU, FusedGate
        from repro.ir.function import Function, Module
        from repro.ir.instructions import ISEInstruction, ret
        from repro.ir.opcodes import Opcode
        from repro.ir.values import Reg

        def build(afu_name):
            afu = FusedAFU(
                name=afu_name, block="f/entry",
                gates=(FusedGate(Opcode.ADD, "w0", ("p0", "p1")),),
                input_ports=("p0", "p1"), output_wires=("w0",),
                latency_cycles=1, software_cycles=2.0, area_mac=0.1)
            module = Module("m")
            func = Function("f", params=["a", "b"])
            block = func.add_block("entry")
            block.append(ISEInstruction(afu, (Reg("a"), Reg("b")),
                                        ("t0",)))
            block.append(ret(Reg("t0")))
            module.add_function(func)
            return block

        assert (block_digest(build("ise0"))
                != block_digest(build("ise1")))
        assert (block_digest(build("ise0"))
                == block_digest(build("ise0")))

    def test_different_constants_do_not_collide(self):
        module_a = compile_source("int f(int x) { return x + 1; }")
        module_b = compile_source("int f(int x) { return x + 2; }")
        assert (block_digest(module_a.functions["f"].entry)
                != block_digest(module_b.functions["f"].entry))

    def test_clear_code_memo(self):
        module = compile_source("int f() { return 3; }")
        get_block_code(module.functions["f"].entry)
        assert clear_code_memo() > 0
        stats = code_memo_stats()
        assert stats.hits == 0 and stats.compiled == 0

    def test_rewritten_module_hits_shared_memo(self):
        """An ISE-rewritten module's unmodified blocks — and its region
        chains — must *hit* the memo an earlier run of the original
        module populated, not recompile (regression: ``repro run
        --rewrite`` after a sweep used to pay full codegen again).
        Region digests are purely structural, so digest-equal chains
        from the rewrite's clone reuse the original's closures."""
        from repro import interp
        from repro.core import Constraints, select_iterative
        from repro.exec.rewrite import rewrite_module
        from repro.hwmodel import CostModel
        from repro.pipeline import prepare_application
        from repro.workloads.registry import get_workload

        name, n = "fir", RUN_SIZES["fir"]
        app = prepare_application(name, n=n)
        model = CostModel()
        selection = select_iterative(
            app.dfgs, Constraints(nin=4, nout=2, ninstr=4), model,
            LIMITS)
        rewritten = rewrite_module(app.module, selection.cuts, model)
        assert rewritten.rewritten_blocks > 0

        workload = get_workload(name)
        clear_code_memo()
        # Populate: one compiled run of the *original* module.
        memory = Memory(app.module)
        interp.execute(app.module, app.entry,
                       workload.driver(memory, n), memory=memory,
                       backend="compiled")
        # code_memo_stats() returns the live counters — snapshot them.
        warm = code_memo_stats().as_dict()
        assert warm["compiled"] > 0
        # The rewritten module recompiles only blocks the rewrite
        # actually changed; everything digest-equal is a memo hit.
        memory = Memory(rewritten.module)
        interp.execute(rewritten.module, app.entry,
                       workload.driver(memory, n), memory=memory,
                       backend="compiled")
        after = code_memo_stats().as_dict()
        assert after["hits"] > warm["hits"]
        assert (after["compiled"] - warm["compiled"]
                < warm["compiled"]), "rewritten run recompiled everything"


class TestMemoLRU:
    """Satellite: LRU eviction replaced the wholesale drop-at-capacity."""

    def _flood(self, count, start=0):
        """Compile *count* distinct single-block functions."""
        for k in range(start, start + count):
            module = compile_source(f"int f() {{ return {k}; }}")
            get_block_code(module.functions["f"].entry)

    def test_memo_never_exceeds_cap(self, monkeypatch):
        from repro.interp import compile as compile_mod

        monkeypatch.setattr(compile_mod, "MEMO_LIMIT", 8)
        clear_code_memo()
        self._flood(30)
        assert len(compile_mod._MEMO) <= 8
        assert code_memo_stats().evictions >= 30 - 8

    def test_hot_digest_survives_eviction_cycle(self, monkeypatch):
        """A digest re-looked-up between floods must stay resident
        while cold entries churn out around it — the property the old
        drop-everything behaviour lacked."""
        from repro.interp import compile as compile_mod

        monkeypatch.setattr(compile_mod, "MEMO_LIMIT", 8)
        clear_code_memo()
        hot_module = compile_source("int f(int x) { return x ^ 42; }")
        hot_block = hot_module.functions["f"].entry
        hot = get_block_code(hot_block)
        for round_ in range(4):
            # More cold entries than the cap, in two instalments, with
            # a hot touch between them to refresh recency.
            self._flood(5, start=100 * (round_ + 1))
            assert get_block_code(hot_block) is hot
            self._flood(5, start=100 * (round_ + 1) + 50)
            assert get_block_code(hot_block) is hot
        assert code_memo_stats().evictions > 0
        assert len(compile_mod._MEMO) <= 8
        clear_code_memo()

"""Differential suite: batched execution vs. fresh single runs.

:func:`repro.interp.run_batch` (DESIGN.md §12) promises per-lane
bit-identity: every lane of a batch — value, step count, profile,
trap message, the exact step index a budget expiry fires at — must
match running that lane alone on a fresh single-input interpreter,
and therefore (through the backend-equivalence obligation) the
reference walker.  This suite enforces it:

* every registry workload × {baseline, ISE-rewritten} × all three
  backends (``walk``, ``block``, ``compiled``);
* lane isolation: a lane that traps mid-batch, and a lane that
  exhausts its own step budget, must not poison the lanes after it;
* the verification hook (:func:`repro.interp.image_verifier`) and the
  ``driver_lanes`` overlay-trimming contract.
"""

from __future__ import annotations

import functools

import pytest

from repro.core import Constraints, SearchLimits, select_iterative
from repro.exec.rewrite import rewrite_module
from repro.frontend import compile_source
from repro.hwmodel import CostModel
from repro.interp import (
    BACKENDS,
    ExecutionLimitExceeded,
    Interpreter,
    Lane,
    Memory,
    TrapError,
    driver_lanes,
    image_verifier,
    run_batch,
)
from repro.pipeline import prepare_application
from repro.workloads.registry import WORKLOADS, get_workload

#: Small profiling sizes keep the whole-registry matrix quick.
RUN_SIZES = {
    "adpcm-decode": 48, "adpcm-encode": 48, "gsm": 24, "fir": 24,
    "crc32": 12, "g721": 16, "mixer": 24, "sha": 2,
}

LIMITS = SearchLimits(max_considered=200_000)

DEFAULT_BUDGET = 50_000_000


def _single(module, entry, lane, backend, max_steps=DEFAULT_BUDGET):
    """One lane on a fresh single-input interpreter — the reference a
    batched lane must match bit-for-bit.  Returns the same summary
    tuple :func:`_summary` extracts from a ``LaneResult``."""
    memory = Memory(module)
    for name, values in lane.arrays.items():
        memory.write_array(name, values)
    budget = lane.max_steps if lane.max_steps is not None else max_steps
    interp = Interpreter(module, memory=memory, backend=backend,
                         max_steps=budget)
    try:
        run = interp.run(entry, lane.args)
        return (run.value, run.steps, None, False, interp.profile)
    except TrapError as exc:
        return (None, interp._steps, str(exc), False, interp.profile)
    except ExecutionLimitExceeded as exc:
        return (None, interp._steps, str(exc), True, interp.profile)


def _summary(lane_result):
    """The bit-identity surface of one lane: value, steps, trap,
    budget-expiry flag and the full profile (counts, calls, steps)."""
    return (lane_result.value, lane_result.steps, lane_result.trap,
            lane_result.limit, lane_result.profile)


@functools.lru_cache(maxsize=None)
def _prepared(name, variant):
    """(module, entry) for one workload, baseline or ISE-rewritten —
    cached so the 7×2×3 matrix prepares each application once."""
    app = prepare_application(name, n=RUN_SIZES[name])
    if variant == "baseline":
        return app.module, app.entry
    model = CostModel()
    selection = select_iterative(
        app.dfgs, Constraints(nin=4, nout=2, ninstr=8), model, LIMITS)
    rewritten = rewrite_module(app.module, selection.cuts, model)
    return rewritten.module, app.entry


@pytest.mark.parametrize("variant", ["baseline", "rewritten"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_batch_equivalence(name, variant):
    """Every lane of every backend's batch matches a fresh walker run."""
    module, entry = _prepared(name, variant)
    workload = get_workload(name)
    n = RUN_SIZES[name]
    lanes = driver_lanes(module, workload.driver, n, 3)
    reference = _single(module, entry, lanes[0], "walk")
    assert reference[2] is None     # the workload itself must not trap
    for backend in BACKENDS:
        batch = run_batch(module, entry, lanes, backend=backend)
        assert batch.backend == backend
        assert batch.ok_count == len(lanes)
        for lane_result in batch.lanes:
            assert _summary(lane_result) == reference, (
                f"{name}/{variant} lane {lane_result.index} diverged "
                f"on {backend}")


# ----------------------------------------------------------------------
# Lane isolation: traps and budget expiries stay inside their lane.
# ----------------------------------------------------------------------
TRAP_SOURCE = """
int a[4];
int f(int x, int y) {
  int t = x * 2 + 1;
  a[0] = t;
  int q = t / y;
  a[1] = q;
  return q + t;
}
"""

LOOP_SOURCE = """
int a[4];
int f(int n) {
  int i;
  int s = 1;
  for (i = 0; i < n; i++) {
    s = s + i;
    a[0] = s;
    s = s * 2;
  }
  return s;
}
"""


class TestLaneIsolation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_batch_trap_does_not_poison_later_lanes(self, backend):
        module = compile_source(TRAP_SOURCE)
        lanes = [Lane(args=(10, 3)), Lane(args=(7, 0)),
                 Lane(args=(20, 5))]
        batch = run_batch(module, "f", lanes, backend=backend)
        for lane, result in zip(lanes, batch.lanes):
            assert _summary(result) == _single(module, "f", lane,
                                               backend)
        assert batch.lanes[1].trap is not None
        assert not batch.lanes[1].limit
        assert batch.lanes[0].ok and batch.lanes[2].ok
        assert batch.ok_count == 2
        # The trap message itself is walker-identical.
        assert (batch.lanes[1].trap
                == _single(module, "f", lanes[1], "walk")[2])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_exhausted_lane_is_isolated_and_exact(self, backend):
        module = compile_source(LOOP_SOURCE)
        lanes = [Lane(args=(4,)), Lane(args=(10**6,), max_steps=100),
                 Lane(args=(4,))]
        batch = run_batch(module, "f", lanes, backend=backend)
        for lane, result in zip(lanes, batch.lanes):
            assert _summary(result) == _single(module, "f", lane,
                                               backend)
        starved = batch.lanes[1]
        assert starved.limit and starved.trap is not None
        # The walker increments before checking, so expiry is observed
        # at budget + 1 — on every backend, batched or not.
        assert starved.steps == 101
        assert (_summary(starved)
                == _single(module, "f", lanes[1], "walk"))
        # Neighbours ran under the batch-wide budget, unaffected.
        assert batch.lanes[0].ok and batch.lanes[2].ok
        assert _summary(batch.lanes[0]) == _summary(batch.lanes[2])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_memory_image_resets_between_lanes(self, backend):
        # Lane 0 stores a[0] = 2*x+1; lane 1 overlays a different row
        # prefix; lane 2 must still see the pristine initial image.
        module = compile_source(TRAP_SOURCE)
        lanes = [Lane(args=(10, 1)), Lane(args=(10, 1),
                                          arrays={"a": [99, 98]}),
                 Lane(args=(10, 1))]
        batch = run_batch(module, "f", lanes, backend=backend,
                          keep_arrays=True)
        assert batch.ok_count == 3
        assert _summary(batch.lanes[0]) == _summary(batch.lanes[2])
        assert batch.lanes[0].arrays == batch.lanes[2].arrays
        # The overlay was visible only inside its own lane (a[1] is
        # written by the program either way; a[2:] only by the overlay
        # lane's initial image — which resets afterwards).
        assert batch.lanes[1].arrays["a"][2:] == [0, 0]


# ----------------------------------------------------------------------
# The verification hook and the driver_lanes contract.
# ----------------------------------------------------------------------
class TestVerificationHook:
    def test_image_verifier_accepts_bit_identical_lanes(self):
        module = compile_source(TRAP_SOURCE)
        lanes = [Lane(args=(10, 1))] * 3
        reference = run_batch(module, "f", lanes[:1],
                              keep_arrays=True)
        ref = reference.lanes[0]
        check = image_verifier(ref.value, ref.arrays)
        batch = run_batch(module, "f", lanes, verify=check)
        assert batch.verified_count == 3
        assert all(lane.verified is True for lane in batch.lanes)

    def test_image_verifier_rejects_divergence(self):
        module = compile_source(TRAP_SOURCE)
        batch = run_batch(module, "f", [Lane(args=(10, 1))],
                          verify=image_verifier(-1, {}))
        assert batch.lanes[0].verified is False
        assert batch.verified_count == 0

    def test_faulted_lanes_are_not_verified(self):
        module = compile_source(TRAP_SOURCE)
        batch = run_batch(module, "f", [Lane(args=(7, 0))],
                          verify=image_verifier(None, {}))
        assert batch.lanes[0].verified is None

    def test_driver_lanes_trims_overlays_to_changed_prefix(self):
        workload = get_workload("fir")
        app = prepare_application("fir", n=RUN_SIZES["fir"])
        lanes = driver_lanes(app.module, workload.driver,
                             RUN_SIZES["fir"], 5)
        assert len(lanes) == 5
        assert lanes[0] is lanes[4]     # one shared record
        template = Memory(app.module)
        for name, values in lanes[0].arrays.items():
            row = template.arrays[name]
            assert len(values) <= len(row)
            # Trimmed at the last changed element: the final overlay
            # word differs from the initial image by construction.
            assert values[-1] != row[len(values) - 1]

"""Unknown-global accesses must *trap*, never leak a bare ``KeyError``:
``load``/``store`` always did, but the harness conveniences
(``scalar``/``set_scalar``/``write_array``/``read_array``) used to
differ.  All six paths now fault consistently."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp import Memory, TrapError


@pytest.fixture
def memory():
    return Memory(compile_source("int a[3] = {1, 2, 3}; int g = 5;"))


class TestUnknownGlobalTraps:
    def test_load(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.load("nope", 0)

    def test_store(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.store("nope", 0, 1)

    def test_scalar(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.scalar("nope")

    def test_set_scalar(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.set_scalar("nope", 1)

    def test_write_array(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.write_array("nope", [1, 2])

    def test_read_array(self, memory):
        with pytest.raises(TrapError, match="unknown array 'nope'"):
            memory.read_array("nope")

    def test_never_a_bare_keyerror(self, memory):
        for fault in (lambda: memory.load("x", 0),
                      lambda: memory.store("x", 0, 0),
                      lambda: memory.scalar("x"),
                      lambda: memory.set_scalar("x", 0),
                      lambda: memory.write_array("x", [0]),
                      lambda: memory.read_array("x")):
            try:
                fault()
            except TrapError:
                pass
            else:  # pragma: no cover - the point of the test
                pytest.fail("expected a TrapError")


class TestKnownGlobalsStillWork:
    def test_roundtrip(self, memory):
        memory.set_scalar("g", 9)
        assert memory.scalar("g") == 9
        memory.write_array("a", [4, 5], offset=1)
        assert memory.read_array("a") == [1, 4, 5]

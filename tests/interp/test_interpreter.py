"""Tests for the IR interpreter and memory model."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp import (
    ExecutionLimitExceeded,
    Interpreter,
    Memory,
    TrapError,
    execute,
    profile_module,
)


class TestExecution:
    def test_return_value(self):
        module = compile_source("int f() { return 41 + 1; }")
        assert execute(module, "f").value == 42

    def test_void_returns_none(self):
        module = compile_source("int g; void f() { g = 1; }")
        assert execute(module, "f").value is None

    def test_arguments(self):
        module = compile_source("int f(int a, int b) { return a * b; }")
        assert execute(module, "f", [6, 7]).value == 42

    def test_argument_wrapping(self):
        module = compile_source("int f(int a) { return a; }")
        assert execute(module, "f", [1 << 32]).value == 0

    def test_wrong_arity(self):
        module = compile_source("int f(int a) { return a; }")
        with pytest.raises(TrapError):
            execute(module, "f", [1, 2])

    def test_unknown_function(self):
        module = compile_source("int f() { return 0; }")
        with pytest.raises(TrapError):
            execute(module, "g")

    def test_division_by_zero_traps(self):
        module = compile_source("int f(int a) { return 10 / a; }")
        with pytest.raises(TrapError):
            execute(module, "f", [0])

    def test_step_limit(self):
        module = compile_source("void f() { while (1) { } }")
        interp = Interpreter(module, max_steps=1000)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run("f")

    def test_deep_recursion_guard(self):
        module = compile_source(
            "int f(int n) { return f(n + 1); }")
        with pytest.raises(TrapError):
            execute(module, "f", [0])


class TestMemory:
    def test_globals_initialised(self):
        module = compile_source("int a[3] = {7, 8, 9}; int g = 5;")
        memory = Memory(module)
        assert memory.read_array("a") == [7, 8, 9]
        assert memory.scalar("g") == 5

    def test_partial_initialiser_zero_fills(self):
        module = compile_source("int a[4] = {1};")
        assert Memory(module).read_array("a") == [1, 0, 0, 0]

    def test_out_of_bounds_load_traps(self):
        module = compile_source(
            "int a[2]; int f(int i) { return a[i]; }")
        with pytest.raises(TrapError):
            execute(module, "f", [5])
        with pytest.raises(TrapError):
            execute(module, "f", [-1])

    def test_out_of_bounds_store_traps(self):
        module = compile_source(
            "int a[2]; void f(int i) { a[i] = 1; }")
        with pytest.raises(TrapError):
            execute(module, "f", [2])

    def test_memory_persists_across_calls(self):
        module = compile_source("""
            int g = 0;
            void inc() { g += 1; }
            int get() { return g; }
        """)
        memory = Memory(module)
        interp = Interpreter(module, memory=memory)
        interp.run("inc")
        interp.run("inc")
        assert interp.run("get").value == 2

    def test_write_array_bounds(self):
        module = compile_source("int a[2];")
        memory = Memory(module)
        with pytest.raises(TrapError):
            memory.write_array("a", [1, 2, 3])


class TestProfiling:
    def test_block_counts(self):
        module = compile_source("""
            int f(int n) {
              int s = 0;
              int i;
              for (i = 0; i < n; i++) { s += i; }
              return s;
            }
        """)
        profile = profile_module(module, "f", [10])
        body = [label for (fn, label) in profile.counts
                if label.startswith("for_body")]
        assert body
        assert profile.block_count("f", body[0]) == 10

    def test_call_counts(self):
        module = compile_source("""
            int g(int x) { return x; }
            int f() { return g(1) + g(2) + g(3); }
        """)
        profile = profile_module(module, "f")
        assert profile.calls["g"] == 3
        assert profile.calls["f"] == 1

    def test_weights_for(self):
        module = compile_source("int f() { return 1; }")
        profile = profile_module(module, "f")
        weights = profile.weights_for("f")
        assert weights.get("entry") == 1.0

    def test_merge(self):
        module = compile_source("int f() { return 1; }")
        a = profile_module(module, "f")
        b = profile_module(module, "f")
        a.merge(b)
        assert a.block_count("f", "entry") == 2

"""Tests for the cost model and the merit function M(S)."""

from __future__ import annotations

import math

import pytest

from repro.hwmodel import (
    CostModel,
    application_cycles,
    cut_area,
    cut_hardware_critical_path,
    cut_hardware_cycles,
    cut_merit,
    cut_software_cycles,
    estimated_speedup,
    merit_breakdown,
    uniform_cost_model,
)
from repro.ir.opcodes import Opcode
from repro.ir.synth import make_dfg


@pytest.fixture(scope="module")
def model():
    return CostModel()


def chain(ops, live_last=True):
    edges = [(i, i + 1) for i in range(len(ops) - 1)]
    live = [len(ops) - 1] if live_last else []
    return make_dfg(ops, edges, live_out=live)


class TestLatencies:
    def test_software_accumulates(self, model):
        dfg = chain([Opcode.MUL, Opcode.ADD, Opcode.ADD])
        assert cut_software_cycles(dfg, range(3), model) == 4  # 2+1+1

    def test_critical_path_follows_chain(self, model):
        dfg = chain([Opcode.ADD] * 4)
        cp = cut_hardware_critical_path(dfg, range(4), model)
        assert cp == pytest.approx(4 * 0.30)

    def test_critical_path_of_partial_cut(self, model):
        dfg = chain([Opcode.ADD] * 4)
        # Two non-adjacent nodes: paths don't connect inside the cut.
        cp = cut_hardware_critical_path(dfg, {0, 2}, model)
        assert cp == pytest.approx(0.30)

    def test_hw_cycles_is_ceiling(self, model):
        dfg = chain([Opcode.ADD] * 4)        # cp = 1.2 -> 2 cycles
        assert cut_hardware_cycles(dfg, range(4), model) == 2
        assert cut_hardware_cycles(dfg, range(3), model) == 1  # 0.9
        assert cut_hardware_cycles(dfg, [], model) == 0

    def test_forbidden_node_has_infinite_delay(self, model):
        dfg = make_dfg([Opcode.LOAD], [], live_out=[0])
        with pytest.raises(ValueError):
            cut_hardware_cycles(dfg, {0}, model)

    def test_constant_shift_is_cheap(self, model):
        # Shift with a constant amount: second operand is a Const.
        from repro.ir.instructions import binop
        from repro.ir.values import Const, Reg
        dfg = chain([Opcode.SHL, Opcode.SHL])
        node = dfg.nodes[0]
        # make_dfg pads operands with registers; emulate const shift:
        const_shift = binop(Opcode.SHL, "x", Reg("a"), Const(3))
        node.insns = (const_shift,)
        assert model.hw(node) < model.hw_delay[Opcode.SHL]


class TestMerit:
    def test_merit_formula(self, model):
        dfg = chain([Opcode.MUL, Opcode.ADD])
        merit = cut_merit(dfg, {0, 1}, model)
        sw = cut_software_cycles(dfg, {0, 1}, model)
        hw = cut_hardware_cycles(dfg, {0, 1}, model)
        assert merit == pytest.approx(dfg.weight * (sw - hw))

    def test_empty_cut_merit_zero(self, model):
        dfg = chain([Opcode.ADD])
        assert cut_merit(dfg, [], model) == 0.0

    def test_breakdown_consistency(self, model):
        dfg = chain([Opcode.MUL, Opcode.ADD, Opcode.XOR])
        info = merit_breakdown(dfg, range(3), model)
        assert info.merit == pytest.approx(
            info.weight * info.saved_per_execution)
        assert info.hardware_cycles == math.ceil(
            info.critical_path_mac - 1e-9)
        assert info.area_mac > 0

    def test_area_accumulates(self, model):
        dfg = chain([Opcode.MUL, Opcode.MUL])
        assert cut_area(dfg, range(2), model) == pytest.approx(1.8)


class TestApplicationSpeedup:
    def test_application_cycles_weighted(self, model):
        a = chain([Opcode.ADD] * 2)
        b = make_dfg([Opcode.MUL], [], live_out=[0], weight=10.0)
        total = application_cycles([a, b], model)
        assert total == pytest.approx(1 * 2 + 10 * 2)

    def test_estimated_speedup(self):
        assert estimated_speedup(100, 50) == pytest.approx(2.0)
        assert estimated_speedup(100, 0) == pytest.approx(1.0)
        assert estimated_speedup(0, 0) == 1.0
        assert math.isinf(estimated_speedup(100, 100))


class TestUniformModel:
    def test_every_legal_op_same_cost(self):
        uniform = uniform_cost_model()
        assert uniform.sw_latency[Opcode.MUL] == \
            uniform.sw_latency[Opcode.ADD] == 1
        assert uniform.hw_delay[Opcode.MUL] == \
            uniform.hw_delay[Opcode.XOR] == 0.3
        assert math.isinf(uniform.hw_delay[Opcode.LOAD])

"""Golden-model equivalence of ISE-rewritten programs.

The acceptance property of the execution layer: for every bundled
workload and a spread of sweep points (port budgets x selection
algorithms), the rewritten program's outputs — return value, every
memory word, and the workload's independent golden model — are
bit-identical to the unmodified interpreter, and the dynamically
measured cycle savings equal the selection's static merit exactly
(profiling input == measurement input).
"""

from __future__ import annotations

import pytest

from repro import WORKLOADS, Constraints, prepare_application
from repro.core import SearchLimits, select_clubbing, select_iterative
from repro.exec import measure_selection
from repro.hwmodel import CostModel, uniform_cost_model

#: Small-but-nontrivial run size shared by profiling and measurement.
N = 48

LIMITS = SearchLimits(max_considered=60_000)

MODEL = CostModel()


@pytest.fixture(scope="module")
def apps():
    """One prepared application per workload (expensive; share them)."""
    return {name: prepare_application(name, n=N)
            for name in sorted(WORKLOADS)}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("nin,nout", [(2, 1), (4, 2)])
def test_iterative_rewrite_is_bit_identical(apps, name, nin, nout):
    app = apps[name]
    constraints = Constraints(nin=nin, nout=nout, ninstr=16)
    result = select_iterative(app.dfgs, constraints, MODEL, LIMITS)
    measured = measure_selection(app, result, MODEL, n=N)
    assert measured.identical, (
        f"{name} @ {nin}x{nout}: rewritten program diverged")
    # Same input as profiling => measured savings equal static merit.
    saved = measured.baseline_cycles - measured.ise_cycles
    assert saved == pytest.approx(result.total_merit)
    if result.cuts and not measured.skipped_cuts:
        assert measured.speedup > 1.0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_clubbing_rewrite_is_bit_identical(apps, name):
    app = apps[name]
    constraints = Constraints(nin=4, nout=2, ninstr=16)
    result = select_clubbing(app.dfgs, constraints, MODEL)
    measured = measure_selection(app, result, MODEL, n=N)
    assert measured.identical
    saved = measured.baseline_cycles - measured.ise_cycles
    assert saved == pytest.approx(result.total_merit)


def test_uniform_model_equivalence(apps):
    """Cost-model ablation changes cycle numbers, never program output."""
    model = uniform_cost_model()
    app = apps["gsm"]
    constraints = Constraints(nin=3, nout=2, ninstr=8)
    result = select_iterative(app.dfgs, constraints, model, LIMITS)
    measured = measure_selection(app, result, model, n=N)
    assert measured.identical
    saved = measured.baseline_cycles - measured.ise_cycles
    assert saved == pytest.approx(result.total_merit)


def test_measurement_generalises_to_other_input_sizes(apps):
    """Measuring on a different n than the profile still runs bit-exact
    (the speedup may differ — that is the experiment's point)."""
    app = apps["crc32"]
    constraints = Constraints(nin=4, nout=2, ninstr=8)
    result = select_iterative(app.dfgs, constraints, MODEL, LIMITS)
    for other_n in (16, 96):
        measured = measure_selection(app, result, MODEL, n=other_n)
        assert measured.identical
        assert measured.baseline_cycles > 0


def test_empty_selection_is_identity(apps):
    """No cuts: the rewrite degenerates to a clone with speedup 1.0."""
    from repro.core.selection import make_result

    app = apps["fir"]
    constraints = Constraints(nin=1, nout=1, ninstr=1)
    result = make_result("Empty", constraints, [], app.dfgs, MODEL)
    measured = measure_selection(app, result, MODEL, n=N)
    assert measured.identical
    assert measured.speedup == pytest.approx(1.0)
    assert measured.num_instructions == 0

"""Unit tests for the ISE rewriter on hand-built IR.

These cover the rewrite mechanics that the workload-level equivalence
suite cannot isolate: splice placement under interleaved consumers,
non-SSA register reuse, memory ordering, memory-carried dependence
cycles (skipped cuts), and the cost bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core.cut import evaluate_cut
from repro.exec import (
    RewriteError,
    module_block_costs,
    rewrite_module,
    run_with_cycles,
)
from repro.hwmodel import CostModel
from repro.interp import Interpreter, Memory
from repro.ir.dfg import function_dfgs
from repro.ir.opcodes import Opcode
from repro.ir.printer import parse_module


MODEL = CostModel()


def _dfg_of(module, func_name):
    [dfg] = [d for d in function_dfgs(module.function(func_name))
             if d.n >= 1]
    return dfg


def _nodes_by_label(dfg, *prefixes):
    """DFG node indices whose label starts with any prefix (e.g. 'add#0')."""
    picked = []
    for prefix in prefixes:
        matches = [n.index for n in dfg.nodes if n.label.startswith(prefix)]
        assert matches, f"no node labelled {prefix} in {dfg.name}"
        picked.extend(matches)
    return picked


def _run_both(module, rewritten, entry, args=()):
    base_mem, ise_mem = Memory(module), Memory(rewritten.module)
    base = Interpreter(module, memory=base_mem).run(entry, args)
    ise = Interpreter(rewritten.module, memory=ise_mem).run(entry, args)
    assert base.value == ise.value
    assert base_mem.arrays == ise_mem.arrays
    return base, ise


class TestBasicSplice:
    IR = """
global out[4]

func f(a, b):
entry:
  %t0 = add %a, %b
  %t1 = mul %t0, %a
  %t2 = xor %t1, 7
  store out[0] = %t2
  ret %t2
"""

    def test_single_cut_is_fused_and_equivalent(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        cut = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "mul#1",
                                                "xor#2"), MODEL)
        rewritten = rewrite_module(module, [cut], MODEL)
        assert rewritten.num_instructions == 1
        assert rewritten.rewritten_blocks == 1
        assert not rewritten.skipped
        ise = [i for i in rewritten.module.function("f").entry.instructions
               if i.opcode is Opcode.ISE]
        assert len(ise) == 1
        assert len(ise[0].dests) == 1          # one escaping value
        _run_both(module, rewritten, "f", (5, 9))
        _run_both(module, rewritten, "f", (-7, 123456))

    def test_block_cost_is_uncovered_plus_latency(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        cut = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "mul#1",
                                                "xor#2"), MODEL)
        rewritten = rewrite_module(module, [cut], MODEL)
        cost = rewritten.block_costs[("f", "entry")]
        store_cost = MODEL.sw_latency[Opcode.STORE]
        assert cost == pytest.approx(store_cost + cut.hardware_cycles)
        # The baseline accountant must agree on the unmodified module.
        base = module_block_costs(module, MODEL)[("f", "entry")]
        assert base == pytest.approx(store_cost + cut.software_cycles)


class TestSplicePlacement:
    # A non-member consumer (%c) sits *between* the two members in
    # program order; the cut is convex, so splicing must reorder the
    # consumer after the fused instruction without changing results.
    IR = """
global out[4]

func f(a, b):
entry:
  %m1 = add %a, %b
  %c = sub %m1, %a
  %m2 = xor %a, %b
  store out[0] = %c
  store out[1] = %m2
  ret %c
"""

    def test_interleaved_consumer(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        cut = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "xor#2"),
                           MODEL)
        assert cut.convex
        rewritten = rewrite_module(module, [cut], MODEL)
        assert rewritten.num_instructions == 1
        _run_both(module, rewritten, "f", (17, 4))
        _run_both(module, rewritten, "f", (-1, -2))


class TestRegisterReuse:
    # Non-SSA reuse: %t is defined twice; the cut covers only the first
    # chain, and the renaming must keep both readers on the right value.
    IR = """
global out[4]

func f(a, b):
entry:
  %t = add %a, %b
  %u = mul %t, 3
  %t = sub %a, %b
  %v = mul %t, 5
  store out[0] = %u
  store out[1] = %v
  ret %u
"""

    def test_reused_name_stays_correct(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        cut = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "mul#1"),
                           MODEL)
        rewritten = rewrite_module(module, [cut], MODEL)
        assert rewritten.num_instructions == 1
        _run_both(module, rewritten, "f", (11, 7))


class TestMemoryCarriedCycle:
    # m1 -> store -> load -> m2: register-convex, but a memory-carried
    # dependence threads through the cut, so it cannot issue atomically.
    # The rewriter must skip it (not miscompile) and stay bit-exact.
    IR = """
global buf[4]

func f(a, b):
entry:
  %m1 = add %a, %b
  store buf[0] = %m1
  %l = load buf[0]
  %m2 = mul %l, %a
  store buf[1] = %m2
  ret %m2
"""

    def test_unschedulable_cut_is_skipped(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        cut = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "mul#3"),
                           MODEL)
        assert cut.convex                     # register-dataflow convex...
        rewritten = rewrite_module(module, [cut], MODEL)
        assert rewritten.num_instructions == 0    # ...but not executable
        assert rewritten.rewritten_blocks == 0    # block left untouched
        assert not rewritten.block_costs
        assert len(rewritten.skipped) == 1
        assert "memory-carried" in rewritten.skipped[0]
        _run_both(module, rewritten, "f", (3, 4))


class TestPickledCuts:
    # Parallel selection (--workers) returns cuts pickled back from
    # worker processes: their DFG nodes hold *copies* of the module's
    # instructions, so identity-based location must fall back to the
    # structural (dfg name + node label) path.
    def test_cut_survives_pickle_roundtrip(self):
        import pickle

        from repro import Constraints, prepare_application
        from repro.core import select_iterative

        app = prepare_application("fir", n=32)
        result = select_iterative(app.dfgs,
                                  Constraints(nin=4, nout=2, ninstr=4))
        assert result.cuts
        cuts = pickle.loads(pickle.dumps(result.cuts))
        direct = rewrite_module(app.module, result.cuts, MODEL)
        via_pickle = rewrite_module(app.module, cuts, MODEL)
        assert via_pickle.num_instructions == direct.num_instructions
        assert via_pickle.block_costs == direct.block_costs
        _run_both(app.module, via_pickle, app.entry, (32,))


class TestOverlapRejected:
    IR = TestBasicSplice.IR

    def test_overlapping_cuts_raise(self):
        module = parse_module(self.IR)
        dfg = _dfg_of(module, "f")
        a = evaluate_cut(dfg, _nodes_by_label(dfg, "add#0", "mul#1"), MODEL)
        b = evaluate_cut(dfg, _nodes_by_label(dfg, "mul#1", "xor#2"), MODEL)
        with pytest.raises(RewriteError, match="overlap"):
            rewrite_module(module, [a, b], MODEL)


class TestLiveOutAcrossBlocks:
    # The fused value crosses a block boundary and feeds a loop-carried
    # register, so the copy-back path is exercised.
    IR = """
global out[8]

func f(n):
entry:
  %i = copy 0
  %acc = copy 1
  jmp loop
loop:
  %sq = mul %acc, %acc
  %acc = and %sq, 262143
  %acc = add %acc, %i
  store out[%i] = %acc
  %i = add %i, 1
  %t = slt %i, %n
  br %t, loop, done
done:
  ret %acc
"""

    def test_loop_carried_liveout(self):
        module = parse_module(self.IR)
        func = module.function("f")
        dfgs = function_dfgs(func)
        [loop_dfg] = [d for d in dfgs if d.name.endswith("/loop")]
        cut = evaluate_cut(loop_dfg,
                           _nodes_by_label(loop_dfg, "mul#0", "and#1",
                                           "add#2"), MODEL)
        assert cut.convex
        rewritten = rewrite_module(module, [cut], MODEL)
        assert rewritten.num_instructions == 1
        _run_both(module, rewritten, "f", (8,))

    def test_cycles_accounting_runs(self):
        module = parse_module(self.IR)
        report = run_with_cycles(module, "f", (8,), memory=Memory(module),
                                 model=MODEL)
        assert report.cycles > 0
        assert report.steps > 0

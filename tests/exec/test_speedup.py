"""Tests of the speedup driver, table formatting and CLI verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import SearchLimits
from repro.exec import format_speedup_table, run_speedup


class TestRunSpeedup:
    def test_rows_are_complete_and_consistent(self):
        rows = run_speedup(["fir", "crc32"], nin=4, nout=2, ninstr=8,
                           limits=SearchLimits(max_considered=60_000),
                           n=32)
        assert [r.workload for r in rows] == ["fir", "crc32"]
        for row in rows:
            assert row.identical
            assert row.measured_speedup >= 1.0
            assert row.baseline_cycles > row.ise_cycles > 0
            saved = row.baseline_cycles - row.ise_cycles
            assert saved == pytest.approx(row.total_merit)
            assert row.n == 32

    def test_maxmiso_algorithm(self):
        [row] = run_speedup(["mixer"], algorithm="maxmiso", n=32)
        assert row.identical
        assert row.algorithm == "MaxMISO"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_speedup(["fir"], algorithm="bogus")

    def test_optimal_degrades_per_workload(self):
        # adpcm-encode has a >40-node block: Optimal must yield an n/a
        # row for it and still measure the other workload, like the
        # paper's own Fig. 11 note (and `repro compare`).
        rows = run_speedup(["adpcm-encode", "crc32"],
                           algorithm="optimal", n=32,
                           limits=SearchLimits(max_considered=60_000))
        assert [r.status for r in rows] == ["n/a", "ok"]
        assert "adpcm_encode" in rows[0].error
        assert rows[1].identical and rows[1].measured_speedup >= 1.0
        table = format_speedup_table(rows)
        assert "n/a" in table

    def test_area_algorithm(self):
        [row] = run_speedup(["mixer"], algorithm="area", area_budget=1.5,
                            n=32)
        assert row.identical
        assert row.algorithm.startswith("AreaConstrained")

    def test_table_formatting(self):
        rows = run_speedup(["fir"], ninstr=4, n=32,
                           limits=SearchLimits(max_considered=60_000))
        table = format_speedup_table(rows)
        assert "fir" in table
        assert "bit-exact" in table
        assert "yes" in table


class TestSpeedupCLI:
    def test_speedup_verb(self, capsys):
        code = main(["speedup", "--workloads", "fir", "--n", "32",
                     "--ninstr", "4", "--limit", "60000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fir" in out
        assert "measured" in out

    def test_speedup_json_artifact(self, capsys, tmp_path):
        path = tmp_path / "speedup.json"
        code = main(["speedup", "--workloads", "crc32", "--n", "32",
                     "--limit", "60000", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        [row] = payload["rows"]
        assert row["workload"] == "crc32"
        assert row["identical"] is True
        assert row["measured_speedup"] >= 1.0

    def test_speedup_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--workloads", "nope"])


class TestSweepMeasure:
    def test_sweep_measure_columns(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        code = main(["sweep", "--workloads", "fir", "--ports", "4x2",
                     "--ninstr", "2", "--algos", "iterative",
                     "--n", "16", "--limit", "30000", "--measure",
                     "--quiet", "--csv", str(csv_path)])
        assert code == 0
        header, first = csv_path.read_text().splitlines()[:2]
        assert "measured_speedup" in header
        cells = dict(zip(header.split(","), first.split(",")))
        assert cells["measured_identical"] == "True"
        assert float(cells["measured_speedup"]) >= 1.0

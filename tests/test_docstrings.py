"""pydocstyle-lite: the public API surface must stay documented.

Every module below must carry a module docstring, and every symbol it
exports (``__all__`` when present, else public top-level classes and
functions defined in the module) needs a real docstring — at least one
full sentence, not a stub.  Public methods of exported classes are held
to the same bar.  This runs in CI as part of the tier-1 suite, so a new
export without documentation fails the build.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

#: The enforced public surface (ISSUE 3 satellite): the package root,
#: the selection/exploration/AFU entry points, and the execution layer.
MODULES = [
    "repro",
    "repro.core.selection",
    "repro.explore.runner",
    "repro.afu.simulator",
    "repro.exec",
    "repro.exec.rewrite",
    "repro.exec.cycles",
    "repro.exec.speedup",
    "repro.interp",
    "repro.interp.batch",
    "repro.interp.compile",
    "repro.store",
    "repro.store.backend",
    "repro.store.sqlite",
    "repro.store.net",
    "repro.cluster",
    "repro.cluster.leader",
    "repro.cluster.worker",
    "repro.wire",
    "repro.core.parallel",
    "repro.chaos",
    "repro.chaos.plan",
    "repro.chaos.backend",
    "repro.chaos.wirefault",
    "repro.chaos.runner",
]

#: Anything shorter than this is a label, not documentation.
MIN_DOC = 25


def _exported(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [
            name for name, obj in vars(module).items()
            if not name.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", None) == module.__name__
        ]
    return [(name, getattr(module, name)) for name in names]


def _own_doc(obj) -> str:
    """The object's own docstring (inherited docs don't count for
    classes — a subclass must restate its contract)."""
    if inspect.isclass(obj):
        doc = obj.__dict__.get("__doc__")
    else:
        doc = getattr(obj, "__doc__", None)
    return (doc or "").strip()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    doc = (module.__doc__ or "").strip()
    assert len(doc) >= MIN_DOC, f"{module_name}: missing module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_exported_symbols_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in _exported(module):
        if not (inspect.isclass(obj) or callable(obj)):
            continue        # re-exported constants document themselves
        if len(_own_doc(obj)) < MIN_DOC:
            missing.append(name)
    assert not missing, (
        f"{module_name}: exported symbols without a real docstring: "
        f"{', '.join(sorted(missing))}")


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in _exported(module):
        if not inspect.isclass(obj):
            continue
        for attr, member in vars(obj).items():
            if attr.startswith("_"):
                continue
            if not (inspect.isfunction(member)
                    or isinstance(member, (property, staticmethod,
                                           classmethod))):
                continue
            target = member.fget if isinstance(member, property) else member
            if isinstance(member, (staticmethod, classmethod)):
                target = member.__func__
            if len((getattr(target, "__doc__", None) or "").strip()) < 10:
                missing.append(f"{name}.{attr}")
    assert not missing, (
        f"{module_name}: public methods without docstrings: "
        f"{', '.join(sorted(missing))}")

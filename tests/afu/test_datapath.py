"""Tests for AFU datapath construction and functional equivalence.

The key property: evaluating the generated datapath must agree with
*program-order* execution of the block's instructions — an independent
semantic path that goes through neither the DFG edges nor the netlist
ordering.
"""

from __future__ import annotations

import random

import pytest

from repro.afu import build_datapath, emit_verilog
from repro.core import Constraints, evaluate_cut, find_best_cut
from repro.hwmodel import CostModel
from repro.ir import Opcode, Reg
from repro.passes.constant_folding import evaluate_pure_op

MODEL = CostModel()


def program_order_eval(dfg, cut_nodes, reg_inputs):
    """Execute the cut's instructions in original program order."""
    # Original program order: DFG index order is reverse-topological with
    # later instructions first, so replay members sorted descending.
    regs = dict(reg_inputs)
    for i in sorted(cut_nodes, reverse=True):
        insn = dfg.nodes[i].insns[0]
        values = []
        for op in insn.operands:
            if isinstance(op, Reg):
                values.append(regs[op.name])
            else:
                values.append(op.value)
        result = evaluate_pure_op(insn.opcode, values)
        regs[insn.dest] = result
    return regs


def random_port_values(afu, rng):
    return {p: rng.randint(-(2 ** 31), 2 ** 31 - 1)
            for p in afu.input_ports}


class TestAgainstProgramOrder:
    @pytest.mark.parametrize("constraints", [
        Constraints(2, 1), Constraints(4, 2), Constraints(8, 4),
    ])
    def test_adpcm_cut_equivalence(self, adpcm_decode_app, constraints):
        dfg = adpcm_decode_app.hot_dfg
        res = find_best_cut(dfg, constraints, MODEL)
        assert res.cut is not None
        afu = build_datapath(res.cut, MODEL)
        rng = random.Random(0)
        for _ in range(25):
            # Drive ports; derive the register environment for the
            # program-order replay from the port sources.
            port_values = random_port_values(afu, rng)
            regs = {}
            for port, source in zip(afu.input_ports, afu.input_sources):
                if source[0] == "var":
                    regs[source[1]] = port_values[port]
                else:   # internal producer outside the cut
                    producer = dfg.nodes[source[1]]
                    regs[producer.insns[0].dest] = port_values[port]
            expected_regs = program_order_eval(dfg, res.cut.nodes, regs)
            outputs = afu.evaluate(port_values)
            for port, wire in afu.output_wires.items():
                node_index = int(wire[1:])
                dest = dfg.nodes[node_index].insns[0].dest
                assert outputs[port] == expected_regs[dest]


class TestStructure:
    def test_ports_match_cut_io(self, gsm_app):
        dfg = gsm_app.hot_dfg
        res = find_best_cut(dfg, Constraints(4, 2), MODEL)
        assert res.cut is not None
        afu = build_datapath(res.cut, MODEL)
        assert afu.num_inputs == res.cut.num_inputs
        assert afu.num_outputs == res.cut.num_outputs

    def test_gate_per_node(self, gsm_app):
        dfg = gsm_app.hot_dfg
        res = find_best_cut(dfg, Constraints(4, 2), MODEL)
        afu = build_datapath(res.cut, MODEL)
        assert len(afu.gates) == res.cut.size

    def test_gates_in_dataflow_order(self, adpcm_decode_app):
        res = find_best_cut(adpcm_decode_app.hot_dfg,
                            Constraints(3, 1), MODEL)
        afu = build_datapath(res.cut, MODEL)
        produced = set(afu.input_ports)
        for gate in afu.gates:
            for ref in gate.inputs:
                if isinstance(ref, str):
                    assert ref in produced
            produced.add(gate.output)

    def test_rejects_forbidden_nodes(self, adpcm_decode_app):
        dfg = adpcm_decode_app.hot_dfg
        loads = [i for i in range(dfg.n) if dfg.nodes[i].forbidden]
        assert loads
        cut = evaluate_cut(dfg, {loads[0]}, MODEL)
        with pytest.raises(ValueError):
            build_datapath(cut, MODEL)

    def test_latency_and_area_populated(self, mixer_app):
        res = find_best_cut(mixer_app.hot_dfg, Constraints(4, 2), MODEL)
        afu = build_datapath(res.cut, MODEL)
        assert afu.latency_cycles >= 1
        assert afu.area_mac > 0
        assert afu.critical_path_mac > 0


class TestVerilog:
    def _afu(self, app, constraints=Constraints(4, 2)):
        res = find_best_cut(app.hot_dfg, constraints, MODEL)
        return build_datapath(res.cut, MODEL, name="ise_test")

    def test_module_structure(self, adpcm_decode_app):
        text = emit_verilog(self._afu(adpcm_decode_app))
        assert text.startswith("// Custom instruction")
        assert "module ise_test (" in text
        assert text.rstrip().endswith("endmodule")

    def test_unique_wires(self, adpcm_decode_app):
        text = emit_verilog(self._afu(adpcm_decode_app))
        wires = [line.strip() for line in text.splitlines()
                 if line.strip().startswith("wire")]
        assert len(wires) == len(set(wires))

    def test_ports_declared(self, gsm_app):
        afu = self._afu(gsm_app)
        text = emit_verilog(afu)
        for port in afu.input_ports:
            assert f"input  wire [31:0] {port.replace('.', '_')}" in text
        for port in afu.output_ports:
            assert f"{port.replace('.', '_')}_out" in text

    def test_one_assign_per_gate(self, mixer_app):
        afu = self._afu(mixer_app)
        text = emit_verilog(afu)
        assigns = [line for line in text.splitlines()
                   if line.strip().startswith("assign")]
        assert len(assigns) == len(afu.gates) + len(afu.output_ports)

    def test_select_renders_as_mux(self, adpcm_decode_app):
        afu = self._afu(adpcm_decode_app)
        if any(g.opcode is Opcode.SELECT for g in afu.gates):
            text = emit_verilog(afu)
            assert "?" in text

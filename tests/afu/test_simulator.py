"""Tests for the cycle-approximate AFU simulator."""

from __future__ import annotations

import pytest

from repro.afu import simulate_selection
from repro.core import Constraints, select_iterative
from repro.hwmodel import CostModel
from repro.interp import Memory
from repro.workloads import get_workload

MODEL = CostModel()


def run_sim(app, cuts, n):
    workload = get_workload(app.name)
    memory = Memory(app.module)
    args = workload.driver(memory, n)
    return simulate_selection(app.module, app.entry, args, cuts,
                              MODEL, memory=memory)


class TestBaseline:
    def test_no_cuts_means_no_speedup(self, adpcm_decode_app):
        sim = run_sim(adpcm_decode_app, [], 64)
        assert sim.baseline_cycles == sim.specialized_cycles
        assert sim.speedup == pytest.approx(1.0)

    def test_baseline_scales_with_input(self, adpcm_decode_app):
        small = run_sim(adpcm_decode_app, [], 32)
        large = run_sim(adpcm_decode_app, [], 64)
        assert large.baseline_cycles > small.baseline_cycles


class TestWithCuts:
    def test_cuts_reduce_cycles(self, adpcm_decode_app):
        cons = Constraints(nin=4, nout=2, ninstr=4)
        sel = select_iterative(adpcm_decode_app.dfgs, cons, MODEL)
        sim = run_sim(adpcm_decode_app, sel.cuts, 64)
        assert sim.specialized_cycles < sim.baseline_cycles
        assert sim.speedup > 1.2

    def test_dynamic_matches_static_on_profiled_blocks(
            self, adpcm_decode_app):
        """On the same input as profiling, the simulator's saved cycles
        equal the selection's total merit exactly (the static model *is*
        profile x per-block cost)."""
        cons = Constraints(nin=4, nout=2, ninstr=4)
        sel = select_iterative(adpcm_decode_app.dfgs, cons, MODEL)
        sim = run_sim(adpcm_decode_app, sel.cuts, 64)
        saved = sim.baseline_cycles - sim.specialized_cycles
        assert saved == pytest.approx(sel.total_merit)

    def test_speedup_generalizes_to_other_inputs(self, adpcm_decode_app):
        cons = Constraints(nin=4, nout=2, ninstr=4)
        sel = select_iterative(adpcm_decode_app.dfgs, cons, MODEL)
        sim = run_sim(adpcm_decode_app, sel.cuts, 128)   # 2x profile size
        assert sim.speedup > 1.2

    def test_more_instructions_never_slower(self, gsm_app):
        speedups = []
        for ninstr in (1, 2, 4):
            cons = Constraints(nin=4, nout=2, ninstr=ninstr)
            sel = select_iterative(gsm_app.dfgs, cons, MODEL)
            sim = run_sim(gsm_app, sel.cuts, 32)
            speedups.append(sim.speedup)
        assert speedups == sorted(speedups)

"""Tests for schedule legality — the operational meaning of convexity."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.afu.schedule import cut_is_schedulable, schedule_with_cuts
from repro.core import Constraints, SearchLimits, select_iterative
from repro.hwmodel import CostModel
from repro.ir.synth import make_dfg, paper_figure4_dfg, random_dag_dfg
from repro.ir.opcodes import Opcode

MODEL = CostModel()


class TestFigure4Argument:
    """The paper's Fig. 4: collapsing the non-convex cut {0,1,3} leaves
    no feasible schedule; the convex repairs all schedule fine."""

    def test_nonconvex_cut_unschedulable(self):
        dfg = paper_figure4_dfg()
        assert not cut_is_schedulable(dfg, {0, 1, 3})

    @pytest.mark.parametrize("cut", [
        {0, 1, 2, 3},   # include node 2
        {1, 3},          # remove node 0
        {0, 1},          # remove node 3
    ])
    def test_repaired_cuts_schedulable(self, cut):
        dfg = paper_figure4_dfg()
        assert cut_is_schedulable(dfg, cut)


class TestSchedule:
    def test_empty_cut_list(self):
        dfg = make_dfg([Opcode.ADD, Opcode.MUL], [(0, 1)], live_out=[1])
        schedule = schedule_with_cuts(dfg)
        assert len(schedule) == 2

    def test_respects_dependences(self):
        rng = random.Random(1)
        dfg = random_dag_dfg(10, rng, edge_prob=0.4)
        schedule = schedule_with_cuts(dfg)
        position = {}
        for slot in schedule:
            for node in slot.nodes:
                position[node] = slot.step
        for producer in range(dfg.n):
            for consumer in dfg.succs[producer]:
                assert position[producer] < position[consumer]

    def test_cut_becomes_one_slot(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD, Opcode.XOR],
                       [(0, 1), (1, 2)], live_out=[2])
        chain = [n.index for n in dfg.nodes]
        schedule = schedule_with_cuts(dfg, [chain])
        assert len(schedule) == 1
        assert schedule[0].is_cut

    def test_overlapping_cuts_rejected(self):
        dfg = make_dfg([Opcode.MUL, Opcode.ADD], [(0, 1)], live_out=[1])
        with pytest.raises(ValueError):
            schedule_with_cuts(dfg, [{0, 1}, {1}])


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(2, 10))
def test_schedulability_equals_convexity(seed, n):
    """For single cuts, the scheduler's verdict must coincide with the
    DFG convexity predicate on every random subset."""
    rng = random.Random(seed)
    dfg = random_dag_dfg(n, rng, edge_prob=0.4)
    for _ in range(8):
        cut = {i for i in range(n) if rng.random() < 0.5}
        if not cut:
            continue
        assert cut_is_schedulable(dfg, cut) == dfg.is_convex(cut)


class TestSelectedCutsSchedule:
    def test_iterative_selection_is_schedulable(self, adpcm_decode_app):
        """Everything the selection returns must schedule together."""
        cons = Constraints(nin=4, nout=2, ninstr=4)
        result = select_iterative(adpcm_decode_app.dfgs, cons, MODEL,
                                  SearchLimits(max_considered=400_000))
        # Group the cuts by their (collapsed) source block: schedule each
        # block's original DFG with the nodes mapped back by instruction
        # identity.
        by_block = {}
        for cut in result.cuts:
            by_block.setdefault(cut.dfg.name, []).append(cut)
        for name, cuts in by_block.items():
            original = next(d for d in adpcm_decode_app.dfgs
                            if d.name == name)
            insn_to_node = {
                id(node.insns[0]): node.index
                for node in original.nodes if len(node.insns) == 1
            }
            mapped = []
            for cut in cuts:
                nodes = set()
                for i in cut.nodes:
                    for insn in cut.dfg.nodes[i].insns:
                        nodes.add(insn_to_node[id(insn)])
                mapped.append(nodes)
            schedule_with_cuts(original, mapped)   # must not raise

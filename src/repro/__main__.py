"""``python -m repro`` — the same entry point as the ``repro`` script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

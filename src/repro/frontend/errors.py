"""Diagnostics for the MiniC frontend."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for all frontend errors; carries source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(MiniCError):
    """Invalid character or malformed literal."""


class ParseError(MiniCError):
    """Syntax error."""


class SemanticError(MiniCError):
    """Name/type/arity error found by semantic analysis."""

"""MiniC frontend: lexer, parser, semantic analysis and IR generation."""

from .errors import LexError, MiniCError, ParseError, SemanticError
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse
from .sema import FunctionSignature, SymbolTable, analyze
from .irgen import compile_source, lower_program

__all__ = [
    "MiniCError", "LexError", "ParseError", "SemanticError",
    "tokenize", "Lexer", "Token", "TokenKind",
    "parse", "Parser",
    "analyze", "SymbolTable", "FunctionSignature",
    "compile_source", "lower_program",
]

"""Tokeniser for MiniC, the C subset the workloads are written in.

MiniC keeps exactly what the MediaBench-style kernels need: ``int`` scalars
and arrays, functions, ``if``/``else``/``while``/``for``, the full C
integer expression grammar (including ``?:``, ``&&``, ``||`` and compound
assignments) and decimal/hex/char literals.  No pointers, no structs, no
floating point — the paper's AFUs are integer datapaths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .errors import LexError


class TokenKind(enum.Enum):
    INT_LIT = "int_lit"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "void", "if", "else", "while", "for", "return", "break",
    "continue",
})

# Longest first so maximal munch works with simple linear probing.
PUNCTUATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int = 0          # for INT_LIT
    line: int = 0
    column: int = 0

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind.value} {self.text!r} @{self.line}:{self.column}>"


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
}


class Lexer:
    """Single-pass tokeniser with line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexError("unterminated block comment",
                                       start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    # ------------------------------------------------------------------
    def _lex_number(self) -> Token:
        line, col = self.line, self.column
        text = ""
        if self._peek() == "0" and self._peek(1) in "xX":
            text = self._peek() + self._peek(1)
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._peek()
                self._advance()
            if len(text) == 2:
                raise LexError("malformed hex literal", line, col)
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                text += self._peek()
                self._advance()
            value = int(text, 10)
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(f"invalid suffix on literal {text!r}",
                           line, col)
        return Token(TokenKind.INT_LIT, text, value, line, col)

    def _lex_char(self) -> Token:
        line, col = self.line, self.column
        self._advance()  # opening quote
        ch = self._peek()
        if not ch:
            raise LexError("unterminated character literal", line, col)
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape \\{esc}", line, col)
            value = _ESCAPES[esc]
            self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", line, col)
        self._advance()
        return Token(TokenKind.INT_LIT, f"'{ch}'", value, line, col)

    def _lex_word(self) -> Token:
        line, col = self.line, self.column
        text = ""
        while self._peek().isalnum() or self._peek() == "_":
            text += self._peek()
            self._advance()
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, 0, line, col)

    def _lex_punct(self) -> Token:
        line, col = self.line, self.column
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, 0, line, col)
        raise LexError(f"unexpected character {self._peek()!r}", line, col)

    # ------------------------------------------------------------------
    def tokens(self) -> List[Token]:
        """Tokenise the whole source, ending with an EOF token."""
        result: List[Token] = []
        while True:
            self._skip_trivia()
            ch = self._peek()
            if not ch:
                result.append(Token(TokenKind.EOF, "", 0,
                                    self.line, self.column))
                return result
            if ch.isdigit():
                result.append(self._lex_number())
            elif ch == "'":
                result.append(self._lex_char())
            elif ch.isalpha() or ch == "_":
                result.append(self._lex_word())
            else:
                result.append(self._lex_punct())


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenise *source* into a list."""
    return Lexer(source).tokens()

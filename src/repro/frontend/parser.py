"""Recursive-descent parser for MiniC.

Grammar (informal):

    program   := (global | function)*
    global    := 'int' IDENT ('[' const ']')? ('=' ginit)? ';'
    ginit     := const | '{' const (',' const)* ','? '}'
    function  := ('int'|'void') IDENT '(' params? ')' block
    params    := 'int' IDENT (',' 'int' IDENT)*
    block     := '{' stmt* '}'
    stmt      := block | decl | if | while | for | return | break ';'
               | continue ';' | exprstmt
    decl      := 'int' IDENT ('=' expr)? (',' IDENT ('=' expr)?)* ';'
    exprstmt  := assignment-or-expression ';'

Expressions use standard C precedence; compound assignments and ``++``/
``--`` statements are desugared into plain assignments here, so the rest
of the pipeline only sees simple ``Assign`` nodes.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize

# Binary operator precedence, tighter binds higher.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing.
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise ParseError(f"expected {text!r}, found {self.current.text!r}",
                             self.current.line, self.current.column)
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {self.current.text!r}",
                             self.current.line, self.current.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {self.current.text!r}",
                self.current.line, self.current.column)
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while self.current.kind is not TokenKind.EOF:
            if self.current.is_keyword("int") or self.current.is_keyword(
                    "void"):
                self._parse_top_decl(program)
            else:
                raise ParseError(
                    f"expected declaration, found {self.current.text!r}",
                    self.current.line, self.current.column)
        return program

    def _parse_top_decl(self, program: ast.Program) -> None:
        type_tok = self._advance()          # 'int' or 'void'
        returns_value = type_tok.text == "int"
        name_tok = self._expect_ident()
        if self.current.is_punct("("):
            program.functions.append(
                self._parse_function(name_tok, returns_value))
            return
        if not returns_value:
            raise ParseError("void is only valid for functions",
                             type_tok.line, type_tok.column)
        program.globals.append(self._parse_global(name_tok))

    def _parse_global(self, name_tok: Token) -> ast.GlobalDecl:
        decl = ast.GlobalDecl(line=name_tok.line, name=name_tok.text)
        if self._accept_punct("["):
            decl.size = self._parse_const_int()
            self._expect_punct("]")
        if self._accept_punct("="):
            if self._accept_punct("{"):
                values = [self._parse_const_int()]
                while self._accept_punct(","):
                    if self.current.is_punct("}"):
                        break               # trailing comma
                    values.append(self._parse_const_int())
                self._expect_punct("}")
                decl.init = values
            else:
                decl.init = [self._parse_const_int()]
        self._expect_punct(";")
        return decl

    def _parse_const_int(self) -> int:
        negative = False
        while True:
            if self._accept_punct("-"):
                negative = not negative
            elif self._accept_punct("+"):
                pass
            else:
                break
        tok = self.current
        if tok.kind is not TokenKind.INT_LIT:
            raise ParseError(
                f"expected integer constant, found {tok.text!r}",
                tok.line, tok.column)
        self._advance()
        return -tok.value if negative else tok.value

    def _parse_function(self, name_tok: Token,
                        returns_value: bool) -> ast.FuncDef:
        func = ast.FuncDef(line=name_tok.line, name=name_tok.text,
                           returns_value=returns_value)
        self._expect_punct("(")
        if not self.current.is_punct(")"):
            if self.current.is_keyword("void") and \
                    self.tokens[self.pos + 1].is_punct(")"):
                self._advance()
            else:
                while True:
                    self._expect_keyword("int")
                    param_tok = self._expect_ident()
                    func.params.append(ast.Param(line=param_tok.line,
                                                 name=param_tok.text))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        func.body = self._parse_block()
        return func

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{")
        block = ast.Block(line=open_tok.line)
        while not self.current.is_punct("}"):
            if self.current.kind is TokenKind.EOF:
                raise ParseError("unterminated block",
                                 open_tok.line, open_tok.column)
            block.statements.append(self._parse_statement())
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        tok = self.current
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("int"):
            return self._parse_decl()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self.current.is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(line=tok.line, value=value)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(line=tok.line)
        stmt = self._parse_simple_statement()
        self._expect_punct(";")
        return stmt

    def _parse_decl(self) -> ast.Block:
        """One ``int a = e, b;`` line, normalised to a block of Decls."""
        int_tok = self._expect_keyword("int")
        block = ast.Block(line=int_tok.line)
        while True:
            name_tok = self._expect_ident()
            init = None
            if self._accept_punct("="):
                init = self._parse_expression()
            block.statements.append(
                ast.Decl(line=name_tok.line, name=name_tok.text, init=init))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(block.statements) == 1:
            return block.statements[0]
        return block

    def _parse_if(self) -> ast.If:
        if_tok = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_body = self._as_block(self._parse_statement())
        else_body = None
        if self.current.is_keyword("else"):
            self._advance()
            else_body = self._as_block(self._parse_statement())
        return ast.If(line=if_tok.line, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _parse_while(self) -> ast.While:
        while_tok = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.While(line=while_tok.line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        for_tok = self._expect_keyword("for")
        self._expect_punct("(")
        init = None
        if not self.current.is_punct(";"):
            if self.current.is_keyword("int"):
                init = self._parse_decl()
                # _parse_decl consumed the ';'
            else:
                init = self._parse_simple_statement()
                self._expect_punct(";")
        else:
            self._expect_punct(";")
        cond = None
        if not self.current.is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self.current.is_punct(")"):
            step = self._parse_simple_statement()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.For(line=for_tok.line, init=init, cond=cond, step=step,
                       body=body)

    @staticmethod
    def _as_block(stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(line=stmt.line, statements=[stmt])

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or bare expression."""
        start = self.pos
        expr = self._parse_expression()
        tok = self.current
        if tok.is_punct("="):
            self._advance()
            value = self._parse_expression()
            return ast.Assign(line=tok.line,
                              target=self._check_lvalue(expr, tok),
                              value=value)
        if tok.kind is TokenKind.PUNCT and tok.text in _COMPOUND_OPS:
            self._advance()
            rhs = self._parse_expression()
            target = self._check_lvalue(expr, tok)
            combined = ast.Binary(line=tok.line, op=_COMPOUND_OPS[tok.text],
                                  left=self._reload(target), right=rhs)
            return ast.Assign(line=tok.line, target=target, value=combined)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._advance()
            target = self._check_lvalue(expr, tok)
            op = "+" if tok.text == "++" else "-"
            combined = ast.Binary(line=tok.line, op=op,
                                  left=self._reload(target),
                                  right=ast.IntLit(line=tok.line, value=1))
            return ast.Assign(line=tok.line, target=target, value=combined)
        return ast.ExprStmt(line=self.tokens[start].line, expr=expr)

    @staticmethod
    def _check_lvalue(expr: ast.Expr, tok: Token):
        if isinstance(expr, (ast.Name, ast.Index)):
            return expr
        raise ParseError("assignment target must be a variable or an array "
                         "element", tok.line, tok.column)

    @staticmethod
    def _reload(target):
        """A fresh read of an lvalue, for compound-assignment desugaring."""
        if isinstance(target, ast.Name):
            return ast.Name(line=target.line, ident=target.ident)
        return ast.Index(line=target.line, array=target.array,
                         index=target.index)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing).
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept_punct("?"):
            if_true = self._parse_expression()
            self._expect_punct(":")
            if_false = self._parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond,
                               if_true=if_true, if_false=if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.current
            if tok.kind is not TokenKind.PUNCT:
                return left
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line=tok.line, op=tok.text,
                              left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "~", "!", "+"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.current.is_punct("["):
                if not isinstance(expr, ast.Name):
                    raise ParseError("only named arrays can be indexed",
                                     self.current.line, self.current.column)
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(line=expr.line, array=expr.ident,
                                 index=index)
            elif self.current.is_punct("("):
                if not isinstance(expr, ast.Name):
                    raise ParseError("call target must be a function name",
                                     self.current.line, self.current.column)
                self._advance()
                args: List[ast.Expr] = []
                if not self.current.is_punct(")"):
                    args.append(self._parse_expression())
                    while self._accept_punct(","):
                        args.append(self._parse_expression())
                self._expect_punct(")")
                expr = ast.Call(line=expr.line, callee=expr.ident, args=args)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Name(line=tok.line, ident=tok.text)
        if tok.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}",
                         tok.line, tok.column)


def parse(source: str) -> ast.Program:
    """Parse MiniC *source* into an AST."""
    return Parser(tokenize(source)).parse_program()

"""Abstract syntax tree for MiniC.

Plain dataclasses; every node carries its source line for diagnostics.
The tree intentionally mirrors C's expression/statement split so the
semantic checker and IR generator stay textbook-simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass
class Node:
    line: int = 0


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class Index(Node):
    """``array[index]`` — MiniC arrays are global, one-dimensional."""

    array: str = ""
    index: "Expr" = None


@dataclass
class Unary(Node):
    """Operators ``- ~ !``."""

    op: str = ""
    operand: "Expr" = None


@dataclass
class Binary(Node):
    """All C binary integer operators, plus short-circuit ``&&``/``||``."""

    op: str = ""
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class Ternary(Node):
    cond: "Expr" = None
    if_true: "Expr" = None
    if_false: "Expr" = None


@dataclass
class Call(Node):
    callee: str = ""
    args: List["Expr"] = field(default_factory=list)


Expr = Union[IntLit, Name, Index, Unary, Binary, Ternary, Call]


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
@dataclass
class Block(Node):
    statements: List["Stmt"] = field(default_factory=list)


@dataclass
class Decl(Node):
    """Local declaration ``int x;`` / ``int x = e;``."""

    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Node):
    """``target = value`` where target is a Name or an Index.

    Compound assignments (``+=`` etc.) are desugared by the parser.
    """

    target: Union[Name, Index] = None
    value: Expr = None


@dataclass
class ExprStmt(Node):
    expr: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then_body: Block = None
    else_body: Optional[Block] = None


@dataclass
class While(Node):
    cond: Expr = None
    body: Block = None


@dataclass
class For(Node):
    """``for (init; cond; step) body`` — init/step are statements or None;
    cond may be None (infinite loop)."""

    init: Optional["Stmt"] = None
    cond: Optional[Expr] = None
    step: Optional["Stmt"] = None
    body: Block = None


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


Stmt = Union[Block, Decl, Assign, ExprStmt, If, While, For, Return,
             Break, Continue]


# ----------------------------------------------------------------------
# Top level.
# ----------------------------------------------------------------------
@dataclass
class GlobalDecl(Node):
    """``int g;`` / ``int g = 3;`` / ``int a[8] = {...};`` at file scope."""

    name: str = ""
    size: Optional[int] = None            # None => scalar
    init: Optional[List[int]] = None


@dataclass
class Param(Node):
    name: str = ""


@dataclass
class FuncDef(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None
    returns_value: bool = True            # False for ``void``


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

"""Semantic analysis for MiniC.

Everything is a 32-bit ``int``, so "type checking" reduces to shape rules:

* names must be declared before use (params, locals, global scalars);
* indexing is only valid on global arrays, and arrays are only valid when
  indexed (no array-to-pointer decay);
* calls must target a defined function with matching arity; calls to
  ``void`` functions cannot be used as values;
* functions declared ``int`` must return a value on every ``return``;
* ``break``/``continue`` must be inside a loop;
* local names may shadow globals but not be redeclared in the same scope.

The checker also annotates the program with a :class:`SymbolTable` the IR
generator consumes, avoiding a second resolution pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from . import ast_nodes as ast
from .errors import SemanticError


@dataclass
class FunctionSignature:
    name: str
    num_params: int
    returns_value: bool


@dataclass
class SymbolTable:
    """Resolved global information of a program."""

    scalars: Set[str] = field(default_factory=set)
    arrays: Dict[str, int] = field(default_factory=dict)   # name -> size
    functions: Dict[str, FunctionSignature] = field(default_factory=dict)


class _FunctionChecker:
    def __init__(self, symbols: SymbolTable, func: ast.FuncDef) -> None:
        self.symbols = symbols
        self.func = func
        self.scopes: List[Set[str]] = [set(p.name for p in func.params)]
        if len(self.scopes[0]) != len(func.params):
            raise SemanticError(f"duplicate parameter in {func.name}",
                                func.line)
        self.loop_depth = 0

    # ------------------------------------------------------------------
    def _declared(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _declare(self, name: str, line: int) -> None:
        if name in self.scopes[-1]:
            raise SemanticError(f"redeclaration of {name!r}", line)
        if name in self.symbols.arrays:
            raise SemanticError(
                f"local {name!r} shadows a global array", line)
        self.scopes[-1].add(name)

    # ------------------------------------------------------------------
    def check(self) -> None:
        self._check_block(self.func.body, new_scope=False)

    def _check_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append(set())
        for stmt in block.statements:
            self._check_stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                self._check_expr(stmt.init)
            self._declare(stmt.name, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value)
            self._check_assign_target(stmt.target)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, allow_void_call=True)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_block(stmt.then_body)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self.loop_depth += 1
            self._check_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.scopes.append(set())
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            self.loop_depth += 1
            self._check_block(stmt.body)
            self.loop_depth -= 1
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if not self.func.returns_value:
                    raise SemanticError(
                        f"void function {self.func.name!r} returns a value",
                        stmt.line)
                self._check_expr(stmt.value)
            elif self.func.returns_value:
                raise SemanticError(
                    f"function {self.func.name!r} must return a value",
                    stmt.line)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise SemanticError("break outside a loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise SemanticError("continue outside a loop", stmt.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {stmt!r}", stmt.line)

    def _check_assign_target(self, target) -> None:
        if isinstance(target, ast.Name):
            name = target.ident
            if self._declared(name) or name in self.symbols.scalars:
                return
            if name in self.symbols.arrays:
                raise SemanticError(
                    f"cannot assign to array {name!r} without an index",
                    target.line)
            raise SemanticError(f"assignment to undeclared {name!r}",
                                target.line)
        elif isinstance(target, ast.Index):
            self._check_index(target)
        else:  # pragma: no cover - parser enforces lvalue shapes
            raise SemanticError("invalid assignment target", target.line)

    def _check_index(self, expr: ast.Index) -> None:
        if expr.array not in self.symbols.arrays:
            raise SemanticError(f"{expr.array!r} is not a global array",
                                expr.line)
        self._check_expr(expr.index)

    def _check_expr(self, expr: ast.Expr,
                    allow_void_call: bool = False) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Name):
            name = expr.ident
            if self._declared(name) or name in self.symbols.scalars:
                return
            if name in self.symbols.arrays:
                raise SemanticError(
                    f"array {name!r} used without an index", expr.line)
            raise SemanticError(f"use of undeclared {name!r}", expr.line)
        if isinstance(expr, ast.Index):
            self._check_index(expr)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.cond)
            self._check_expr(expr.if_true)
            self._check_expr(expr.if_false)
            return
        if isinstance(expr, ast.Call):
            sig = self.symbols.functions.get(expr.callee)
            if sig is None:
                raise SemanticError(f"call to unknown function "
                                    f"{expr.callee!r}", expr.line)
            if len(expr.args) != sig.num_params:
                raise SemanticError(
                    f"{expr.callee!r} expects {sig.num_params} argument(s), "
                    f"got {len(expr.args)}", expr.line)
            if not sig.returns_value and not allow_void_call:
                raise SemanticError(
                    f"void function {expr.callee!r} used as a value",
                    expr.line)
            for arg in expr.args:
                self._check_expr(arg)
            return
        raise SemanticError(f"unknown expression {expr!r}",
                            getattr(expr, "line", 0))


def analyze(program: ast.Program) -> SymbolTable:
    """Check *program*; return its symbol table.

    Raises :class:`SemanticError` on the first problem found.
    """
    symbols = SymbolTable()
    for decl in program.globals:
        if decl.name in symbols.scalars or decl.name in symbols.arrays:
            raise SemanticError(f"redefinition of global {decl.name!r}",
                                decl.line)
        if decl.size is None:
            symbols.scalars.add(decl.name)
        else:
            if decl.size <= 0:
                raise SemanticError(f"array {decl.name!r} must have "
                                    f"positive size", decl.line)
            if decl.init is not None and len(decl.init) > decl.size:
                raise SemanticError(
                    f"too many initialisers for {decl.name!r}", decl.line)
            symbols.arrays[decl.name] = decl.size

    for func in program.functions:
        if func.name in symbols.functions:
            raise SemanticError(f"redefinition of function {func.name!r}",
                                func.line)
        if (func.name in symbols.scalars
                or func.name in symbols.arrays):
            raise SemanticError(
                f"function {func.name!r} collides with a global", func.line)
        symbols.functions[func.name] = FunctionSignature(
            name=func.name,
            num_params=len(func.params),
            returns_value=func.returns_value,
        )

    for func in program.functions:
        _FunctionChecker(symbols, func).check()
    return symbols

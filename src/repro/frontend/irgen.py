"""Lowering from the MiniC AST to the repro IR.

Deliberately simple, non-SSA lowering: every source variable becomes one
virtual register (uniquified across shadowing scopes), every expression
produces a fresh temporary, and all control flow becomes explicit basic
blocks.  Cleanup (copy propagation, constant folding, DCE, CFG
simplification, if-conversion) happens in :mod:`repro.passes`.

Short-circuit ``&&``/``||`` and ``?:`` lower to control-flow diamonds; the
if-conversion pass later turns the pure ones into ``SELECT`` dataflow, which
is what produces the big select-rich basic blocks of the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    BasicBlock,
    Const,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Opcode,
    Operand,
    Reg,
    binop,
    br,
    call,
    copy_reg,
    jmp,
    load,
    ret,
    store,
    unop,
)
from . import ast_nodes as ast
from .errors import SemanticError
from .parser import parse
from .sema import SymbolTable, analyze

_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.ASHR,      # MiniC ints are signed; >> is arithmetic
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.SLT,
    "<=": Opcode.SLE,
    ">": Opcode.SGT,
    ">=": Opcode.SGE,
}


class _FunctionLowering:
    def __init__(self, module: Module, symbols: SymbolTable,
                 func_ast: ast.FuncDef) -> None:
        self.module = module
        self.symbols = symbols
        self.func_ast = func_ast
        self.func = Function(func_ast.name,
                             params=[p.name for p in func_ast.params])
        self.current = self.func.add_block("entry")
        # Scope stack: source name -> register name.
        self.scopes: List[Dict[str, str]] = [
            {p.name: p.name for p in func_ast.params}
        ]
        self.loop_stack: List[Tuple[str, str]] = []   # (continue, break)
        self._version: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def _emit(self, insn: Instruction) -> Instruction:
        return self.current.append(insn)

    def _temp(self) -> str:
        return self.func.new_temp(".t")

    def _switch_to(self, block: BasicBlock) -> None:
        self.current = block

    def _terminate_with_jump(self, label: str) -> None:
        if not self.current.is_terminated:
            self._emit(jmp(label))

    def _lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare_local(self, name: str) -> str:
        version = self._version.get(name, 0)
        self._version[name] = version + 1
        reg = name if version == 0 else f"{name}.{version}"
        self.scopes[-1][name] = reg
        return reg

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.Name):
            reg = self._lookup(expr.ident)
            if reg is not None:
                return Reg(reg)
            # Global scalar: load slot 0.
            dest = self._temp()
            self._emit(load(dest, expr.ident, Const(0)))
            return Reg(dest)
        if isinstance(expr, ast.Index):
            index = self.lower_expr(expr.index)
            dest = self._temp()
            self._emit(load(dest, expr.array, index))
            return Reg(dest)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value=True)
        raise SemanticError(f"cannot lower expression {expr!r}",
                            getattr(expr, "line", 0))

    def _lower_unary(self, expr: ast.Unary) -> Operand:
        operand = self.lower_expr(expr.operand)
        dest = self._temp()
        if expr.op == "-":
            self._emit(unop(Opcode.NEG, dest, operand))
        elif expr.op == "~":
            self._emit(unop(Opcode.NOT, dest, operand))
        elif expr.op == "!":
            self._emit(binop(Opcode.EQ, dest, operand, Const(0)))
        else:  # pragma: no cover - parser filters operators
            raise SemanticError(f"unknown unary {expr.op!r}", expr.line)
        return Reg(dest)

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        opcode = _BINOP_OPCODES.get(expr.op)
        if opcode is None:  # pragma: no cover - parser filters operators
            raise SemanticError(f"unknown operator {expr.op!r}", expr.line)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        dest = self._temp()
        self._emit(binop(opcode, dest, left, right))
        return Reg(dest)

    def _lower_short_circuit(self, expr: ast.Binary) -> Operand:
        """``a && b`` / ``a || b`` with proper short-circuit control flow."""
        result = self._temp()
        left = self.lower_expr(expr.left)
        rhs_block = self.func.add_block(self.func.new_label("sc_rhs"))
        done_block = self.func.add_block(self.func.new_label("sc_done"))
        if expr.op == "&&":
            self._emit(copy_reg(result, Const(0)))
            self._emit(br(left, rhs_block.label, done_block.label))
        else:
            self._emit(copy_reg(result, Const(1)))
            self._emit(br(left, done_block.label, rhs_block.label))
        self._switch_to(rhs_block)
        right = self.lower_expr(expr.right)
        self._emit(binop(Opcode.NE, result, right, Const(0)))
        self._emit(jmp(done_block.label))
        self._switch_to(done_block)
        return Reg(result)

    def _lower_ternary(self, expr: ast.Ternary) -> Operand:
        result = self._temp()
        cond = self.lower_expr(expr.cond)
        then_block = self.func.add_block(self.func.new_label("tern_t"))
        else_block = self.func.add_block(self.func.new_label("tern_f"))
        done_block = self.func.add_block(self.func.new_label("tern_done"))
        self._emit(br(cond, then_block.label, else_block.label))
        self._switch_to(then_block)
        value_t = self.lower_expr(expr.if_true)
        self._emit(copy_reg(result, value_t))
        self._terminate_with_jump(done_block.label)
        self._switch_to(else_block)
        value_f = self.lower_expr(expr.if_false)
        self._emit(copy_reg(result, value_f))
        self._terminate_with_jump(done_block.label)
        self._switch_to(done_block)
        return Reg(result)

    def _lower_call(self, expr: ast.Call, want_value: bool) -> Operand:
        args = [self.lower_expr(a) for a in expr.args]
        sig = self.symbols.functions[expr.callee]
        dest = self._temp() if sig.returns_value else None
        self._emit(call(dest, expr.callee, args))
        if want_value and dest is not None:
            return Reg(dest)
        return Const(0)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.statements:
                self.lower_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.Decl):
            value = (self.lower_expr(stmt.init)
                     if stmt.init is not None else Const(0))
            reg = self._declare_local(stmt.name)
            self._emit(copy_reg(reg, value))
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                self._lower_call(stmt.expr, want_value=False)
            else:
                self.lower_expr(stmt.expr)   # value dropped; DCE cleans up
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._emit(ret(self.lower_expr(stmt.value)))
            else:
                self._emit(ret())
            self._switch_to(self.func.add_block(
                self.func.new_label("dead")))
        elif isinstance(stmt, ast.Break):
            self._emit(jmp(self.loop_stack[-1][1]))
            self._switch_to(self.func.add_block(
                self.func.new_label("dead")))
        elif isinstance(stmt, ast.Continue):
            self._emit(jmp(self.loop_stack[-1][0]))
            self._switch_to(self.func.add_block(
                self.func.new_label("dead")))
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"cannot lower statement {stmt!r}",
                                stmt.line)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        value = self.lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            reg = self._lookup(target.ident)
            if reg is not None:
                self._emit(copy_reg(reg, value))
            else:
                # Global scalar.
                self._emit(store(target.ident, Const(0), value))
        else:
            index = self.lower_expr(target.index)
            self._emit(store(target.array, index, value))

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.func.add_block(self.func.new_label("if_t"))
        done_block = self.func.add_block(self.func.new_label("if_done"))
        if stmt.else_body is not None:
            else_block = self.func.add_block(self.func.new_label("if_f"))
            self._emit(br(cond, then_block.label, else_block.label))
        else:
            self._emit(br(cond, then_block.label, done_block.label))
        self._switch_to(then_block)
        self.lower_stmt(stmt.then_body)
        self._terminate_with_jump(done_block.label)
        if stmt.else_body is not None:
            self._switch_to(else_block)
            self.lower_stmt(stmt.else_body)
            self._terminate_with_jump(done_block.label)
        self._switch_to(done_block)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.func.add_block(self.func.new_label("loop_head"))
        body = self.func.add_block(self.func.new_label("loop_body"))
        exit_block = self.func.add_block(self.func.new_label("loop_exit"))
        self._terminate_with_jump(head.label)
        self._switch_to(head)
        cond = self.lower_expr(stmt.cond)
        self._emit(br(cond, body.label, exit_block.label))
        self._switch_to(body)
        self.loop_stack.append((head.label, exit_block.label))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self._terminate_with_jump(head.label)
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.func.add_block(self.func.new_label("for_head"))
        body = self.func.add_block(self.func.new_label("for_body"))
        step = self.func.add_block(self.func.new_label("for_step"))
        exit_block = self.func.add_block(self.func.new_label("for_exit"))
        self._terminate_with_jump(head.label)
        self._switch_to(head)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self._emit(br(cond, body.label, exit_block.label))
        else:
            self._emit(jmp(body.label))
        self._switch_to(body)
        self.loop_stack.append((step.label, exit_block.label))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self._terminate_with_jump(step.label)
        self._switch_to(step)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self._terminate_with_jump(head.label)
        self._switch_to(exit_block)
        self.scopes.pop()

    # ------------------------------------------------------------------
    def lower(self) -> Function:
        self.lower_stmt(self.func_ast.body)
        if not self.current.is_terminated:
            if self.func_ast.returns_value:
                self._emit(ret(Const(0)))
            else:
                self._emit(ret())
        return self.func


def lower_program(program: ast.Program,
                  symbols: Optional[SymbolTable] = None,
                  name: str = "module") -> Module:
    """Lower a checked AST into an IR module."""
    if symbols is None:
        symbols = analyze(program)
    module = Module(name)
    for decl in program.globals:
        size = decl.size if decl.size is not None else 1
        module.add_global(GlobalArray(decl.name, size, decl.init))
    for func_ast in program.functions:
        module.add_function(
            _FunctionLowering(module, symbols, func_ast).lower())
    return module


def compile_source(source: str, name: str = "module") -> Module:
    """Parse, check and lower MiniC *source* into an (unoptimised) IR
    module.  Most callers will follow with
    :func:`repro.passes.optimize_module`."""
    program = parse(source)
    symbols = analyze(program)
    return lower_program(program, symbols, name)

"""The merit function ``M(S)`` of the paper (Section 7).

For a cut ``S`` of a basic block executed ``freq`` times:

* software cost: sum of the per-operation execution-stage cycles;
* hardware cost: ``ceil`` of the hardware critical path of the cut (the
  longest delay path through its operators, normalised to a MAC); for a
  disconnected cut this is the maximum over its connected components,
  because the components evaluate in parallel inside one AFU;
* ``M(S) = freq * (sw_cycles - ceil(hw_critical_path))``.

This module provides reference (non-incremental) evaluation used for
verification, reporting and the baselines.  The exact search re-derives the
same quantities incrementally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

from ..ir.dfg import DataFlowGraph
from .latency import CostModel


def cut_software_cycles(dfg: DataFlowGraph, cut: Iterable[int],
                        model: CostModel) -> float:
    """Total execution-stage cycles of the cut's operations in software."""
    return sum(model.sw(dfg.nodes[i]) for i in cut)


def cut_hardware_critical_path(dfg: DataFlowGraph, cut: Iterable[int],
                               model: CostModel) -> float:
    """Longest hardware delay path through the cut (MAC units).

    Works on any subset of nodes: paths only follow edges internal to the
    cut.  Empty cut has critical path 0.
    """
    members = sorted(set(cut))          # lower index = consumer
    member_set = set(members)
    longest: Dict[int, float] = {}
    # Process consumers first (ascending index): longest path *from* a node
    # to any sink of the cut.
    for i in members:
        best_succ = 0.0
        for s in dfg.succs[i]:
            if s in member_set:
                best_succ = max(best_succ, longest[s])
        longest[i] = model.hw(dfg.nodes[i]) + best_succ
    return max(longest.values(), default=0.0)


def cut_hardware_cycles(dfg: DataFlowGraph, cut: Iterable[int],
                        model: CostModel) -> int:
    """Latency of the cut as a single custom instruction, in cycles.

    A nonempty cut always costs at least one cycle: the instruction must
    occupy an issue slot even when its datapath is pure wiring.
    """
    members = list(cut)
    if not members:
        return 0
    cp = cut_hardware_critical_path(dfg, members, model)
    if not math.isfinite(cp):
        raise ValueError("cut contains an operation with no hardware form")
    return max(1, math.ceil(cp - 1e-9))


def cut_merit(dfg: DataFlowGraph, cut: Iterable[int],
              model: CostModel) -> float:
    """``M(S)``: estimated cycles saved per program run by the cut."""
    members = list(cut)
    if not members:
        return 0.0
    sw = cut_software_cycles(dfg, members, model)
    hw = cut_hardware_cycles(dfg, members, model)
    return dfg.weight * (sw - hw)


def cut_area(dfg: DataFlowGraph, cut: Iterable[int],
             model: CostModel) -> float:
    """Silicon area of the cut's datapath, in MAC-area units."""
    return sum(model.area_of(dfg.nodes[i]) for i in cut)


@dataclass(frozen=True)
class MeritBreakdown:
    """Full merit accounting for reports and EXPERIMENTS.md."""

    software_cycles: float
    hardware_cycles: int
    critical_path_mac: float
    saved_per_execution: float
    weight: float
    merit: float
    area_mac: float

    @property
    def speedup_local(self) -> float:
        """Speedup of the covered operations alone (sw / hw)."""
        if self.hardware_cycles == 0:
            return math.inf
        return self.software_cycles / self.hardware_cycles


def merit_breakdown(dfg: DataFlowGraph, cut: Iterable[int],
                    model: CostModel) -> MeritBreakdown:
    members = list(cut)
    sw = cut_software_cycles(dfg, members, model)
    cp = cut_hardware_critical_path(dfg, members, model)
    hw = cut_hardware_cycles(dfg, members, model)
    saved = sw - hw
    return MeritBreakdown(
        software_cycles=sw,
        hardware_cycles=hw,
        critical_path_mac=cp,
        saved_per_execution=saved,
        weight=dfg.weight,
        merit=dfg.weight * saved,
        area_mac=cut_area(dfg, members, model),
    )


def application_cycles(dfgs: Iterable[DataFlowGraph],
                       model: CostModel) -> float:
    """Baseline estimated execution cycles of the whole application
    (execution-stage cycles of every operation, weighted by block
    frequency) — the denominator of the paper's speedup numbers."""
    total = 0.0
    for dfg in dfgs:
        block_cycles = sum(model.sw(node) for node in dfg.nodes)
        total += dfg.weight * block_cycles
    return total


def estimated_speedup(baseline_cycles: float, total_merit: float) -> float:
    """Overall application speedup given total saved cycles."""
    if baseline_cycles <= 0:
        return 1.0
    remaining = baseline_cycles - total_merit
    if remaining <= 0:
        return math.inf
    return baseline_cycles / remaining

"""Software and hardware latency tables.

The paper (Section 7) estimates, for every primitive operation:

* a **software latency** — cycles spent in the execution stage of a
  single-issue processor; and
* a **hardware delay** — the propagation delay of the synthesised operator
  on a 0.18 um CMOS process, *normalised to the delay of a 32-bit
  multiply-accumulate* (so a value of 1.0 means "as slow as a MAC").

We do not have the authors' synthesis library, so the hardware numbers
below are a documented substitution (see DESIGN.md §2): they preserve the
orderings that drive the paper's results — wide adders and comparators cost
a fraction of a MAC, multipliers most of one, bitwise logic and multiplexers
almost nothing.  Chaining several cheap operators inside one AFU therefore
often still fits in a single cycle, which is precisely the effect the
paper's merit function rewards.

The tables are wrapped in a :class:`CostModel` so experiments can ablate
them (e.g. a uniform model where every operator costs one cycle in both
domains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..ir.dfg import DFGNode
from ..ir.opcodes import Opcode

#: Execution-stage cycles on the baseline single-issue core.
DEFAULT_SW_LATENCY: Dict[Opcode, int] = {
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 2,
    Opcode.DIV: 18,
    Opcode.REM: 18,
    Opcode.NEG: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.NOT: 1,
    Opcode.SHL: 1,
    Opcode.LSHR: 1,
    Opcode.ASHR: 1,
    Opcode.EQ: 1,
    Opcode.NE: 1,
    Opcode.SLT: 1,
    Opcode.SLE: 1,
    Opcode.SGT: 1,
    Opcode.SGE: 1,
    Opcode.COPY: 1,
    Opcode.SELECT: 1,
    Opcode.LOAD: 2,
    Opcode.STORE: 1,
    Opcode.CALL: 1,
}

#: Propagation delay normalised to a 32-bit multiply-accumulate (= 1.0).
DEFAULT_HW_DELAY: Dict[Opcode, float] = {
    Opcode.ADD: 0.30,
    Opcode.SUB: 0.30,
    Opcode.MUL: 0.85,
    Opcode.DIV: 10.0,
    Opcode.REM: 10.0,
    Opcode.NEG: 0.30,
    Opcode.AND: 0.05,
    Opcode.OR: 0.05,
    Opcode.XOR: 0.06,
    Opcode.NOT: 0.03,
    Opcode.SHL: 0.20,       # barrel shifter
    Opcode.LSHR: 0.20,
    Opcode.ASHR: 0.20,
    Opcode.EQ: 0.18,
    Opcode.NE: 0.18,
    Opcode.SLT: 0.25,       # comparator = subtract + sign
    Opcode.SLE: 0.25,
    Opcode.SGT: 0.25,
    Opcode.SGE: 0.25,
    Opcode.COPY: 0.0,
    Opcode.SELECT: 0.10,    # 2:1 mux
    Opcode.LOAD: math.inf,  # never inside an AFU
    Opcode.STORE: math.inf,
    Opcode.CALL: math.inf,
}

#: Area normalised to a 32-bit multiply-accumulate (= 1.0); used by the
#: Section 8 area claim ("within the area of a couple of MACs").
DEFAULT_AREA: Dict[Opcode, float] = {
    Opcode.ADD: 0.10,
    Opcode.SUB: 0.10,
    Opcode.MUL: 0.90,
    Opcode.DIV: 3.00,
    Opcode.REM: 3.00,
    Opcode.NEG: 0.08,
    Opcode.AND: 0.02,
    Opcode.OR: 0.02,
    Opcode.XOR: 0.03,
    Opcode.NOT: 0.01,
    Opcode.SHL: 0.12,
    Opcode.LSHR: 0.12,
    Opcode.ASHR: 0.12,
    Opcode.EQ: 0.04,
    Opcode.NE: 0.04,
    Opcode.SLT: 0.06,
    Opcode.SLE: 0.06,
    Opcode.SGT: 0.06,
    Opcode.SGE: 0.06,
    Opcode.COPY: 0.0,
    Opcode.SELECT: 0.03,
    Opcode.LOAD: math.inf,
    Opcode.STORE: math.inf,
    Opcode.CALL: math.inf,
}


@dataclass
class CostModel:
    """Per-operation cost tables used by the merit function.

    A shift (or any binop) whose second operand is a constant is cheaper in
    hardware than the variable form (pure wiring for shifts); this is
    controlled by ``const_shift_free``.
    """

    sw_latency: Dict[Opcode, int] = field(
        default_factory=lambda: dict(DEFAULT_SW_LATENCY))
    hw_delay: Dict[Opcode, float] = field(
        default_factory=lambda: dict(DEFAULT_HW_DELAY))
    area: Dict[Opcode, float] = field(
        default_factory=lambda: dict(DEFAULT_AREA))
    const_shift_free: bool = True

    # ------------------------------------------------------------------
    def sw(self, node: DFGNode) -> float:
        """Software cycles of a DFG node (sum over supernode members)."""
        if node.is_super:
            return sum(self.sw_latency.get(i.opcode, 1) for i in node.insns)
        return self.sw_latency[node.opcode]

    def hw(self, node: DFGNode) -> float:
        """Hardware delay of a DFG node in MAC units."""
        if node.is_super:
            return math.inf  # supernodes are forbidden anyway
        op = node.opcode
        delay = self.hw_delay[op]
        if (self.const_shift_free
                and op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)
                and node.insns and len(node.insns[0].operands) == 2
                and not _is_reg(node.insns[0].operands[1])):
            return 0.02  # constant shift amounts are wiring
        return delay

    def area_of(self, node: DFGNode) -> float:
        """Silicon area of a DFG node in MAC units."""
        if node.is_super:
            return sum(self.area.get(i.opcode, 0.0) for i in node.insns)
        return self.area[node.opcode]


def _is_reg(operand) -> bool:
    from ..ir.values import Reg

    return isinstance(operand, Reg)


def uniform_cost_model() -> CostModel:
    """Ablation model: every AFU-legal operator costs 1 SW cycle and
    0.3 MAC of delay — removes the operator-mix effect from results."""
    sw = {op: 1 for op in DEFAULT_SW_LATENCY}
    hw = {op: (math.inf if math.isinf(DEFAULT_HW_DELAY[op]) else 0.3)
          for op in DEFAULT_HW_DELAY}
    return CostModel(sw_latency=sw, hw_delay=hw, const_shift_free=False)

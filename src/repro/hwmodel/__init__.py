"""Hardware/software cost modelling: latencies, area, merit ``M(S)``."""

from .latency import (
    DEFAULT_AREA,
    DEFAULT_HW_DELAY,
    DEFAULT_SW_LATENCY,
    CostModel,
    uniform_cost_model,
)
from .merit import (
    MeritBreakdown,
    application_cycles,
    cut_area,
    cut_hardware_critical_path,
    cut_hardware_cycles,
    cut_merit,
    cut_software_cycles,
    estimated_speedup,
    merit_breakdown,
)

__all__ = [
    "CostModel", "uniform_cost_model",
    "DEFAULT_SW_LATENCY", "DEFAULT_HW_DELAY", "DEFAULT_AREA",
    "cut_merit", "cut_area", "cut_software_cycles",
    "cut_hardware_critical_path", "cut_hardware_cycles",
    "merit_breakdown", "MeritBreakdown",
    "application_cycles", "estimated_speedup",
]

"""G.721 ADPCM predictor kernel (MediaBench ``g721``).

The heart of the CCITT G.721 codec is ``fmult`` — a multiply of two values
held in a custom floating-point-ish short format (4-bit exponent, 6-bit
mantissa), used six times per sample by the zero predictor.  Its dataflow
(sign handling, ``quan`` exponent extraction, mantissa align, renormalise)
is a textbook candidate for an instruction-set extension, and its variable
shifts exercise the barrel-shifter costs of the hardware model.

The MiniC kernel computes the zero-predictor partial signal estimate over
a stream of quantised difference values; :func:`predict_golden` is an
independent Python model, bit-exact against the compiled version (both
define shift amounts modulo 32, like the IR).
"""

from __future__ import annotations

import random
from typing import List, Sequence

MAX_SAMPLES = 1024
NUM_TAPS = 6

#: Fixed predictor coefficients (Q? representative magnitudes, signed).
DEFAULT_B = [126, -418, 62, -172, 98, -28]

POWER2 = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]

SOURCE = f"""
int dq_in[{MAX_SAMPLES}];
int sez_out[{MAX_SAMPLES}];
int bcoef[{NUM_TAPS}] = {{{', '.join(str(v) for v in DEFAULT_B)}}};
int dqhist[{NUM_TAPS}];
int power2[14] = {{{', '.join(str(v) for v in POWER2)}}};

int quan(int val) {{
  int i;
  for (i = 0; i < 14; i++) {{
    if (val < power2[i]) {{
      return i;
    }}
  }}
  return 14;
}}

int fmult(int an, int srn) {{
  int anmag;
  int anexp;
  int anmant;
  int wanexp;
  int wanmant;
  int retval;

  if (an > 0) {{
    anmag = an >> 2;
  }} else {{
    anmag = ((-an) >> 2) & 8191;
  }}
  anexp = quan(anmag) - 6;
  if (anmag == 0) {{
    anmant = 32;
  }} else {{
    if (anexp >= 0) {{
      anmant = anmag >> anexp;
    }} else {{
      anmant = anmag << (-anexp);
    }}
  }}
  wanexp = anexp + ((srn >> 6) & 15) - 13;
  wanmant = (anmant * (srn & 63) + 48) >> 4;
  if (wanexp >= 0) {{
    retval = (wanmant << wanexp) & 32767;
  }} else {{
    retval = wanmant >> (-wanexp);
  }}
  if ((an ^ srn) < 0) {{
    return -retval;
  }}
  return retval;
}}

void g721_predict(int len) {{
  int k;
  for (k = 0; k < len; k++) {{
    int dq = dq_in[k];
    int sez = 0;
    int i;
    for (i = 0; i < {NUM_TAPS}; i++) {{
      sez = sez + fmult(bcoef[i] >> 2, dqhist[i]);
    }}
    sez = sez >> 1;
    int j;
    for (j = {NUM_TAPS} - 1; j >= 1; j -= 1) {{
      dqhist[j] = dqhist[j - 1];
    }}
    dqhist[0] = dq;
    sez_out[k] = sez;
  }}
}}
"""


def _quan(val: int) -> int:
    for i, p in enumerate(POWER2):
        if val < p:
            return i
    return 14


def _fmult(an: int, srn: int) -> int:
    if an > 0:
        anmag = an >> 2
    else:
        anmag = ((-an) >> 2) & 8191
    anexp = _quan(anmag) - 6
    if anmag == 0:
        anmant = 32
    else:
        anmant = anmag >> anexp if anexp >= 0 else anmag << (-anexp)
    wanexp = anexp + ((srn >> 6) & 15) - 13
    wanmant = (anmant * (srn & 63) + 48) >> 4
    if wanexp >= 0:
        retval = (wanmant << (wanexp & 31)) & 32767
    else:
        retval = wanmant >> ((-wanexp) & 31)
    return -retval if (an ^ srn) < 0 else retval


def predict_golden(dq_values: Sequence[int],
                   b: Sequence[int] = tuple(DEFAULT_B)) -> List[int]:
    """Reference zero-predictor, bit-exact against the MiniC kernel."""
    history = [0] * NUM_TAPS
    out: List[int] = []
    for dq in dq_values:
        sez = 0
        for i in range(NUM_TAPS):
            sez += _fmult(b[i] >> 2, history[i])
        sez >>= 1
        history = [dq] + history[:-1]
        out.append(sez)
    return out


def make_input(num_samples: int, seed: int = 4242) -> List[int]:
    """Quantised-difference stream in the codec's typical dynamic range
    (sign-magnitude-ish small values)."""
    rng = random.Random(seed)
    return [rng.randint(0, 1 << 12) for _ in range(num_samples)]

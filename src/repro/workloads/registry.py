"""Workload registry: one place that knows how to build, drive and verify
every benchmark application.

A :class:`Workload` bundles the MiniC source, the entry function, a driver
(fills input arrays, returns the call arguments) and a verifier comparing
interpreter output against the independent golden model.  The registry is
what the Fig. 11 harness, the examples and the CLI iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..interp.memory import Memory
from . import adpcm, crc, fir, g721, gsm, mixer, sha

DriverFn = Callable[[Memory, int], Sequence[int]]
VerifyFn = Callable[[Memory, int], None]


@dataclass(frozen=True)
class Workload:
    """A runnable benchmark application.

    Attributes:
        name: registry key (e.g. ``"adpcm-decode"``).
        source: MiniC program text.
        entry: function to profile and specialise.
        driver: fills the memory image for a run of size ``n`` and returns
            the argument list for ``entry``.
        verify: raises ``AssertionError`` if the memory image after a run
            of size ``n`` does not match the golden model.
        default_n: problem size used by profiling and benches.
        paper_benchmark: True for the three benchmarks of the paper's
            Fig. 11.
        description: one-line summary for reports.
    """

    name: str
    source: str
    entry: str
    driver: DriverFn
    verify: VerifyFn
    default_n: int = 256
    paper_benchmark: bool = False
    description: str = ""


# ----------------------------------------------------------------------
# adpcm-decode
# ----------------------------------------------------------------------
def _adpcm_decode_driver(memory: Memory, n: int) -> Sequence[int]:
    pcm = adpcm.make_pcm_input(n)
    codes = adpcm.encode_golden(pcm)
    memory.write_array("inbuf", codes)
    return [n]


def _adpcm_decode_verify(memory: Memory, n: int) -> None:
    pcm = adpcm.make_pcm_input(n)
    codes = adpcm.encode_golden(pcm)
    expected = adpcm.decode_golden(codes, n)
    actual = memory.read_array("outbuf", n)
    assert actual == expected, "adpcm-decode output mismatch"


# ----------------------------------------------------------------------
# adpcm-encode
# ----------------------------------------------------------------------
def _adpcm_encode_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("pcmbuf", adpcm.make_pcm_input(n))
    return [n]


def _adpcm_encode_verify(memory: Memory, n: int) -> None:
    expected = adpcm.encode_golden(adpcm.make_pcm_input(n))
    actual = memory.read_array("adpcmbuf", len(expected))
    assert actual == expected, "adpcm-encode output mismatch"


# ----------------------------------------------------------------------
# gsm (short-term analysis filter)
# ----------------------------------------------------------------------
def _gsm_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("s_in", gsm.make_input(n))
    return [n]


def _gsm_verify(memory: Memory, n: int) -> None:
    expected = gsm.short_term_golden(gsm.make_input(n))
    actual = memory.read_array("s_out", n)
    assert actual == expected, "gsm output mismatch"


# ----------------------------------------------------------------------
# fir
# ----------------------------------------------------------------------
def _fir_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("x_in", fir.make_input(n + fir.NUM_TAPS))
    return [n]


def _fir_verify(memory: Memory, n: int) -> None:
    expected = fir.fir_golden(fir.make_input(n + fir.NUM_TAPS))
    actual = memory.read_array("y_out", n)
    assert actual == expected, "fir output mismatch"


# ----------------------------------------------------------------------
# crc32
# ----------------------------------------------------------------------
def _crc_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("data", crc.make_input(n))
    return [n]


def _crc_verify(memory: Memory, n: int) -> None:
    expected = crc.crc32_golden(crc.make_input(n))
    assert memory.scalar("crc_out") == expected, "crc32 mismatch"


# ----------------------------------------------------------------------
# g721 (zero predictor with fmult)
# ----------------------------------------------------------------------
def _g721_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("dq_in", g721.make_input(n))
    return [n]


def _g721_verify(memory: Memory, n: int) -> None:
    expected = g721.predict_golden(g721.make_input(n))
    actual = memory.read_array("sez_out", n)
    assert actual == expected, "g721 predictor mismatch"


# ----------------------------------------------------------------------
# mixer
# ----------------------------------------------------------------------
def _mixer_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("msg", mixer.make_input(n))
    return [n]


def _mixer_verify(memory: Memory, n: int) -> None:
    expected = list(mixer.mix_golden(mixer.make_input(n)))
    actual = memory.read_array("digest", 4)
    assert actual == expected, "mixer digest mismatch"


# ----------------------------------------------------------------------
# sha (SHA-1 block transform; n counts 16-word blocks)
# ----------------------------------------------------------------------
def _sha_driver(memory: Memory, n: int) -> Sequence[int]:
    memory.write_array("msg", sha.make_input(n))
    return [n]


def _sha_verify(memory: Memory, n: int) -> None:
    expected = list(sha.sha1_golden(sha.make_input(n)))
    actual = memory.read_array("hash_out", 5)
    assert actual == expected, "sha digest mismatch"


WORKLOADS: Dict[str, Workload] = {
    w.name: w for w in [
        Workload(
            name="adpcm-decode",
            source=adpcm.DECODE_SOURCE,
            entry="adpcm_decode",
            driver=_adpcm_decode_driver,
            verify=_adpcm_decode_verify,
            default_n=512,
            paper_benchmark=True,
            description="IMA ADPCM decoder (the paper's Fig. 3 benchmark)",
        ),
        Workload(
            name="adpcm-encode",
            source=adpcm.ENCODE_SOURCE,
            entry="adpcm_encode",
            driver=_adpcm_encode_driver,
            verify=_adpcm_encode_verify,
            default_n=512,
            paper_benchmark=True,
            description="IMA ADPCM encoder",
        ),
        Workload(
            name="gsm",
            source=gsm.SOURCE,
            entry="short_term_analysis",
            driver=_gsm_driver,
            verify=_gsm_verify,
            default_n=256,
            paper_benchmark=True,
            description="GSM 06.10 short-term analysis lattice filter",
        ),
        Workload(
            name="fir",
            source=fir.SOURCE,
            entry="fir_filter",
            driver=_fir_driver,
            verify=_fir_verify,
            default_n=256,
            description="8-tap saturating Q15 FIR filter",
        ),
        Workload(
            name="crc32",
            source=crc.SOURCE,
            entry="crc32",
            driver=_crc_driver,
            verify=_crc_verify,
            default_n=256,
            description="bitwise CRC-32 (logic-dominated)",
        ),
        Workload(
            name="g721",
            source=g721.SOURCE,
            entry="g721_predict",
            driver=_g721_driver,
            verify=_g721_verify,
            default_n=128,
            description="G.721 zero predictor (fmult custom-float "
                        "multiply, MediaBench)",
        ),
        Workload(
            name="sha",
            source=sha.SOURCE,
            entry="sha1",
            driver=_sha_driver,
            verify=_sha_verify,
            default_n=8,
            description="SHA-1 block transform (80 rounds + message "
                        "schedule; n = 16-word blocks, MiBench crypto)",
        ),
        Workload(
            name="mixer",
            source=mixer.SOURCE,
            entry="mix",
            driver=_mixer_driver,
            verify=_mixer_verify,
            default_n=256,
            description="SHA-style 32-bit word mixer (wide logic, rotates)",
        ),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a registered workload; ``KeyError`` lists known names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}")


def paper_benchmarks() -> List[Workload]:
    """The three benchmarks used for the paper's Fig. 11."""
    return [w for w in WORKLOADS.values() if w.paper_benchmark]

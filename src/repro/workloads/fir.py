"""Saturating fixed-point FIR filter — a generic DSP workload.

An 8-tap Q15 FIR with rounding and output saturation: the accumulation
chain is the textbook multiply-accumulate pattern, so the identified AFUs
should look like (partial) MAC trees.  Used as an extra benchmark beyond
the paper's three, and by the quickstart example.
"""

from __future__ import annotations

import random
from typing import List, Sequence

NUM_TAPS = 8
MAX_SAMPLES = 2048

DEFAULT_COEFFS = [1310, -2621, 5243, 14418, 14418, 5243, -2621, 1310]

SOURCE = f"""
int x_in[{MAX_SAMPLES + NUM_TAPS}];
int y_out[{MAX_SAMPLES}];
int coeff[{NUM_TAPS}] = {{{', '.join(str(v) for v in DEFAULT_COEFFS)}}};

void fir_filter(int len) {{
  int n;
  for (n = 0; n < len; n++) {{
    int acc = 16384;
    int k;
    for (k = 0; k < {NUM_TAPS}; k++) {{
      acc = acc + coeff[k] * x_in[n + k];
    }}
    acc = acc >> 15;
    if (acc > 32767) acc = 32767;
    if (acc < -32768) acc = -32768;
    y_out[n] = acc;
  }}
}}
"""


def _clamp16(value: int) -> int:
    return max(-32768, min(32767, value))


def fir_golden(samples: Sequence[int],
               coeffs: Sequence[int] = tuple(DEFAULT_COEFFS)) -> List[int]:
    """Reference FIR, bit-exact against the MiniC kernel.

    ``samples`` must include the NUM_TAPS-1 history tail (the MiniC driver
    zero-pads, so pass ``len(samples) == n + NUM_TAPS`` with zeros)."""
    out: List[int] = []
    n = len(samples) - NUM_TAPS
    for i in range(n):
        acc = 16384
        for k in range(NUM_TAPS):
            acc += coeffs[k] * samples[i + k]
        out.append(_clamp16(acc >> 15))
    return out


def make_input(num_samples: int, seed: int = 5150) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(-32768, 32767) for _ in range(num_samples)]

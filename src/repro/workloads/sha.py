"""SHA-1 block transform (MiBench/crypto style) — the full compression.

Unlike the :mod:`mixer` toy (one invented round function), this is the
real SHA-1 kernel: per 16-word block, the 80-entry message schedule
(xor of four taps, rotated left by one) followed by four 20-round
phases, each with its own boolean function and round constant.  The
workload is the classic ISE showcase — every round is a pure 5-input
dataflow cone (``rotl5(a) + f(b,c,d) + e + w + K``) whose rotates are
``shl | lshr`` pairs the identifier fuses, and the schedule expansion
is a 4-input xor/rotate chain — so identified cuts track the paper's
``Nin`` constraint tightly on a kernel people actually accelerate.

``n`` counts 16-word blocks, not words: the driver writes ``16*n``
message words and the chained 5-word state lands in ``hash_out``.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

MAX_BLOCKS = 64
MAX_WORDS = MAX_BLOCKS * 16

# Round constants and initial state as signed 32-bit literals (MiniC
# ints are signed; values above 0x7FFFFFFF go in as negative decimals).
_K2_SIGNED = 0x8F1BBCDC - (1 << 32)   # -1894007588
_K3_SIGNED = 0xCA62C1D6 - (1 << 32)   # -899497514
_H1_SIGNED = 0xEFCDAB89 - (1 << 32)   # -271733879
_H2_SIGNED = 0x98BADCFE - (1 << 32)   # -1732584194
_H4_SIGNED = 0xC3D2E1F0 - (1 << 32)   # -1009589776

SOURCE = f"""
int msg[{MAX_WORDS}];
int w[80];
int hash_out[5];

void sha1(int nblocks) {{
  int h0 = 0x67452301;
  int h1 = {_H1_SIGNED};
  int h2 = {_H2_SIGNED};
  int h3 = 0x10325476;
  int h4 = {_H4_SIGNED};
  int blk;
  for (blk = 0; blk < nblocks; blk++) {{
    int base = blk * 16;
    int t;
    for (t = 0; t < 16; t++) {{
      w[t] = msg[base + t];
    }}
    for (t = 16; t < 80; t++) {{
      int x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16];
      w[t] = (x << 1) | ((x >> 31) & 1);
    }}
    int a = h0;
    int b = h1;
    int c = h2;
    int d = h3;
    int e = h4;
    for (t = 0; t < 20; t++) {{
      int f = (b & c) | (~b & d);
      int tmp = ((a << 5) | ((a >> 27) & 31)) + f + e + w[t]
                + 0x5A827999;
      e = d;
      d = c;
      c = (b << 30) | ((b >> 2) & 1073741823);
      b = a;
      a = tmp;
    }}
    for (t = 20; t < 40; t++) {{
      int f = b ^ c ^ d;
      int tmp = ((a << 5) | ((a >> 27) & 31)) + f + e + w[t]
                + 0x6ED9EBA1;
      e = d;
      d = c;
      c = (b << 30) | ((b >> 2) & 1073741823);
      b = a;
      a = tmp;
    }}
    for (t = 40; t < 60; t++) {{
      int f = (b & c) | (b & d) | (c & d);
      int tmp = ((a << 5) | ((a >> 27) & 31)) + f + e + w[t]
                + ({_K2_SIGNED});
      e = d;
      d = c;
      c = (b << 30) | ((b >> 2) & 1073741823);
      b = a;
      a = tmp;
    }}
    for (t = 60; t < 80; t++) {{
      int f = b ^ c ^ d;
      int tmp = ((a << 5) | ((a >> 27) & 31)) + f + e + w[t]
                + ({_K3_SIGNED});
      e = d;
      d = c;
      c = (b << 30) | ((b >> 2) & 1073741823);
      b = a;
      a = tmp;
    }}
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
  }}
  hash_out[0] = h0;
  hash_out[1] = h1;
  hash_out[2] = h2;
  hash_out[3] = h3;
  hash_out[4] = h4;
}}
"""


def _u32(value: int) -> int:
    return value & 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value > 0x7FFFFFFF else value


def _rotl(value: int, amount: int) -> int:
    value = _u32(value)
    return _u32((value << amount) | (value >> (32 - amount)))


def sha1_golden(words: Sequence[int]) -> Tuple[int, int, int, int, int]:
    """Reference SHA-1 over whole 16-word blocks, bit-exact against the
    MiniC kernel (no padding — the kernel is the block transform)."""
    assert len(words) % 16 == 0, "sha1 operates on 16-word blocks"
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    for base in range(0, len(words), 16):
        w = [_u32(word) for word in words[base:base + 16]]
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16],
                           1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f, k = (b & c) | (~b & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            a, b, c, d, e = (
                _u32(_rotl(a, 5) + _u32(f) + e + w[t] + k),
                a,
                _rotl(b, 30),
                c,
                d,
            )
        h = [_u32(x + y) for x, y in zip(h, (a, b, c, d, e))]
    return tuple(_wrap32(x) for x in h)


def make_input(nblocks: int, seed: int = 7) -> List[int]:
    """``16 * nblocks`` pseudo-random message words (signed 32-bit)."""
    rng = random.Random(seed)
    return [_wrap32(rng.getrandbits(32)) for _ in range(16 * nblocks)]

"""IMA/DVI ADPCM coder and decoder — the paper's motivating benchmark.

``adpcmdecode``'s hot basic block (after if-conversion) is the paper's
Fig. 3: table lookups feeding an index update, the approximate
``16x4``-bit multiply (subgraphs M1/M2) and the saturation network.  The
MiniC sources below are a faithful port of the MediaBench kernel (arrays
instead of pointers); :func:`decode_golden` / :func:`encode_golden` are
independent pure-Python implementations used to prove bit-exactness.
"""

from __future__ import annotations

import random
from typing import List, Sequence

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

STEPSIZE_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 158, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

#: Buffer sizes used by the MiniC drivers.
MAX_SAMPLES = 4096

_TABLES = f"""
int indexTable[16] = {{{', '.join(str(v) for v in INDEX_TABLE)}}};
int stepsizeTable[89] = {{{', '.join(str(v) for v in STEPSIZE_TABLE)}}};
"""

DECODE_SOURCE = _TABLES + f"""
int inbuf[{MAX_SAMPLES // 2}];
int outbuf[{MAX_SAMPLES}];

void adpcm_decode(int len) {{
  int valpred = 0;
  int index = 0;
  int step = 7;
  int bufferstep = 0;
  int inputbuffer = 0;
  int i;
  for (i = 0; i < len; i++) {{
    int delta;
    if (bufferstep) {{
      delta = inputbuffer & 15;
    }} else {{
      inputbuffer = inbuf[i >> 1];
      delta = (inputbuffer >> 4) & 15;
    }}
    bufferstep = !bufferstep;

    index = index + indexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;

    int sign = delta & 8;
    delta = delta & 7;

    int vpdiff = step >> 3;
    if (delta & 4) vpdiff = vpdiff + step;
    if (delta & 2) vpdiff = vpdiff + (step >> 1);
    if (delta & 1) vpdiff = vpdiff + (step >> 2);

    if (sign) {{
      valpred = valpred - vpdiff;
    }} else {{
      valpred = valpred + vpdiff;
    }}

    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;

    step = stepsizeTable[index];
    outbuf[i] = valpred;
  }}
}}
"""

ENCODE_SOURCE = _TABLES + f"""
int pcmbuf[{MAX_SAMPLES}];
int adpcmbuf[{MAX_SAMPLES // 2}];

void adpcm_encode(int len) {{
  int valpred = 0;
  int index = 0;
  int step = 7;
  int bufferstep = 1;
  int outputbuffer = 0;
  int i;
  for (i = 0; i < len; i++) {{
    int val = pcmbuf[i];
    int diff = val - valpred;
    int sign = 0;
    if (diff < 0) {{
      sign = 8;
      diff = -diff;
    }}

    int delta = 0;
    int vpdiff = step >> 3;
    int tempstep = step;
    if (diff >= tempstep) {{
      delta = 4;
      diff = diff - tempstep;
      vpdiff = vpdiff + step;
    }}
    tempstep = tempstep >> 1;
    if (diff >= tempstep) {{
      delta = delta | 2;
      diff = diff - tempstep;
      vpdiff = vpdiff + (step >> 1);
    }}
    tempstep = tempstep >> 1;
    if (diff >= tempstep) {{
      delta = delta | 1;
      vpdiff = vpdiff + (step >> 2);
    }}

    if (sign) {{
      valpred = valpred - vpdiff;
    }} else {{
      valpred = valpred + vpdiff;
    }}
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;

    delta = delta | sign;
    index = index + indexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    step = stepsizeTable[index];

    if (bufferstep) {{
      outputbuffer = (delta << 4) & 0xf0;
    }} else {{
      adpcmbuf[i >> 1] = (delta & 0x0f) | outputbuffer;
    }}
    bufferstep = !bufferstep;
  }}
}}
"""


# ----------------------------------------------------------------------
# Golden models (independent reimplementation, pure Python).
# ----------------------------------------------------------------------
def _clamp16(value: int) -> int:
    return max(-32768, min(32767, value))


def encode_golden(samples: Sequence[int]) -> List[int]:
    """Reference ADPCM encoder: 16-bit samples -> packed 4-bit codes
    (one byte per pair, first sample in the high nibble)."""
    valpred = 0
    index = 0
    step = STEPSIZE_TABLE[0]
    out: List[int] = []
    outputbuffer = 0
    bufferstep = True
    for val in samples:
        diff = val - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff

        delta = 0
        vpdiff = step >> 3
        tempstep = step
        if diff >= tempstep:
            delta = 4
            diff -= tempstep
            vpdiff += step
        tempstep >>= 1
        if diff >= tempstep:
            delta |= 2
            diff -= tempstep
            vpdiff += step >> 1
        tempstep >>= 1
        if diff >= tempstep:
            delta |= 1
            vpdiff += step >> 2

        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = _clamp16(valpred)

        delta |= sign
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        step = STEPSIZE_TABLE[index]

        if bufferstep:
            outputbuffer = (delta << 4) & 0xF0
        else:
            out.append((delta & 0x0F) | outputbuffer)
        bufferstep = not bufferstep
    return out


def decode_golden(codes: Sequence[int], num_samples: int) -> List[int]:
    """Reference ADPCM decoder: packed codes -> 16-bit samples."""
    valpred = 0
    index = 0
    step = STEPSIZE_TABLE[0]
    out: List[int] = []
    inputbuffer = 0
    bufferstep = False
    for i in range(num_samples):
        if bufferstep:
            delta = inputbuffer & 0xF
        else:
            inputbuffer = codes[i >> 1]
            delta = (inputbuffer >> 4) & 0xF
        bufferstep = not bufferstep

        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))

        sign = delta & 8
        delta &= 7

        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2

        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = _clamp16(valpred)

        step = STEPSIZE_TABLE[index]
        out.append(valpred)
    return out


def make_pcm_input(num_samples: int, seed: int = 1234) -> List[int]:
    """Deterministic pseudo-speech test signal (sum of slow ramps and
    noise, clamped to 16 bits)."""
    rng = random.Random(seed)
    samples: List[int] = []
    value = 0
    for i in range(num_samples):
        value += rng.randint(-700, 700)
        value = int(value * 0.98)
        wave = int(6000 * ((i % 200) - 100) / 100)
        samples.append(_clamp16(value + wave))
    return samples

"""Bitwise CRC-32 (reflected, polynomial 0xEDB88320), bit-at-a-time.

A logic-dominated workload: the inner loop is shifts, XORs and a select —
the opposite operator mix from the MAC-heavy DSP kernels.  Chains of
1-cycle logic ops are where AFUs shine (many software cycles collapse into
a fraction of a MAC delay), and where the input-port constraint, not the
critical path, limits the cut size.
"""

from __future__ import annotations

import random
from typing import List, Sequence

MAX_BYTES = 4096
POLY = 0xEDB88320


# The polynomial constant 0xEDB88320 as a signed 32-bit literal.
_POLY_SIGNED = POLY - (1 << 32)   # -306674912

SOURCE = f"""
int data[{MAX_BYTES}];
int crc_out;

void crc32(int len) {{
  int crc = -1;
  int i;
  for (i = 0; i < len; i++) {{
    int byte = data[i] & 255;
    crc = crc ^ byte;
    int b;
    for (b = 0; b < 8; b++) {{
      int mask = -(crc & 1);
      crc = ((crc >> 1) & 0x7fffffff) ^ (mask & ({_POLY_SIGNED}));
    }}
  }}
  crc_out = ~crc;
}}
"""


def crc32_golden(data: Sequence[int]) -> int:
    """Reference CRC-32, returned as a signed 32-bit value (matching the
    IR's numeric domain)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte & 0xFF
        for _ in range(8):
            mask = -(crc & 1) & 0xFFFFFFFF
            crc = (crc >> 1) ^ (POLY & mask)
    result = (~crc) & 0xFFFFFFFF
    if result > 0x7FFFFFFF:
        result -= 1 << 32
    return result


def make_input(num_bytes: int, seed: int = 99) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 255) for _ in range(num_bytes)]

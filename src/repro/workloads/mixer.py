"""SHA-style word mixer — wide-logic workload with rotates.

Each round mixes four 32-bit state words with xor/add/rotate (rotates are
``shl | lshr`` pairs in MiniC, which the identifier happily fuses into one
AFU).  Exercises many-input cuts: a round function reads all four state
words, so the identified instructions track the ``Nin`` constraint closely.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

MAX_WORDS = 2048
NUM_ROUNDS_PER_WORD = 2

SOURCE = f"""
int msg[{MAX_WORDS}];
int digest[4];

void mix(int len) {{
  int a = 0x67452301;
  int b = -271733879;
  int c = -1732584194;
  int d = 0x10325476;
  int i;
  for (i = 0; i < len; i++) {{
    int w = msg[i];
    a = a + (b ^ c ^ d) + w;
    a = ((a << 7) | ((a >> 25) & 127));
    d = d + ((a & b) | (~a & c)) + w;
    d = ((d << 12) | ((d >> 20) & 4095));
    c = c ^ (a + d);
    b = b + ((c << 3) | ((c >> 29) & 7));
  }}
  digest[0] = a;
  digest[1] = b;
  digest[2] = c;
  digest[3] = d;
}}
"""


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value > 0x7FFFFFFF else value


def _u32(value: int) -> int:
    return value & 0xFFFFFFFF


def mix_golden(words: Sequence[int]) -> Tuple[int, int, int, int]:
    """Reference mixer, bit-exact against the MiniC kernel."""
    a = 0x67452301
    b = _u32(-271733879)
    c = _u32(-1732584194)
    d = 0x10325476
    for w in words:
        w = _u32(w)
        a = _u32(a + (b ^ c ^ d) + w)
        a = _u32((a << 7) | ((a >> 25) & 127))
        d = _u32(d + ((a & b) | (~a & c)) + w)
        d = _u32((d << 12) | ((d >> 20) & 4095))
        c = _u32(c ^ _u32(a + d))
        b = _u32(b + _u32((c << 3) | ((c >> 29) & 7)))
    return (_wrap32(a), _wrap32(b), _wrap32(c), _wrap32(d))


def make_input(num_words: int, seed: int = 2024) -> List[int]:
    rng = random.Random(seed)
    return [_wrap32(rng.getrandbits(32)) for _ in range(num_words)]

"""Benchmark workloads written in MiniC, with golden Python models."""

from .registry import WORKLOADS, Workload, get_workload, paper_benchmarks

__all__ = ["WORKLOADS", "Workload", "get_workload", "paper_benchmarks"]

"""GSM 06.10-style short-term analysis filter kernel.

A faithful extraction of the lattice filter at the heart of the GSM
full-rate encoder (MediaBench ``gsm``): per sample, eight lattice stages
of rounded Q15 multiplies (``gsm_mult_r``) and saturating adds
(``gsm_add``).  The saturations become ``SELECT`` chains after
if-conversion and the stage is MAC-shaped — exactly the operator mix the
paper's AFUs accelerate.

The eight-stage inner loop is a natural target for the unrolling extension
(Section 9 of the paper): unrolled by 8, the whole per-sample computation
becomes one large basic block.
"""

from __future__ import annotations

import random
from typing import List, Sequence

NUM_STAGES = 8
MAX_SAMPLES = 2048

#: Representative reflection coefficients (Q15), mid-range magnitudes.
DEFAULT_RP = [22118, -14336, 8192, -4096, 11264, -6144, 3072, -1536]

SOURCE = f"""
int s_in[{MAX_SAMPLES}];
int s_out[{MAX_SAMPLES}];
int rp[{NUM_STAGES}] = {{{', '.join(str(v) for v in DEFAULT_RP)}}};
int u[{NUM_STAGES}];

int gsm_add(int a, int b) {{
  int sum = a + b;
  if (sum > 32767) sum = 32767;
  if (sum < -32768) sum = -32768;
  return sum;
}}

void short_term_analysis(int len) {{
  int k;
  int i;
  for (k = 0; k < len; k++) {{
    int di = s_in[k];
    int sav = di;
    for (i = 0; i < {NUM_STAGES}; i++) {{
      int ui = u[i];
      int rpi = rp[i];
      u[i] = sav;

      int zzz = (rpi * di + 16384) >> 15;
      sav = ui + zzz;
      if (sav > 32767) sav = 32767;
      if (sav < -32768) sav = -32768;

      zzz = (rpi * ui + 16384) >> 15;
      di = di + zzz;
      if (di > 32767) di = 32767;
      if (di < -32768) di = -32768;
    }}
    s_out[k] = di;
  }}
}}
"""


def _clamp16(value: int) -> int:
    return max(-32768, min(32767, value))


def short_term_golden(samples: Sequence[int],
                      rp: Sequence[int] = tuple(DEFAULT_RP)) -> List[int]:
    """Reference lattice filter, bit-exact against the MiniC kernel."""
    u = [0] * NUM_STAGES
    out: List[int] = []
    for sample in samples:
        di = sample
        sav = di
        for i in range(NUM_STAGES):
            ui = u[i]
            rpi = rp[i]
            u[i] = sav
            zzz = (rpi * di + 16384) >> 15
            sav = _clamp16(ui + zzz)
            zzz = (rpi * ui + 16384) >> 15
            di = _clamp16(di + zzz)
        out.append(di)
    return out


def make_input(num_samples: int, seed: int = 77) -> List[int]:
    """Deterministic pseudo-speech input, 13-bit range like GSM frames."""
    rng = random.Random(seed)
    samples: List[int] = []
    value = 0
    for _ in range(num_samples):
        value = int(0.95 * value) + rng.randint(-400, 400)
        samples.append(_clamp16(value * 4))
    return samples

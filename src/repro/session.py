"""The session facade: one object owning the whole toolchain's state.

Every entry point used to bootstrap itself — compile and profile the
workload, run the exponential searches from a cold start, measure its
own baseline — and throw all of it away on exit.  A :class:`Session`
owns the three things worth keeping instead:

* a persistent content-addressed :class:`~repro.store.ArtifactStore`
  (compiled+profiled applications, identification results, baseline
  runs survive the process and are shared between concurrent workers);
* a cost model and a :class:`~repro.explore.SearchCache` backed by the
  store, shared by every call so ``identify`` warms ``select`` warms
  ``sweep``;
* the worker-pool width used by parallel selection rounds.

The facade exposes the complete API surface — :meth:`prepare`,
:meth:`identify`, :meth:`select`, :meth:`sweep`, :meth:`speedup`,
:meth:`run_batch`, :meth:`afu`, :meth:`check`, :meth:`fuzz` — with
warm-start
semantics: repeating a call (in this
process or a later one) returns bit-identical results while skipping
every expensive phase whose inputs did not change.  The store is a pure
memo; ``Session(store=False)`` computes exactly the same numbers from
scratch, which the test suite asserts property-style.

Quickstart::

    from repro import Session

    session = Session()                 # ~/.cache/repro (or $REPRO_STORE)
    result = session.select("adpcm-decode", ninstr=16)
    rows = session.speedup(["adpcm-decode"])   # shares the work above
    # A new process repeating these calls warm-starts from the store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .afu import build_datapath, emit_verilog
from .core import Constraints, SearchLimits, SearchResult, find_best_cut
from .core.selection import SelectionResult
from .exec.speedup import ALGORITHMS, dispatch_selection
from .explore.cache import SearchCache
from .hwmodel import CostModel
from .pipeline import Application, prepare_application
from .store.artifacts import ArtifactStore, resolve_store
from .workloads.registry import get_workload

__all__ = ["ALGORITHMS", "Session"]


class Session:
    """Shared toolchain state with warm-start semantics (module doc)."""

    def __init__(
        self,
        store="auto",
        model: Optional[CostModel] = None,
        workers: Optional[int] = None,
        limits: Optional[SearchLimits] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Open a session.

        Args:
            store: ``"auto"`` (the default ``~/.cache/repro`` root, or
                ``$REPRO_STORE``; honours the env var's off switch),
                ``False``/``None`` for a purely in-memory session, a
                path, or an :class:`ArtifactStore`.
            model: cost model shared by every call (default paper model).
            workers: worker-pool width for parallel selection rounds
                (default: ``$REPRO_WORKERS``, else serial).
            limits: default search budget applied when a call does not
                pass its own.
            backend: execution backend for every profiling/measurement
                run the session performs (``"walk"``/``"compiled"``;
                default ``$REPRO_BACKEND``, else compiled).  Results
                are bit-identical across backends, so the backend is
                deliberately absent from every memo and store key.
        """
        self.store: Optional[ArtifactStore] = resolve_store(store)
        self.model = model or CostModel()
        self.workers = workers
        self.limits = limits
        self.backend = backend
        self.cache = SearchCache(backing=self.store)
        self._apps: Dict[Tuple, Application] = {}

    # ------------------------------------------------------------------
    def prepare(self, name: str, n: Optional[int] = None,
                unroll: Optional[int] = None, if_convert: bool = True,
                verify: bool = True) -> Application:
        """Compile+profile *name* — memoised in-process and, through the
        store, across processes.  Hits are bit-identical to cold runs."""
        # Resolve the default size so n=None and an explicit
        # n=default_n share one memo entry, like workload_key does.
        size = n if n is not None else get_workload(name).default_n
        key = (name, size, unroll, if_convert, verify)
        app = self._apps.get(key)
        if app is None:
            app = prepare_application(name, n=n, unroll=unroll,
                                      if_convert=if_convert, verify=verify,
                                      store=self.store,
                                      backend=self.backend)
            self._apps[key] = app
        return app

    def _limits(self, limits) -> Optional[SearchLimits]:
        return limits if limits is not None else self.limits

    # ------------------------------------------------------------------
    def identify(self, workload: str, nin: int = 4, nout: int = 2,
                 limits: Optional[SearchLimits] = None,
                 n: Optional[int] = None,
                 unroll: Optional[int] = None) -> SearchResult:
        """Best single cut of the hottest block (Problem 1), through the
        shared search cache."""
        app = self.prepare(workload, n=n, unroll=unroll)
        return find_best_cut(app.hot_dfg,
                             Constraints(nin=nin, nout=nout),
                             self.model, self._limits(limits),
                             cache=self.cache)

    def select(self, workload: str, algorithm: str = "iterative",
               nin: int = 4, nout: int = 2, ninstr: int = 16,
               limits: Optional[SearchLimits] = None,
               n: Optional[int] = None, unroll: Optional[int] = None,
               max_nodes: int = 40, area_budget: float = 2.0,
               area_method: str = "knapsack") -> SelectionResult:
        """Select up to *ninstr* instructions (Problem 2) with any of the
        five algorithm families, warm-starting identification from the
        session cache.  Dispatch is shared with ``repro speedup``
        (:func:`repro.exec.speedup.dispatch_selection`), so the two
        paths can never wire the same flags differently."""
        app = self.prepare(workload, n=n, unroll=unroll)
        return dispatch_selection(
            algorithm, app.dfgs,
            Constraints(nin=nin, nout=nout, ninstr=ninstr),
            self.model, self._limits(limits), self.workers, max_nodes,
            area_budget, area_method=area_method, cache=self.cache)

    # ------------------------------------------------------------------
    def sweep(self, spec, use_cache: bool = True, echo=None,
              cluster=None, listen=None, unit_attempts: int = 3,
              unit_deadline=None, cluster_deadline=None):
        """Run a whole design-space grid (:func:`repro.explore.
        run_sweep`) through the session's cache and store — a repeated
        identical sweep skips preparation and the warm phase entirely.
        ``cluster``/``listen`` route the warm phase through the
        leader/worker fabric (``repro sweep --cluster N``); rows are
        bit-identical to the in-process path.  ``unit_attempts`` /
        ``unit_deadline`` / ``cluster_deadline`` are the cluster
        path's robustness knobs (poison-unit quarantine, hung-worker
        requeue, overall warm-phase deadline)."""
        from .explore.runner import run_sweep

        return run_sweep(spec, use_cache=use_cache,
                         cache=self.cache if use_cache else None,
                         workers=self.workers, echo=echo,
                         store=self.store, backend=self.backend,
                         cluster=cluster, listen=listen,
                         unit_attempts=unit_attempts,
                         unit_deadline=unit_deadline,
                         cluster_deadline=cluster_deadline,
                         prepare=lambda name, size, unr: self.prepare(
                             name, n=size, unroll=unr))

    def speedup(self, workloads: Sequence[str], nin: int = 4,
                nout: int = 2, ninstr: int = 16,
                algorithm: str = "iterative",
                limits: Optional[SearchLimits] = None,
                n: Optional[int] = None, unroll: Optional[int] = None,
                max_nodes: int = 40, area_budget: float = 2.0,
                area_method: str = "knapsack"):
        """Measured end-to-end speedup rows (:func:`repro.exec.
        run_speedup`), sharing preparation (the in-process memo and the
        store), identification and the baseline-run artifact with every
        other session call."""
        from .exec.speedup import run_speedup

        return run_speedup(
            workloads, nin=nin, nout=nout, ninstr=ninstr,
            algorithm=algorithm, model=self.model,
            limits=self._limits(limits), n=n, unroll=unroll,
            workers=self.workers, max_nodes=max_nodes,
            area_budget=area_budget, area_method=area_method,
            store=self.store, cache=self.cache, backend=self.backend,
            prepare=lambda name, size, unr: self.prepare(
                name, n=size, unroll=unr))

    def run_batch(self, workload: str, count: int,
                  n: Optional[int] = None, unroll: Optional[int] = None,
                  rewrite: bool = False, algorithm: str = "iterative",
                  nin: int = 4, nout: int = 2, ninstr: int = 16,
                  limits: Optional[SearchLimits] = None,
                  max_nodes: int = 40):
        """Execute one workload over *count* input lanes
        (:func:`repro.exec.speedup.measure_batch`), sharing preparation
        — and, with ``rewrite=True``, selection — with every other
        session call through the in-process memo and the store.  The
        compiled-code memo is process-wide, so a batch after a sweep
        reuses the sweep's region closures."""
        from .exec.speedup import measure_batch

        app = self.prepare(workload, n=n, unroll=unroll)
        selection = None
        if rewrite:
            selection = self.select(
                workload, algorithm=algorithm, nin=nin, nout=nout,
                ninstr=ninstr, limits=limits, n=n, unroll=unroll,
                max_nodes=max_nodes)
        return measure_batch(app, count, model=self.model, n=n,
                             selection=selection, backend=self.backend)

    def check(self, workload: str, algorithm: str = "iterative",
              nin: int = 4, nout: int = 2, ninstr: int = 16,
              limits: Optional[SearchLimits] = None,
              n: Optional[int] = None, unroll: Optional[int] = None,
              max_nodes: int = 40):
        """Statically verify one workload end to end (``repro check``).

        Three phases, each reported separately in the returned
        :class:`~repro.analysis.report.CheckReport`:

        1. **baseline** — the full IR verifier over the optimised
           module (CFG shape, opcode contracts, def-before-use);
        2. **selection** — every cut the chosen algorithm returns,
           re-validated by the independent mask-based checker
           (convexity, port budgets, forbidden ops, metric agreement);
        3. **rewritten** — the ISE-rewritten clone: full module
           verification, ISE/AFU netlist contracts, and preservation
           of each block's memory/call chain.

        Pure analysis — nothing is executed; ``report.ok`` is the gate
        currency (warnings don't fail it).
        """
        from .analysis import check_cut_record, check_rewrite, verify_module
        from .analysis.diagnostics import VerificationError
        from .analysis.report import CheckReport
        from .exec.rewrite import RewriteError, rewrite_module

        app = self.prepare(workload, n=n, unroll=unroll)
        report = CheckReport(workload=workload, algorithm=algorithm,
                             nin=nin, nout=nout, ninstr=ninstr,
                             functions=len(app.module.functions))
        report.phases["baseline"] = verify_module(app.module)

        selection_diags = []
        selection = None
        try:
            selection = self.select(
                workload, algorithm=algorithm, nin=nin, nout=nout,
                ninstr=ninstr, limits=limits, n=n, unroll=unroll,
                max_nodes=max_nodes)
        except VerificationError as exc:
            # The in-path assertion (on under $REPRO_VERIFY) fired
            # first; fold its diagnostics into the report instead of
            # crashing the check verb.
            selection_diags.extend(exc.diagnostics)
        if selection is not None:
            for cut in selection.cuts:
                report.cuts_checked += 1
                selection_diags.extend(check_cut_record(cut, nin, nout))
        report.phases["selection"] = selection_diags

        rewrite_diags = []
        if selection is not None:
            try:
                # verify=False: check_rewrite below reports diagnostics
                # instead of raising mid-rewrite.
                result = rewrite_module(app.module, selection.cuts,
                                        self.model, verify=False)
            except (RewriteError, VerificationError) as exc:
                if isinstance(exc, VerificationError):
                    rewrite_diags.extend(exc.diagnostics)
                else:
                    from .analysis.diagnostics import Diagnostic

                    rewrite_diags.append(Diagnostic(
                        code="V306", message=str(exc)))
            else:
                report.rewritten_blocks = result.rewritten_blocks
                report.skipped = list(result.skipped)
                rewrite_diags.extend(
                    check_rewrite(app.module, result.module))
        report.phases["rewritten"] = rewrite_diags
        return report

    def fuzz(self, count: int = 100, seed: int = 0,
             shape: Optional[str] = None,
             artifacts: Optional[str] = None,
             nin: int = 4, nout: int = 2, ninstr: int = 8,
             limits: Optional[SearchLimits] = None,
             on_progress=None):
        """Differential fuzzing campaign (``repro fuzz``).

        Generates *count* seeded MiniC programs and runs each through
        the full differential oracle — walker vs ``block`` vs
        ``compiled``, baseline vs rewritten, single vs batched lanes,
        verifier and selection checker on every phase
        (:func:`repro.fuzz.run_campaign`).  Failures are shrunk to
        minimal reproducers under *artifacts*.  Generated modules are
        session-independent throwaways, so nothing here touches the
        store; the session contributes its cost model and search
        budget.
        """
        from .fuzz import run_campaign

        return run_campaign(
            count=count, seed=seed, shape=shape, artifacts=artifacts,
            on_progress=on_progress, model=self.model,
            limits=self._limits(limits), nin=nin, nout=nout,
            ninstr=ninstr)

    def afu(self, workload: str, ninstr: int = 2, nin: int = 4,
            nout: int = 2, limits: Optional[SearchLimits] = None,
            n: Optional[int] = None, unroll: Optional[int] = None,
            ) -> List[str]:
        """Verilog module texts for the selected custom instructions."""
        result = self.select(workload, algorithm="iterative", nin=nin,
                             nout=nout, ninstr=ninstr, limits=limits,
                             n=n, unroll=unroll)
        return [emit_verilog(build_datapath(cut, self.model,
                                            name=f"ise{k}"))
                for k, cut in enumerate(result.cuts)]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cache and store telemetry of this session (for ``repro cache
        stats`` and the warm-start benchmark)."""
        record = {
            "search_cache": self.cache.stats.as_dict(),
            "search_entries": len(self.cache),
            "store": None,
        }
        if self.store is not None:
            record["store"] = {
                "root": str(self.store.root),
                **self.store.stats.as_dict(),
            }
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self.store.root if self.store is not None else "memory"
        return f"<Session store={where}>"

"""Length-prefixed pickle frames: the shared wire format.

Both network tiers of the distributed fabric — the artifact-store
server (:mod:`repro.store.net`) and the sweep cluster leader
(:mod:`repro.cluster`) — exchange small control tuples over TCP.  This
module is the single place the framing lives: a 4-byte big-endian
length prefix followed by a pickled message.  Messages are plain
tuples of strings, numbers, ``bytes`` blobs and nested tuples — the
artifact payloads themselves travel as opaque byte strings and are
never unpickled by the server.

The protocol is for a *trusted* network (your own cluster): pickle is
not hardened against adversarial peers, exactly like the on-disk store
tier is not hardened against adversarial files.  A magic preamble on
every frame rejects accidental cross-protocol connections early.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Callable, Optional, Tuple

#: Frame preamble: rejects accidental connections from foreign
#: protocols (an HTTP client, a stray health checker) with a clean
#: error instead of a pickle traceback.
MAGIC = b"rpw1"

#: Frames above this size are refused — artifact payloads are small
#: pickles (node sets, stats dicts); anything larger is a protocol
#: error, not a legitimate message.
MAX_FRAME = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed frame or a peer that vanished mid-message."""


#: Process-wide fault-injection hook for the chaos fabric
#: (:mod:`repro.chaos`): called as ``hook(sock, op, frame)`` with
#: ``op="send"`` (full frame bytes) before a frame ships and
#: ``op="recv"`` (``frame=None``) before one is read.  The hook may
#: sleep (stall), close the socket and raise (reset), or send a frame
#: prefix and raise (truncation).  ``None`` — the default — is zero
#: overhead beyond one attribute test.  Process-wide on purpose: it
#: reaches server handler threads too, which is how the chaos runner
#: breaks connections it never sees.
_FAULT_HOOK: Optional[Callable] = None


def set_fault_hook(hook: Optional[Callable]) -> Optional[Callable]:
    """Install (or clear with ``None``) the wire fault hook; returns
    the previous hook so scopes can nest/restore."""
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    return previous


def send_msg(sock: socket.socket, message: Tuple) -> None:
    """Send one framed message (magic + length + pickle) on *sock*."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame of {len(payload)} bytes exceeds "
                        f"MAX_FRAME ({MAX_FRAME})")
    frame = MAGIC + _LEN.pack(len(payload)) + payload
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(sock, "send", frame)
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly *count* bytes, or ``None`` on a clean EOF at a frame
    boundary (mid-frame EOF raises :class:`WireError`)."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(min(count - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise WireError("peer closed the connection mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[Tuple]:
    """Receive one framed message, or ``None`` on a clean disconnect."""
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(sock, "recv", None)
    head = _recv_exact(sock, len(MAGIC) + _LEN.size)
    if head is None:
        return None
    if head[:len(MAGIC)] != MAGIC:
        raise WireError(f"bad frame magic {head[:len(MAGIC)]!r}")
    (length,) = _LEN.unpack(head[len(MAGIC):])
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise WireError("peer closed the connection mid-frame")
    try:
        return pickle.loads(payload)
    except Exception as exc:       # pickle raises a small zoo here
        raise WireError(f"undecodable frame: {exc}")


def parse_address(text: str, default_port: int = 0) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``HOST``) into a ``(host, port)`` pair."""
    text = text.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port = text.rpartition(":")
    if not sep:
        return text or "127.0.0.1", default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(f"bad address {text!r} (expected HOST:PORT)")


def connect(address: str, timeout: float = 30.0) -> socket.socket:
    """A connected TCP socket to ``HOST:PORT`` with *timeout* applied
    to every subsequent send/recv as well as the connect itself."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return sock

"""IR interpreter with 32-bit wrapping semantics and profiling.

Shares its arithmetic with the constant folder
(:func:`repro.passes.constant_folding.evaluate_pure_op`), so compile-time
and run-time evaluation can never diverge.  Used for:

* gathering basic-block execution profiles (the ``weight`` of each DFG);
* bit-exactness tests of the MiniC workloads against golden Python models;
* validating that AFU specialisation preserves program semantics;
* measuring end-to-end cycle counts of baseline and ISE-rewritten
  programs (:mod:`repro.exec`).

Three execution backends share this class (DESIGN.md §11–§12):

* ``"walk"`` — the original tree-walking reference loop, one dispatch
  per operation.  It is the semantic oracle the compiled backends are
  differentially tested against.
* ``"block"`` — per-block generated Python from
  :mod:`repro.interp.compile`: register reads become locals, opcode
  semantics are inlined, and step/profile counters are aggregated per
  block entry.
* ``"compiled"`` (the default) — the block backend plus *region*
  compilation: maximal straight-line block chains become one closure,
  so registers stay locals across internal jumps and the per-block
  dict sync disappears from hot paths.

Both compiled backends are bit-identical to the walker by obligation:
results, step counts, profiles, traps and the exact step index at which
:class:`ExecutionLimitExceeded` fires all match.

Select a backend per interpreter (``Interpreter(..., backend="walk")``),
or process-wide with ``$REPRO_BACKEND``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.function import BasicBlock, Function, Module
from ..ir.opcodes import Opcode
from ..ir.values import Const, Operand, wrap32
from ..passes.constant_folding import evaluate_pure_op
from .memory import Memory, TrapError
from .profile import ProfileData

#: The recognised execution backends, fastest-first: ``"compiled"``
#: (regions + per-block codegen), ``"block"`` (per-block codegen only),
#: ``"walk"`` (the reference oracle).
BACKENDS = ("compiled", "block", "walk")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend choice against ``$REPRO_BACKEND``.

    An explicit *backend* wins; otherwise the environment variable
    decides, and the compiled backend is the default.  Unknown names
    raise ``ValueError`` rather than silently running on the wrong
    engine.
    """
    chosen = backend
    if chosen is None:
        chosen = os.environ.get("REPRO_BACKEND", "").strip() or "compiled"
    if chosen not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(
            f"unknown execution backend {chosen!r}; known: {known}")
    return chosen


class ExecutionLimitExceeded(RuntimeError):
    """The step budget ran out — almost certainly a non-terminating loop."""


@dataclass
class RunResult:
    """Outcome of one top-level function execution."""

    value: Optional[int]
    steps: int


class Interpreter:
    """Executes functions of one module against a :class:`Memory` image."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 profile: Optional[ProfileData] = None,
                 max_steps: int = 50_000_000,
                 backend: Optional[str] = None) -> None:
        """Bind a module (and optional memory/profile) for execution.

        Args:
            module: the program to execute.
            memory: memory image (a fresh one is built when omitted).
            profile: profile sink shared across runs (fresh by default).
            max_steps: cumulative step budget across ``run`` calls.
            backend: ``"walk"``, ``"block"`` or ``"compiled"``;
                ``None`` defers to ``$REPRO_BACKEND``, default
                compiled.
        """
        self.module = module
        self.memory = memory if memory is not None else Memory(module)
        self.profile = profile if profile is not None else ProfileData()
        self.max_steps = max_steps
        self.backend = resolve_backend(backend)
        self._steps = 0
        self._tables: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    def run(self, func_name: str, args: Sequence[int] = ()) -> RunResult:
        """Execute ``func_name(*args)``; returns its value and step count."""
        start_steps = self._steps
        value = self._call(func_name, [wrap32(a) for a in args], depth=0)
        executed = self._steps - start_steps
        self.profile.steps += executed
        return RunResult(value=value, steps=executed)

    # ------------------------------------------------------------------
    def _call(self, func_name: str, args: List[int],
              depth: int) -> Optional[int]:
        if depth > 200:
            raise TrapError(f"call depth exceeded at {func_name!r}")
        func = self.module.functions.get(func_name)
        if func is None:
            raise TrapError(f"call to unknown function {func_name!r}")
        if len(args) != len(func.params):
            raise TrapError(
                f"{func_name!r} expects {len(func.params)} args, "
                f"got {len(args)}")
        self.profile.record_call(func_name)
        regs: Dict[str, int] = dict(zip(func.params, args))
        if self.backend == "walk":
            return self._run_walk(func, func_name, regs, depth)
        return self._run_compiled(func, func_name, regs, depth)

    # ------------------------------------------------------------------
    # Walking backend (the reference oracle).
    # ------------------------------------------------------------------
    def _run_walk(self, func: Function, func_name: str,
                  regs: Dict[str, int], depth: int) -> Optional[int]:
        """Reference block-by-block loop over :meth:`_exec_block_ref`."""
        record_block = self.profile.record_block
        get_block = func.block
        block = func.entry
        while True:
            record_block(func_name, block.label)
            outcome = self._exec_block_ref(func_name, block, regs, depth)
            if outcome.__class__ is tuple:
                return outcome[0]
            block = get_block(outcome)

    def _exec_block_ref(self, func_name: str, block: BasicBlock,
                        regs: Dict[str, int], depth: int):
        """Execute one block walker-style, one dispatch per operation.

        Returns the successor label, or a 1-tuple ``(value,)`` when the
        block returned — the same convention the compiled closures use,
        so this doubles as the compiled backend's per-block fallback.
        Loop-invariant lookups (the operand resolver, memory accessors,
        the step budget) are hoisted out of the hot loop; the step
        counter runs in a local mirror synced back on every exit path.
        """
        value = self._value
        memory = self.memory
        max_steps = self.max_steps
        steps = self._steps
        next_label: Optional[str] = None
        try:
            for insn in block.instructions:
                steps += 1
                if steps > max_steps:
                    raise ExecutionLimitExceeded(
                        f"exceeded {max_steps} steps in {func_name!r}")
                op = insn.opcode
                if op is Opcode.BR:
                    cond = value(insn.operands[0], regs)
                    next_label = insn.targets[0] if cond != 0 \
                        else insn.targets[1]
                    break
                if op is Opcode.JMP:
                    next_label = insn.targets[0]
                    break
                if op is Opcode.RET:
                    if insn.operands:
                        return (value(insn.operands[0], regs),)
                    return (None,)
                if op is Opcode.LOAD:
                    index = value(insn.operands[0], regs)
                    regs[insn.dest] = memory.load(insn.array, index)
                    continue
                if op is Opcode.STORE:
                    index = value(insn.operands[0], regs)
                    stored = value(insn.operands[1], regs)
                    memory.store(insn.array, index, stored)
                    continue
                if op is Opcode.ISE:
                    # Fused custom instruction (repro.exec): evaluate the
                    # bound AFU functionally and write back every output
                    # port.  The AFU shares evaluate_pure_op, so results
                    # are bit-identical to the software it replaced.
                    values = [value(a, regs) for a in insn.operands]
                    try:
                        outputs = insn.afu.evaluate(values)
                    except ZeroDivisionError:
                        raise TrapError(
                            f"trap inside custom instruction {insn} "
                            f"(division by zero)")
                    for dest, out in zip(insn.dests, outputs):
                        regs[dest] = out
                    continue
                if op is Opcode.CALL:
                    call_args = [value(a, regs)
                                 for a in insn.operands]
                    self._steps = steps
                    try:
                        result = self._call(insn.callee, call_args,
                                            depth + 1)
                    finally:
                        steps = self._steps
                    if insn.dest is not None:
                        if result is None:
                            raise TrapError(
                                f"void result of {insn.callee!r} used")
                        regs[insn.dest] = result
                    continue
                # Pure operation: shared semantics with the folder.
                values = [value(a, regs) for a in insn.operands]
                result = evaluate_pure_op(op, values)
                if result is None:
                    raise TrapError(f"trap in {insn} (division by zero?)")
                regs[insn.dest] = result
            else:
                raise TrapError(
                    f"block {block.label} fell through without terminator")
        finally:
            self._steps = steps
        if next_label is None:
            raise TrapError("terminator produced no successor")
        return next_label

    # ------------------------------------------------------------------
    # Compiled backend (repro.interp.compile).
    # ------------------------------------------------------------------
    def _run_compiled(self, func: Function, func_name: str,
                      regs: Dict[str, int], depth: int) -> Optional[int]:
        """Dispatch loop over compiled region/block closures.

        The per-function table maps every label to its closure; under
        the default backend region heads carry multi-block closures
        (which bump internal block counts themselves, via ``counts``
        passed as the closures' ``C`` parameter) and region-tail labels
        start lazy — they are compiled per block on first dispatch,
        which only happens on fallback paths.  Block entry counts are
        tallied in a local dict and folded into the profile once per
        frame (also on exceptions, matching the walker's
        record-before-execute order in aggregate).  Units the
        generator refused run on :meth:`_exec_block_ref` instead, as
        does any entry whose live-in registers are not all defined
        (:class:`~repro.interp.compile.UndefinedEntryRead` — the
        reference executor reproduces the walker's exact trap point,
        replaying a region head one block at a time).
        """
        from .compile import (UndefinedEntryRead, build_function_table,
                              get_block_code)

        table = self._tables.get(func_name)
        if table is None:
            table = build_function_table(
                func, regions=self.backend != "block")
            self._tables[func_name] = table
        memory = self.memory
        load = memory.load
        store = memory.store
        next_depth = depth + 1

        def call(callee, args, _call=self._call, _depth=next_depth):
            return _call(callee, args, _depth)

        counts: Dict[str, int] = {}
        counts_get = counts.get
        label = func.entry.label
        try:
            while True:
                counts[label] = counts_get(label, 0) + 1
                entry = table[label]
                code = entry[0]
                if code is None:        # lazy region-tail slot
                    code = get_block_code(entry[1])
                    entry[0] = code
                fn = code.fn
                if fn is None:
                    outcome = self._exec_block_ref(func_name, entry[1],
                                                   regs, depth)
                else:
                    try:
                        outcome = fn(self, regs, load, store, call,
                                     func_name, counts)
                    except UndefinedEntryRead:
                        outcome = self._exec_block_ref(
                            func_name, entry[1], regs, depth)
                if outcome.__class__ is tuple:
                    return outcome[0]
                label = outcome
        finally:
            self.profile.record_block_entries(func_name, counts)

    @staticmethod
    def _value(operand: Operand, regs: Dict[str, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        value = regs.get(operand.name)
        if value is None:
            raise TrapError(f"read of undefined register %{operand.name}")
        return value


def execute(module: Module, func_name: str, args: Sequence[int] = (),
            memory: Optional[Memory] = None,
            backend: Optional[str] = None,
            ) -> RunResult:
    """One-shot convenience execution."""
    return Interpreter(module, memory=memory,
                       backend=backend).run(func_name, args)


def profile_module(module: Module, func_name: str,
                   args: Sequence[int] = (),
                   memory: Optional[Memory] = None,
                   backend: Optional[str] = None,
                   ) -> ProfileData:
    """Run ``func_name`` and return the gathered profile."""
    interp = Interpreter(module, memory=memory, backend=backend)
    interp.run(func_name, args)
    return interp.profile

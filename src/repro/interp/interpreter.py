"""IR interpreter with 32-bit wrapping semantics and profiling.

Shares its arithmetic with the constant folder
(:func:`repro.passes.constant_folding.evaluate_pure_op`), so compile-time
and run-time evaluation can never diverge.  Used for:

* gathering basic-block execution profiles (the ``weight`` of each DFG);
* bit-exactness tests of the MiniC workloads against golden Python models;
* validating that AFU specialisation preserves program semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.function import Function, Module
from ..ir.instructions import Instruction
from ..ir.opcodes import Opcode
from ..ir.values import Const, Operand, Reg, wrap32
from ..passes.constant_folding import evaluate_pure_op
from .memory import Memory, TrapError
from .profile import ProfileData


class ExecutionLimitExceeded(RuntimeError):
    """The step budget ran out — almost certainly a non-terminating loop."""


@dataclass
class RunResult:
    """Outcome of one top-level function execution."""

    value: Optional[int]
    steps: int


class Interpreter:
    """Executes functions of one module against a :class:`Memory` image."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 profile: Optional[ProfileData] = None,
                 max_steps: int = 50_000_000) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory(module)
        self.profile = profile if profile is not None else ProfileData()
        self.max_steps = max_steps
        self._steps = 0

    # ------------------------------------------------------------------
    def run(self, func_name: str, args: Sequence[int] = ()) -> RunResult:
        """Execute ``func_name(*args)``; returns its value and step count."""
        start_steps = self._steps
        value = self._call(func_name, [wrap32(a) for a in args], depth=0)
        executed = self._steps - start_steps
        self.profile.steps += executed
        return RunResult(value=value, steps=executed)

    # ------------------------------------------------------------------
    def _call(self, func_name: str, args: List[int],
              depth: int) -> Optional[int]:
        if depth > 200:
            raise TrapError(f"call depth exceeded at {func_name!r}")
        func = self.module.functions.get(func_name)
        if func is None:
            raise TrapError(f"call to unknown function {func_name!r}")
        if len(args) != len(func.params):
            raise TrapError(
                f"{func_name!r} expects {len(func.params)} args, "
                f"got {len(args)}")
        self.profile.record_call(func_name)

        regs: Dict[str, int] = dict(zip(func.params, args))
        block = func.entry
        while True:
            self.profile.record_block(func_name, block.label)
            next_label: Optional[str] = None
            for insn in block.instructions:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise ExecutionLimitExceeded(
                        f"exceeded {self.max_steps} steps in {func_name!r}")
                op = insn.opcode
                if op is Opcode.BR:
                    cond = self._value(insn.operands[0], regs)
                    next_label = insn.targets[0] if cond != 0 \
                        else insn.targets[1]
                    break
                if op is Opcode.JMP:
                    next_label = insn.targets[0]
                    break
                if op is Opcode.RET:
                    if insn.operands:
                        return self._value(insn.operands[0], regs)
                    return None
                if op is Opcode.LOAD:
                    index = self._value(insn.operands[0], regs)
                    regs[insn.dest] = self.memory.load(insn.array, index)
                    continue
                if op is Opcode.STORE:
                    index = self._value(insn.operands[0], regs)
                    value = self._value(insn.operands[1], regs)
                    self.memory.store(insn.array, index, value)
                    continue
                if op is Opcode.ISE:
                    # Fused custom instruction (repro.exec): evaluate the
                    # bound AFU functionally and write back every output
                    # port.  The AFU shares evaluate_pure_op, so results
                    # are bit-identical to the software it replaced.
                    values = [self._value(a, regs) for a in insn.operands]
                    try:
                        outputs = insn.afu.evaluate(values)
                    except ZeroDivisionError:
                        raise TrapError(
                            f"trap inside custom instruction {insn} "
                            f"(division by zero)")
                    for dest, value in zip(insn.dests, outputs):
                        regs[dest] = value
                    continue
                if op is Opcode.CALL:
                    call_args = [self._value(a, regs)
                                 for a in insn.operands]
                    result = self._call(insn.callee, call_args, depth + 1)
                    if insn.dest is not None:
                        if result is None:
                            raise TrapError(
                                f"void result of {insn.callee!r} used")
                        regs[insn.dest] = result
                    continue
                # Pure operation: shared semantics with the folder.
                values = [self._value(a, regs) for a in insn.operands]
                result = evaluate_pure_op(op, values)
                if result is None:
                    raise TrapError(f"trap in {insn} (division by zero?)")
                regs[insn.dest] = result
            else:
                raise TrapError(
                    f"block {block.label} fell through without terminator")
            if next_label is None:
                raise TrapError("terminator produced no successor")
            block = func.block(next_label)

    @staticmethod
    def _value(operand: Operand, regs: Dict[str, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        value = regs.get(operand.name)
        if value is None:
            raise TrapError(f"read of undefined register %{operand.name}")
        return value


def execute(module: Module, func_name: str, args: Sequence[int] = (),
            memory: Optional[Memory] = None,
            ) -> RunResult:
    """One-shot convenience execution."""
    return Interpreter(module, memory=memory).run(func_name, args)


def profile_module(module: Module, func_name: str,
                   args: Sequence[int] = (),
                   memory: Optional[Memory] = None,
                   ) -> ProfileData:
    """Run ``func_name`` and return the gathered profile."""
    interp = Interpreter(module, memory=memory)
    interp.run(func_name, args)
    return interp.profile

"""Batched execution: one compiled workload over N input records.

The single-input path (:func:`repro.interp.interpreter.execute`) pays,
for *every* input: a fresh :class:`~repro.interp.memory.Memory` (one
list per global array), a driver run to fill it, a fresh
:class:`~repro.interp.interpreter.Interpreter` and — first call per
function — a dispatch-table build, which hashes every basic block to
key the code memo.  At serving scale those costs dwarf the compiled
loop itself.  :func:`run_batch` hoists all of it out of the input loop:

* **one** interpreter executes every lane, so dispatch tables (and the
  region closures behind them) are built once per function, not once
  per input;
* **one** memory image is reset in place between lanes — each row is
  restored from a precomputed template with a slice assignment, then
  the lane's overlay arrays are written on top — instead of rebuilding
  the dict-of-lists per input;
* per-lane state stays **isolated**: the step counter restarts at zero
  with the lane's own budget, each lane gets a fresh
  :class:`~repro.interp.profile.ProfileData`, and a lane that traps or
  exhausts its budget is recorded in its :class:`LaneResult` without
  poisoning the lanes after it.

Lane semantics are walker-exact by construction: a batch is
bit-identical — per lane: value, steps, profile, trap message — to
running each lane on a fresh single-input interpreter with the same
backend, and therefore (through the backend-equivalence obligation) to
the reference walker.  ``tests/interp/test_batch_equivalence.py``
enforces this across every workload, backend and rewritten module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.function import Module
from ..ir.opcodes import Opcode
from .interpreter import ExecutionLimitExceeded, Interpreter
from .memory import Memory, TrapError
from .profile import ProfileData

__all__ = ["BatchResult", "Lane", "LaneResult", "driver_lanes",
           "image_verifier", "run_batch"]


@dataclass(frozen=True)
class Lane:
    """One input record of a batch.

    Attributes:
        args: argument values for the entry function.
        arrays: overlay written on top of the module's initial memory
            image before the lane runs — array name to the values
            stored from index 0 (a *partial* row is fine; untouched
            suffixes keep their initial values).
        max_steps: per-lane step budget override; ``None`` uses the
            batch-wide budget.
    """

    args: Tuple[int, ...] = ()
    arrays: Mapping[str, Sequence[int]] = field(default_factory=dict)
    max_steps: Optional[int] = None


@dataclass
class LaneResult:
    """Outcome of one lane: the single-input result, isolated.

    ``trap`` carries the walker-identical trap message when the lane
    faulted (``limit`` distinguishes a step-budget expiry from a
    semantic trap); ``steps`` is exact in every case — on a fault it is
    the step index the exception fired at.  ``verified`` is ``None``
    when no verifier ran (no verifier given, or the lane faulted),
    else the verifier's verdict.  ``arrays`` holds the lane's final
    memory image only when the batch was run with ``keep_arrays``.
    """

    index: int
    value: Optional[int] = None
    steps: int = 0
    trap: Optional[str] = None
    limit: bool = False
    profile: ProfileData = field(default_factory=ProfileData)
    verified: Optional[bool] = None
    arrays: Optional[Dict[str, List[int]]] = None

    @property
    def ok(self) -> bool:
        """True when the lane completed without trap or budget expiry."""
        return self.trap is None


@dataclass
class BatchResult:
    """All lane results of one :func:`run_batch` call, in lane order."""

    entry: str
    backend: str
    lanes: List[LaneResult] = field(default_factory=list)

    @property
    def ok_count(self) -> int:
        """How many lanes completed without a trap or budget expiry."""
        return sum(1 for lane in self.lanes if lane.ok)

    @property
    def verified_count(self) -> int:
        """How many lanes a verifier ran on and accepted."""
        return sum(1 for lane in self.lanes if lane.verified)

    @property
    def total_steps(self) -> int:
        """Steps executed across all lanes (faulted lanes included)."""
        return sum(lane.steps for lane in self.lanes)


def run_batch(module: Module, entry: str, lanes: Sequence[Lane],
              backend: Optional[str] = None,
              max_steps: int = 50_000_000,
              verify: Optional[Callable[[Memory, LaneResult], None]] = None,
              keep_arrays: bool = False) -> BatchResult:
    """Execute ``entry`` over every lane with hoisted setup (module doc).

    Args:
        module: the program to execute.
        entry: function every lane calls.
        lanes: the input records, executed in order.
        backend: execution backend (``None`` defers to
            ``$REPRO_BACKEND``, default compiled — regions).
        max_steps: step budget per lane unless the lane overrides it.
        verify: optional check called with the memory image and the
            lane's result while the image still holds that lane's
            final state; an :class:`AssertionError` marks the lane
            ``verified=False``, any other outcome ``True``.  Faulted
            lanes are not verified.
        keep_arrays: copy each lane's final memory image into its
            result (meant for small differential batches, not for
            serving-scale runs).

    Returns:
        A :class:`BatchResult` with one :class:`LaneResult` per lane.
    """
    memory = Memory(module)
    arrays = memory.arrays
    # Only rows a STORE can reach — or an overlay writes — ever change;
    # resetting just those keeps the per-lane fixed cost proportional
    # to the mutable working set, not the whole memory image.
    mutable = _stored_arrays(module)
    for lane in lanes:
        mutable.update(lane.arrays.keys())
    resets = [(arrays[name], list(arrays[name]))
              for name in sorted(mutable) if name in arrays]
    interp = Interpreter(module, memory=memory, max_steps=max_steps,
                         backend=backend)
    result = BatchResult(entry=entry, backend=interp.backend)
    for index, lane in enumerate(lanes):
        for row, init in resets:
            row[:] = init
        for name, values in lane.arrays.items():
            memory.write_array(name, values)
        interp._steps = 0
        interp.max_steps = (lane.max_steps if lane.max_steps is not None
                            else max_steps)
        profile = ProfileData()
        interp.profile = profile
        lane_result = LaneResult(index=index, profile=profile)
        try:
            run = interp.run(entry, lane.args)
            lane_result.value = run.value
            lane_result.steps = run.steps
        except TrapError as exc:
            lane_result.trap = str(exc)
            lane_result.steps = interp._steps
        except ExecutionLimitExceeded as exc:
            lane_result.trap = str(exc)
            lane_result.limit = True
            lane_result.steps = interp._steps
        if verify is not None and lane_result.ok:
            try:
                verify(memory, lane_result)
            except AssertionError:
                lane_result.verified = False
            else:
                lane_result.verified = True
        if keep_arrays:
            lane_result.arrays = {name: list(row)
                                  for name, row in arrays.items()}
        result.lanes.append(lane_result)
    return result


def _stored_arrays(module: Module) -> set:
    """Names of every global array some ``STORE`` can write.

    Static over-approximation of the mutable memory rows: MiniC has no
    pointers and AFUs are pure, so a row no STORE names (and no lane
    overlay touches) holds its initial values for the whole batch.
    """
    names: set = set()
    for func in module.functions.values():
        for block in func.blocks:
            for insn in block.instructions:
                if insn.opcode is Opcode.STORE:
                    names.add(insn.array)
    return names


def image_verifier(expected_value: Optional[int],
                   expected_arrays: Mapping[str, Sequence[int]],
                   ) -> Callable[[Memory, LaneResult], None]:
    """Per-lane bit-identity check against one golden lane's final state.

    The returned callable plugs into :func:`run_batch`'s ``verify``
    hook: it asserts the lane's return value and the *entire* memory
    image match the expected state word-for-word.  The intended
    protocol (used by ``measure_batch``, ``repro run --inputs`` and the
    batch benchmark): run a one-lane reference batch with
    ``keep_arrays=True``, verify it against the workload's golden
    model, then hold every remaining lane to that reference — the
    comparison is two C-speed equality checks per lane, cheap enough
    to keep inside the timed loop.
    """
    def check(memory: Memory, lane: LaneResult) -> None:
        assert lane.value == expected_value
        assert memory.arrays == expected_arrays
    return check


def driver_lanes(module: Module,
                 driver: Callable[[Memory, int], Sequence[int]],
                 n: int, count: int) -> List[Lane]:
    """Materialise *count* identical lanes from one driver run.

    The driver executes **once** against a scratch memory image; the
    rows it touched become the lanes' shared overlay, trimmed to the
    prefix up to the last element the driver actually changed (rows —
    and suffixes — left at their initial values are omitted: the batch
    loop's template reset already restores those, and writing a full
    2048-element row per lane would swamp a small workload's own run
    time).  This models the serving-scale shape — many requests over
    one prepared workload — without paying the driver per input.
    """
    scratch = Memory(module)
    template = {name: list(row) for name, row in scratch.arrays.items()}
    args = tuple(driver(scratch, n))
    overlay: Dict[str, List[int]] = {}
    for name, row in scratch.arrays.items():
        init = template[name]
        if row == init:
            continue
        last = max(i for i, (new, old) in enumerate(zip(row, init))
                   if new != old)
        overlay[name] = list(row[:last + 1])
    lane = Lane(args=args, arrays=overlay)
    return [lane] * count

"""Compiled-block execution backend: per-block Python codegen.

The tree-walking interpreter (:mod:`repro.interp.interpreter`) pays, for
every executed operation, the full dispatch tax: an opcode comparison
chain, a list comprehension over operands with per-operand ``isinstance``
checks, a call into :func:`~repro.passes.constant_folding.
evaluate_pure_op` (itself a ~20-way comparison chain) and a dict write.
This module removes that tax by translating each basic block *once* into
generated Python source:

* registers become straight-line **local variables** — the register dict
  is read once per live-in register at block entry and written once per
  defined register at block exit (never for ``RET`` exits, where the
  frame dies anyway);
* maximal single-entry successor chains — **regions**, discovered from
  the CFG by :func:`discover_regions` — compile into *one* closure:
  live registers stay Python locals across the internal links, the
  per-block dict read/write-back disappears from hot paths, and each
  internal boundary costs one increment of the per-frame profile
  counts dict (``C``) instead of a dispatch-loop round trip.  Chains
  thread unconditional ``JMP`` links and, superblock-style, continue
  through a ``BR`` into a single-predecessor target — the off-trace
  side becomes an early *side exit* (walker-exact writebacks, then a
  return of the off-trace label), which is what fuses a loop header
  with its body into one closure per iteration;
* opcode semantics are **inlined**: the 32-bit two's-complement wrap of
  :func:`repro.ir.values.wrap32` is emitted as a closed-form expression
  (``((v & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000``) exactly where an
  operation can leave the canonical range, and *omitted* where it is a
  provable identity (bitwise ops, comparisons, ``ASHR``, ``REM``,
  ``SELECT``, ``COPY`` over canonical operands) — the differential suite
  in ``tests/interp/test_backend_equivalence.py`` holds the generated
  code bit-identical to ``evaluate_pure_op``;
* ``ISEInstruction`` nodes call a **pre-bound** ``FusedAFU.evaluate``
  (captured as a default argument, no attribute walk per execution);
* step counting is accumulated as **per-segment constants**: a segment
  (the ops between ``CALL`` boundaries, usually the whole block) commits
  ``I._steps += K`` once.  When the step budget would expire inside the
  segment, a generated *twin* of the segment with walker-exact per-op
  counting runs instead, so :class:`~repro.interp.interpreter.
  ExecutionLimitExceeded` fires at exactly the same step index — with
  exactly the side effects of the ops before it — as the reference
  walker (the PR's step-accounting bugfix);
* block entry counts are tallied by the dispatch loop into a plain local
  dict and folded into :class:`~repro.interp.profile.ProfileData` once
  per call frame (aggregate-on-exit), not per entry.

Compiled closures are cached in a process-wide **LRU** memo keyed on
structural digests (:func:`block_digest` per block,
:func:`region_digest` — a pure composition of member block digests —
per chain, both built on :func:`repro.store.keys.canonical_digest`):
repeated sweep/measure runs over cloned modules — ``rewrite_module``
always clones — reuse the compiled code of every block and region whose
instruction stream is unchanged, and eviction at :data:`MEMO_LIMIT`
drops the least-recently-used closure instead of the whole memo, so
long sweeps keep hot region closures warm.  Blocks the generator cannot
translate (malformed IR without a terminator, opcodes it does not know)
fall back to the walker's reference executor per block; the memo
records them as fallbacks so :func:`code_memo_stats` makes the fallback
rate observable.

The walker remains the semantic oracle: the compiled backend must match
its ``RunResult`` values, step counts, profiles, traps and measured
cycles bit-for-bit on every workload, which the differential test suite
and ``benchmarks/bench_interp.py`` enforce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.cfg import predecessors
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction, ISEInstruction
from ..ir.opcodes import Opcode
from ..ir.values import Const, Reg
from ..store.keys import canonical_digest

__all__ = [
    "BlockCode", "CodeMemoStats", "UndefinedEntryRead", "block_digest",
    "build_function_table", "clear_code_memo", "code_memo_stats",
    "compile_block", "compile_region", "discover_regions",
    "get_block_code", "get_region_code", "region_digest",
]


class UndefinedEntryRead(Exception):
    """Signal from a compiled block whose entry register loads failed.

    The generated header reads every live-in register eagerly; when one
    is missing, replaying the block op-by-op is the only way to
    reproduce the walker's exact trap point, step count and committed
    side effects (the undefined register might legitimately be read
    only *after* stores, or after an op that traps differently).  The
    dispatch loop catches this — raised before any op has executed —
    and re-runs the entry on the walker's reference executor.
    """

#: Bump when generated-code semantics change: digest-keyed closures from
#: the old generator must not be reused by a process mixing versions
#: (the memo is in-process only, so this mostly documents intent).
#: v2: region compilation — closures take the per-frame profile counts
#: dict ``C`` as a seventh parameter.
CODEGEN_VERSION = 2

_MASK = "4294967295"            # 0xFFFFFFFF
_SIGN = "2147483648"            # 0x80000000


@dataclass
class BlockCode:
    """One block's — or one region's — compiled artifact (or fallback).

    Attributes:
        fn: the generated closure, called as ``fn(I, R, LOAD, STORE,
            CALL, FN, C)`` with the interpreter, the register dict, the
            memory accessors, the call-back into ``Interpreter._call``,
            the executing function's name and the per-frame profile
            counts dict (region closures bump it at every internal
            block boundary; single-block closures ignore it); returns
            the successor label, or a 1-tuple ``(value,)`` for ``RET``.
            ``None`` when codegen fell back to the walker.
        label: the head block's label (diagnostics only).
        source: the generated Python text (debugging aid; the step
            constants live in here as per-segment literals).
        digest: structural digest the memo is keyed on.
        span: how many source blocks the closure threads (1 for a
            plain per-block artifact, the chain length for a region).
        reason: diagnostic code explaining a fallback (``fn=None``):
            ``C001``–``C003`` for honestly untranslatable units, a
            verifier code (``V002``, ``V102``, …) when the unit fell
            back because the IR itself is ill-formed.  ``None`` for
            compiled artifacts.
        detail: human-readable fallback detail (empty when compiled).
    """

    fn: Optional[object]
    label: str
    source: str = ""
    digest: str = ""
    span: int = 1
    reason: Optional[str] = None
    detail: str = ""


@dataclass
class CodeMemoStats:
    """Telemetry of the in-process code memo.

    ``compiled`` counts successful codegen runs (``regions`` of which
    were multi-block chains), ``hits`` counts memo reuse, ``fallbacks``
    counts untranslatable units, ``evictions`` counts LRU drops.
    ``fallback_codes`` breaks the fallbacks down by diagnostic code
    (see :attr:`BlockCode.reason`), so a sweep outcome or ``repro run``
    can report *why* blocks punted to the walker, not just how many.
    """

    compiled: int = 0
    hits: int = 0
    fallbacks: int = 0
    regions: int = 0
    evictions: int = 0
    fallback_codes: Dict[str, int] = field(default_factory=dict)

    def count_fallback(self, code: "BlockCode") -> None:
        """Record one fallback artifact under its diagnostic code."""
        self.fallbacks += 1
        reason = code.reason or "C001"
        self.fallback_codes[reason] = (
            self.fallback_codes.get(reason, 0) + 1)

    def as_dict(self) -> dict:
        """Flat dict for JSON artifacts and benchmark reports."""
        return {"compiled": self.compiled, "hits": self.hits,
                "fallbacks": self.fallbacks, "regions": self.regions,
                "evictions": self.evictions,
                "fallback_codes": dict(sorted(
                    self.fallback_codes.items()))}


#: Memo capacity.  Eviction is least-recently-used, one entry at a
#: time: a long-lived session sweeping huge grids cannot accumulate
#: closures (each of which pins its generated source and any pre-bound
#: AFU netlists) without bound, while the hot working set — re-looked
#: up on every run — stays warm instead of being dropped wholesale.
#: Far above any realistic working set, so eviction is a backstop.
MEMO_LIMIT = 4096

_MEMO: "OrderedDict[str, BlockCode]" = OrderedDict()
_STATS = CodeMemoStats()


def _memo_get(digest: str) -> Optional[BlockCode]:
    """LRU lookup: a hit refreshes the entry's recency."""
    cached = _MEMO.get(digest)
    if cached is not None:
        _MEMO.move_to_end(digest)
        _STATS.hits += 1
    return cached


def _memo_put(digest: str, code: BlockCode) -> None:
    """Insert under the cap, evicting least-recently-used entries.

    ``MEMO_LIMIT`` is read at call time so tests can shrink it and
    observe eviction without compiling thousands of blocks.
    """
    while _MEMO and len(_MEMO) >= MEMO_LIMIT:
        _MEMO.popitem(last=False)
        _STATS.evictions += 1
    _MEMO[digest] = code


def _operand_token(operand) -> Tuple:
    """Canonical encoding of one operand for :func:`block_digest`."""
    if isinstance(operand, Const):
        return ("c", operand.value)
    return ("r", operand.name)


def _afu_token(afu) -> Tuple:
    """Canonical encoding of a bound AFU's *observable* surface.

    Covers what :meth:`FusedAFU.evaluate` reads — the gate netlist,
    port order and output wires — plus the unit *name*, because the
    generated trap message bakes ``str(insn)`` (which includes the
    name) into the closure; two blocks may share compiled code only if
    even their trap text is identical.  Latency and area stay out:
    they are cost metadata with no execution semantics.
    """
    gates = tuple(
        (gate.opcode.value, gate.output,
         tuple(("i", w) if isinstance(w, int) else ("w", w)
               for w in gate.inputs))
        for gate in afu.gates)
    return (getattr(afu, "name", None), gates,
            tuple(afu.input_ports), tuple(afu.output_wires))


def block_digest(block: BasicBlock) -> str:
    """SHA-256 over the execution-relevant structure of *block*.

    Covers opcodes, destination/operand register names, constants,
    array symbols, callees, branch targets and — for ISE nodes — the
    full functional netlist of the bound AFU, so two digest-equal
    blocks are guaranteed to execute identically.  Register *names*
    are semantic here (they key the caller's register dict), unlike in
    :func:`repro.store.keys.dfg_digest` where they are cosmetic.
    """
    insns: List[Tuple] = []
    for insn in block.instructions:
        record: Tuple = (
            insn.opcode.value,
            insn.dest,
            tuple(_operand_token(op) for op in insn.operands),
            insn.array,
            insn.callee,
            insn.targets,
        )
        if isinstance(insn, ISEInstruction):
            record += (insn.dests, _afu_token(insn.afu))
        insns.append(record)
    return canonical_digest("blockcode-v1", CODEGEN_VERSION,
                            block.label, tuple(insns))


def region_digest(blocks: Sequence[BasicBlock]) -> str:
    """SHA-256 over a straight-line chain: its member block digests.

    Purely structural by construction — a rewritten module's cloned
    chain (identical instruction streams, identical labels, identical
    AFU netlists) derives the same key as the sweep that first
    compiled it, so ``repro run --rewrite`` reuses in-process region
    closures instead of recompiling them.
    """
    return canonical_digest(
        "regioncode-v1", CODEGEN_VERSION,
        tuple(block_digest(block) for block in blocks))


# ----------------------------------------------------------------------
# Code generation.
# ----------------------------------------------------------------------
class _UnsupportedBlock(Exception):
    """Raised by the generator when a unit cannot be translated.

    Carries a stable diagnostic code (``C0xx`` for honest codegen
    limits, a verifier ``V`` code when the real problem is ill-formed
    IR — see :data:`repro.analysis.diagnostics.CODES`), so fallbacks
    are diagnosed, never silent.
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class _Emitter:
    """Accumulates generated source lines with indentation tracking."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + line)


def _wrap(expr: str) -> str:
    """Closed-form ``wrap32`` of *expr* (expr may exceed 32 bits)."""
    return f"((({expr}) & {_MASK}) ^ {_SIGN}) - {_SIGN}"


def _wrap_unsigned(expr: str) -> str:
    """Closed-form ``wrap32`` of *expr* already in ``[0, 2**32)``."""
    return f"(({expr}) ^ {_SIGN}) - {_SIGN}"


class _BlockCompiler:
    """Translates a straight-line block chain into one Python closure.

    A single block is the degenerate chain of length one; longer
    chains (regions) keep registers in locals across their internal
    ``JMP`` links — internal terminators emit no writebacks and no
    return, just the per-frame profile-count bump (see module doc).
    """

    def __init__(self, blocks: Sequence[BasicBlock]) -> None:
        self.blocks = list(blocks)
        self.locals: Dict[str, str] = {}      # register name -> local
        self.defined: set = set()             # registers defined so far
        self.entry_reads: List[str] = []      # registers loaded at entry
        self.bindings: Dict[str, object] = {} # default-arg environment
        self.out = _Emitter()

    # -- naming --------------------------------------------------------
    def _local(self, reg_name: str) -> str:
        local = self.locals.get(reg_name)
        if local is None:
            local = f"v{len(self.locals)}"
            self.locals[reg_name] = local
        return local

    def _read(self, operand) -> str:
        """Expression text for one operand (atoms are self-delimiting)."""
        if isinstance(operand, Const):
            return f"({operand.value})"
        if not isinstance(operand, Reg):
            raise _UnsupportedBlock("C002", f"operand {operand!r}")
        if operand.name not in self.defined:
            if operand.name not in self.entry_reads:
                self.entry_reads.append(operand.name)
        return self._local(operand.name)

    def _define(self, reg_name: str) -> str:
        local = self._local(reg_name)
        self.defined.add(reg_name)
        return local

    def _bind(self, prefix: str, value) -> str:
        name = f"_{prefix}{len(self.bindings)}"
        self.bindings[name] = value
        return name

    # -- per-op emission ----------------------------------------------
    def _emit_insn(self, insn: Instruction, indent: int) -> None:
        """Emit one instruction (never a terminator) at *indent*."""
        op = insn.opcode
        emit = self.out.emit
        if op is Opcode.LOAD:
            index = self._read(insn.operands[0])
            dst = self._define(insn.dest)
            emit(f"{dst} = LOAD({insn.array!r}, {index})", indent)
            return
        if op is Opcode.STORE:
            index = self._read(insn.operands[0])
            value = self._read(insn.operands[1])
            emit(f"STORE({insn.array!r}, {index}, {value})", indent)
            return
        if op is Opcode.ISE:
            self._emit_ise(insn, indent)
            return
        if op is Opcode.CALL:
            self._emit_call(insn, indent)
            return
        self._emit_pure(insn, indent)

    def _emit_ise(self, insn: ISEInstruction, indent: int) -> None:
        evaluate = self._bind("A", insn.afu.evaluate)
        args = ", ".join(self._read(op) for op in insn.operands)
        args = f"({args},)" if insn.operands else "()"
        msg = (f"trap inside custom instruction {insn} "
               f"(division by zero)")
        emit = self.out.emit
        emit("try:", indent)
        emit(f"    _t = {evaluate}({args})", indent)
        emit("except ZeroDivisionError:", indent)
        emit(f"    raise _TE({msg!r})", indent)
        # Positional indexing mirrors the walker's zip(dests, outputs):
        # lengths are equal by construction (rewrite.py builds both).
        for i, dest in enumerate(insn.dests):
            emit(f"{self._define(dest)} = _t[{i}]", indent)

    def _emit_call(self, insn: Instruction, indent: int) -> None:
        args = ", ".join(self._read(op) for op in insn.operands)
        args = f"({args},)" if insn.operands else "()"
        emit = self.out.emit
        if insn.dest is None:
            emit(f"CALL({insn.callee!r}, {args})", indent)
            return
        emit(f"_t = CALL({insn.callee!r}, {args})", indent)
        emit("if _t is None:", indent)
        void_msg = f"void result of {insn.callee!r} used"
        emit(f"    raise _TE({void_msg!r})", indent)
        emit(f"{self._define(insn.dest)} = _t", indent)

    def _emit_pure(self, insn: Instruction, indent: int) -> None:
        """Inline the ``evaluate_pure_op`` semantics of one pure op."""
        op = insn.opcode
        emit = self.out.emit
        reads = [self._read(operand) for operand in insn.operands]
        if insn.dest is None:
            raise _UnsupportedBlock("V102",
                                    f"pure op without dest: {insn}")

        if op in (Opcode.DIV, Opcode.REM):
            a, b = reads
            msg = f"trap in {insn} (division by zero?)"
            divisor = insn.operands[1]
            if isinstance(divisor, Const) and divisor.value == 0:
                # Constant zero divisor: unconditionally traps, exactly
                # like the walker reaching this op.
                emit(f"raise _TE({msg!r})", indent)
                raise _DeadCode()
            if not isinstance(divisor, Const):
                emit(f"if {b} == 0:", indent)
                emit(f"    raise _TE({msg!r})", indent)
            dst = self._define(insn.dest)
            if op is Opcode.DIV:
                # int(a / b): float division truncates toward zero and
                # is exact for 32-bit magnitudes; only -2**31 / -1
                # leaves the canonical range, hence the wrap.
                emit(f"{dst} = {_wrap(f'int({a} / {b})')}", indent)
            else:
                # |a - trunc(a/b)*b| < |b| <= 2**31: wrap is identity.
                emit(f"{dst} = {a} - int({a} / {b}) * {b}", indent)
            return

        dst = self._define(insn.dest)
        if op is Opcode.ADD:
            expr = _wrap(f"{reads[0]} + {reads[1]}")
        elif op is Opcode.SUB:
            expr = _wrap(f"{reads[0]} - {reads[1]}")
        elif op is Opcode.MUL:
            expr = _wrap(f"{reads[0]} * {reads[1]}")
        elif op is Opcode.NEG:
            expr = _wrap(f"-{reads[0]}")
        elif op is Opcode.AND:
            expr = f"{reads[0]} & {reads[1]}"
        elif op is Opcode.OR:
            expr = f"{reads[0]} | {reads[1]}"
        elif op is Opcode.XOR:
            expr = f"{reads[0]} ^ {reads[1]}"
        elif op is Opcode.NOT:
            expr = f"~{reads[0]}"
        elif op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            amount = insn.operands[1]
            shift = (f"({amount.value & 31})" if isinstance(amount, Const)
                     else f"({reads[1]} & 31)")
            if op is Opcode.SHL:
                expr = _wrap(f"({reads[0]} & {_MASK}) << {shift}")
            elif op is Opcode.LSHR:
                expr = _wrap_unsigned(
                    f"({reads[0]} & {_MASK}) >> {shift}")
            else:       # ASHR of a canonical value stays canonical
                expr = f"{reads[0]} >> {shift}"
        elif op is Opcode.EQ:
            expr = f"1 if {reads[0]} == {reads[1]} else 0"
        elif op is Opcode.NE:
            expr = f"1 if {reads[0]} != {reads[1]} else 0"
        elif op is Opcode.SLT:
            expr = f"1 if {reads[0]} < {reads[1]} else 0"
        elif op is Opcode.SLE:
            expr = f"1 if {reads[0]} <= {reads[1]} else 0"
        elif op is Opcode.SGT:
            expr = f"1 if {reads[0]} > {reads[1]} else 0"
        elif op is Opcode.SGE:
            expr = f"1 if {reads[0]} >= {reads[1]} else 0"
        elif op is Opcode.COPY:
            expr = reads[0]
        elif op is Opcode.SELECT:
            expr = f"{reads[1]} if {reads[0]} != 0 else {reads[2]}"
        else:
            raise _UnsupportedBlock("C001", f"opcode {op}")
        self.out.emit(f"{dst} = {expr}", indent)

    def _emit_internal_exit(self, insn: Instruction,
                            fallthrough: str) -> None:
        """Emit a mid-region terminator (control stays in the closure).

        An internal ``JMP`` is pure fall-through — its step was counted
        by the segment, and the next block's code follows immediately.
        An internal ``BR`` keeps the on-trace side inline and emits a
        *side exit* for the other target: every register defined so far
        (all of which executed — the trace is straight-line) is written
        back and the off-trace label is returned to the dispatch loop,
        exactly what the per-block backend would have done.
        """
        op = insn.opcode
        if op is Opcode.JMP:
            return
        if op is not Opcode.BR:
            raise _UnsupportedBlock("C003", f"internal terminator {op}")
        cond = self._read(insn.operands[0])
        then_label, else_label = insn.targets
        if fallthrough == then_label:
            test, exit_label = f"{cond} == 0", else_label
        else:
            test, exit_label = f"{cond} != 0", then_label
        emit = self.out.emit
        emit(f"if {test}:")
        for reg_name in sorted(self.defined):
            emit(f"    R[{reg_name!r}] = {self.locals[reg_name]}")
        emit(f"    return {exit_label!r}")

    def _emit_terminator(self, insn: Instruction, indent: int) -> None:
        op = insn.opcode
        emit = self.out.emit
        if op is not Opcode.RET:
            # Writebacks keep the caller's register dict walker-exact
            # for successor blocks; a RET frame is discarded, so its
            # writebacks are dead and skipped.
            for reg_name in sorted(self.defined):
                emit(f"R[{reg_name!r}] = {self.locals[reg_name]}",
                     indent)
        if op is Opcode.BR:
            cond = self._read(insn.operands[0])
            then_label, else_label = insn.targets
            emit(f"return {then_label!r} if {cond} != 0 "
                 f"else {else_label!r}", indent)
        elif op is Opcode.JMP:
            emit(f"return {insn.targets[0]!r}", indent)
        elif op is Opcode.RET:
            value = (self._read(insn.operands[0])
                     if insn.operands else "(None)")
            emit(f"return ({value},)", indent)
        else:
            raise _UnsupportedBlock("C001", f"terminator {op}")

    # -- segments ------------------------------------------------------
    @staticmethod
    def _can_trap(insn: Instruction) -> bool:
        """True when *insn* can raise a run-time trap on the fast path.

        Such ops get an exact step-counter write emitted before them so
        a trap observes the same ``Interpreter._steps`` as the walker
        (the cumulative budget survives a caught trap identically).
        ``CALL`` is excluded: it always ends its segment, so the
        segment's full pre-commit is already exact at recursion time.
        """
        op = insn.opcode
        if op in (Opcode.LOAD, Opcode.STORE, Opcode.ISE):
            return True
        if op in (Opcode.DIV, Opcode.REM):
            divisor = insn.operands[1]
            return not isinstance(divisor, Const) or divisor.value == 0
        return False

    @staticmethod
    def _segments(block: BasicBlock) -> List[List[Instruction]]:
        """Split one block at CALL boundaries (a call ends its segment).

        Within a segment the step count is a compile-time constant; a
        callee's steps land between segments, so each segment's budget
        check observes exactly the walker's counter state.  Segments
        never span block boundaries — each block of a region carries
        its own, so the budget twin stays per-block exact.
        """
        segments: List[List[Instruction]] = []
        current: List[Instruction] = []
        for insn in block.instructions:
            current.append(insn)
            if insn.opcode is Opcode.CALL:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        return segments

    def _emit_segment(self, segment: List[Instruction],
                      fallthrough: Optional[str]) -> None:
        """Emit one segment: fast path + walker-exact budget twin.

        *fallthrough* names the next block of the region when this
        segment belongs to a mid-region block (``None`` in the final
        block): its terminator still costs a step (both paths count
        it) but is emitted by :meth:`_emit_internal_exit` — at most a
        conditional side exit — instead of the full writeback/return
        epilogue; on-trace control falls through to the next block's
        segments in the same closure.

        The twin runs only when the step budget expires inside this
        segment; it counts per op and is therefore *guaranteed* to
        raise before the segment ends, so it never needs writebacks or
        a return of its own.

        On the fast path the step counter normally commits as one
        constant, but every op that can *trap* gets an exact
        ``I._steps`` write first: a caller catching the ``TrapError``
        observes the identical counter (and remaining cumulative step
        budget) as under the walker.  Pure ops between trap points
        cannot raise, so their counts are unobservable until the next
        commit.
        """
        count = len(segment)
        emit = self.out.emit
        limit_msg = ("'exceeded ' + str(I.max_steps) + ' steps in ' + "
                     "repr(FN)")
        emit("_s = I._steps")
        emit(f"if _s + {count} > I.max_steps:")
        try:
            for insn in segment:
                emit("    I._steps += 1", 1)
                emit("    if I._steps > I.max_steps:", 1)
                emit(f"        raise _ELE({limit_msg})", 1)
                if not insn.is_terminator:
                    self._emit_insn(insn, indent=2)
            # Unreachable by construction (the budget expires within
            # the segment), kept as a hard stop should that ever drift.
            emit(f"    raise _ELE({limit_msg})", 1)
        except _DeadCode:
            pass
        has_traps = any(self._can_trap(insn) for insn in segment)
        if not has_traps:
            emit(f"I._steps = _s + {count}")
        committed = 0
        for index, insn in enumerate(segment):
            if has_traps and self._can_trap(insn):
                emit(f"I._steps = _s + {index + 1}")
                committed = index + 1
            elif (has_traps and committed < count
                    and (insn.is_terminator
                         or insn.opcode is Opcode.CALL)):
                # Re-commit the full constant before anything that can
                # observe the counter (a callee) or exit the block.
                emit(f"I._steps = _s + {count}")
                committed = count
            if insn.is_terminator:
                if fallthrough is None:
                    self._emit_terminator(insn, indent=1)
                else:
                    self._emit_internal_exit(insn, fallthrough)
            else:
                self._emit_insn(insn, indent=1)
        if has_traps and committed < count:
            emit(f"I._steps = _s + {count}")

    # -- driver --------------------------------------------------------
    def compile(self, digest: str) -> BlockCode:
        """Generate, ``compile()`` and instantiate the chain's closure."""
        blocks = self.blocks
        last = len(blocks) - 1
        for index, block in enumerate(blocks):
            terminator = block.terminator
            if terminator is None:
                # The walker's fall-through TrapError (and its exact
                # step accounting) is easier to inherit than to
                # replicate.  V002: this is an IR well-formedness
                # failure, not a codegen limitation.
                raise _UnsupportedBlock("V002", "no terminator")
            if index < last:
                nxt = blocks[index + 1].label
                if terminator.opcode is Opcode.JMP:
                    linked = terminator.targets[0] == nxt
                elif terminator.opcode is Opcode.BR:
                    # A degenerate BR (both targets equal) never links:
                    # the side-exit emission needs a distinct off-trace
                    # label.
                    linked = (nxt in terminator.targets
                              and terminator.targets[0]
                              != terminator.targets[1])
                else:
                    linked = False
                if not linked:
                    raise _UnsupportedBlock(
                        "C003",
                        "chain link is not a JMP/BR into the next block")
        body = _Emitter()
        self.out = body
        try:
            for index, block in enumerate(blocks):
                terminal = index == last
                fallthrough = None if terminal else blocks[index + 1].label
                for segment in self._segments(block):
                    self._emit_segment(segment, fallthrough=fallthrough)
                if not terminal:
                    # The walker records a block entry *before* running
                    # the block; the bump sits between the terminator's
                    # step accounting and the successor's first segment
                    # so a trap or budget expiry anywhere in the region
                    # folds identical counts into the profile.
                    succ = blocks[index + 1].label
                    body.emit(f"C[{succ!r}] = C.get({succ!r}, 0) + 1")
        except _DeadCode:
            pass        # an unconditional trap ends the chain early

        header = _Emitter()
        params = ["I", "R", "LOAD", "STORE", "CALL", "FN", "C"]
        params += [f"{name}={name}" for name in ("_TE", "_ELE", "_UE")]
        params += [f"{name}={name}" for name in self.bindings]
        header.emit(f"def _block({', '.join(params)}):", 0)
        if self.entry_reads:
            # A missing live-in register punts this entry back to the
            # walker (see UndefinedEntryRead) — no op has run yet, so
            # the replay is side-effect clean.
            header.emit("try:")
            for reg_name in self.entry_reads:
                header.emit(f"    {self.locals[reg_name]} = "
                            f"R[{reg_name!r}]")
            header.emit("except KeyError:")
            header.emit("    raise _UE from None")

        source = "\n".join(header.lines + body.lines) + "\n"
        from .interpreter import ExecutionLimitExceeded
        from .memory import TrapError

        namespace: Dict[str, object] = {
            "_TE": TrapError, "_ELE": ExecutionLimitExceeded,
            "_UE": UndefinedEntryRead,
        }
        namespace.update(self.bindings)
        kind = "block" if last == 0 else "region"
        code = compile(source, f"<repro:{kind}:{digest[:12]}>", "exec")
        exec(code, namespace)
        return BlockCode(fn=namespace["_block"], label=blocks[0].label,
                         source=source, digest=digest,
                         span=len(blocks))


class _DeadCode(Exception):
    """Internal signal: an unconditional trap makes the rest of the
    current emission path unreachable."""


def compile_block(block: BasicBlock,
                  digest: Optional[str] = None) -> BlockCode:
    """Compile *block* unconditionally (no memo); see the module doc.

    Returns a fallback :class:`BlockCode` (``fn=None``) when the block
    cannot be translated — the dispatch loop then runs that block on
    the walker's reference executor.
    """
    digest = digest if digest is not None else block_digest(block)
    try:
        return _BlockCompiler([block]).compile(digest)
    except _UnsupportedBlock as exc:
        return BlockCode(fn=None, label=block.label, digest=digest,
                         reason=exc.code, detail=exc.detail)


def compile_region(blocks: Sequence[BasicBlock],
                   digest: Optional[str] = None) -> BlockCode:
    """Compile a straight-line chain of blocks into one closure.

    The chain must be linked head-to-tail by unconditional ``JMP``
    terminators (as produced by :func:`discover_regions`); anything
    else — or any member block codegen cannot translate — returns a
    fallback artifact (``fn=None``), and the caller degrades to
    per-block compilation for the head.
    """
    blocks = list(blocks)
    digest = digest if digest is not None else region_digest(blocks)
    try:
        return _BlockCompiler(blocks).compile(digest)
    except _UnsupportedBlock as exc:
        return BlockCode(fn=None, label=blocks[0].label, digest=digest,
                         span=len(blocks), reason=exc.code,
                         detail=exc.detail)


def get_block_code(block: BasicBlock) -> BlockCode:
    """Memoised :func:`compile_block`, keyed on :func:`block_digest`.

    The memo is process-wide: digest-equal blocks — the common case
    when sweeps and speedup runs clone modules per selection — share
    one compiled closure, so warm runs skip codegen entirely.
    """
    digest = block_digest(block)
    cached = _memo_get(digest)
    if cached is not None:
        return cached
    code = compile_block(block, digest)
    if code.fn is None:
        _STATS.count_fallback(code)
    else:
        _STATS.compiled += 1
    _memo_put(digest, code)
    return code


def get_region_code(blocks: Sequence[BasicBlock]) -> BlockCode:
    """Memoised :func:`compile_region`, keyed on :func:`region_digest`.

    Shares the process-wide LRU memo with per-block closures.  The key
    composes member block digests only, so sweeps, speedup measurement
    and CLI runs over digest-equal rewritten modules all reuse one
    region closure.
    """
    digest = region_digest(blocks)
    cached = _memo_get(digest)
    if cached is not None:
        return cached
    code = compile_region(blocks, digest)
    if code.fn is None:
        _STATS.count_fallback(code)
    else:
        _STATS.compiled += 1
        _STATS.regions += 1
    _memo_put(digest, code)
    return code


def _chain_continuation(block: BasicBlock,
                        candidates: Dict[str, BasicBlock]):
    """The label *block*'s chain falls through into, or ``None``.

    A ``JMP`` continues into its target when the target is a chain
    candidate (single predecessor, not the entry, not a self-loop).  A
    ``BR`` continues into one candidate target, superblock-style — the
    other side becomes the closure's side exit.  When both targets are
    candidates the one that does not immediately ``RET`` wins (it may
    extend the trace further — the typical shape is a loop body whose
    ``if`` skips to the latch, with an early ``return`` on the other
    arm); on a tie the then-target wins.  A degenerate ``BR`` with
    equal targets never continues.
    """
    terminator = block.terminator
    if terminator is None:
        return None
    if terminator.opcode is Opcode.JMP:
        target = terminator.targets[0]
        return target if target in candidates else None
    if terminator.opcode is not Opcode.BR:
        return None
    then_label, else_label = terminator.targets
    if then_label == else_label:
        return None
    viable = [label for label in (then_label, else_label)
              if label in candidates]
    if len(viable) == 2:
        viable.sort(key=lambda lbl: _ends_in_ret(candidates[lbl]))
    return viable[0] if viable else None


def _ends_in_ret(block: BasicBlock) -> bool:
    """True when *block* terminates in ``RET`` (trace-choice tiebreak)."""
    terminator = block.terminator
    return (terminator is not None
            and terminator.opcode is Opcode.RET)


def discover_regions(func: Function) -> List[List[BasicBlock]]:
    """Maximal single-entry block chains of *func*, heads first.

    A block is a chain *candidate* when it has exactly one predecessor
    and is neither the function entry nor its own predecessor.  Chains
    start at every non-candidate block and follow
    :func:`_chain_continuation` links — unconditional ``JMP`` targets
    and one side of a ``BR`` — consuming each candidate at most once;
    candidates no chain consumed (the off-trace side of a ``BR`` whose
    other side won, or members of unreachable cycles) then head chains
    of their own.  By construction every executed block transfer
    either stays inside one closure or lands on a chain head, so the
    dispatch loop never needs a mid-chain entry point.
    """
    preds = predecessors(func)
    entry_label = func.entry.label
    candidates: Dict[str, BasicBlock] = {}
    for block in func.blocks:
        label = block.label
        if label == entry_label:
            continue
        pred_labels = preds.get(label, [])
        if len(pred_labels) == 1 and pred_labels[0] != label:
            candidates[label] = block

    regions: List[List[BasicBlock]] = []

    def walk(head: BasicBlock) -> List[BasicBlock]:
        chain = [head]
        current = head
        while True:
            target = _chain_continuation(current, candidates)
            if target is None:
                break
            # Each candidate is consumed by exactly one chain; removal
            # keeps the walk terminating even on adversarial CFGs.
            current = candidates.pop(target)
            chain.append(current)
        return chain

    for block in func.blocks:
        if block.label not in candidates:
            regions.append(walk(block))
    while candidates:
        # Leftover candidates (off-trace BR sides, unreachable cycles)
        # in block order, longest-first from each: they head chains too.
        for block in func.blocks:
            if block.label in candidates:
                del candidates[block.label]
                regions.append(walk(block))
                break
    return regions


def build_function_table(func: Function,
                         regions: bool = True) -> Dict[str, list]:
    """Dispatch table ``label -> [code, block]`` for one function.

    With *regions* (the default) every multi-block straight-line chain
    compiles into one closure keyed on its head label; labels covered
    by a chain's tail get *lazy* slots (``code is None``), resolved to
    per-block closures on first dispatch — they are only ever
    dispatched on reference-fallback paths (a region head raising
    :class:`UndefinedEntryRead` replays block by block).  With
    ``regions=False`` every block gets its own eagerly compiled
    closure (the ``"block"`` backend).  Entries are mutable lists so
    the dispatch loop can fill lazy slots in place.
    """
    table: Dict[str, list] = {}
    if regions:
        for chain in discover_regions(func):
            head = chain[0]
            code = (get_region_code(chain) if len(chain) > 1
                    else get_block_code(head))
            if code.fn is None and len(chain) > 1:
                # Untranslatable chain: degrade to the head's own
                # per-block artifact (which may itself be a fallback).
                code = get_block_code(head)
            table[head.label] = [code, head]
    for block in func.blocks:
        if block.label not in table:
            code = None if regions else get_block_code(block)
            table[block.label] = [code, block]
    return table


def clear_code_memo() -> int:
    """Drop every memoised closure; returns how many were dropped.

    Used by cold-start benchmarks (``benchmarks/bench_interp.py``) and
    by tests that need to observe codegen itself.
    """
    dropped = len(_MEMO)
    _MEMO.clear()
    _STATS.compiled = _STATS.hits = _STATS.fallbacks = 0
    _STATS.regions = _STATS.evictions = 0
    _STATS.fallback_codes.clear()
    return dropped


def code_memo_stats() -> CodeMemoStats:
    """Live telemetry of the process-wide code memo."""
    return _STATS

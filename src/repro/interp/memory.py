"""Memory image for IR execution: the global arrays of a module."""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..ir.function import Module
from ..ir.values import wrap32


class TrapError(RuntimeError):
    """Run-time fault: out-of-bounds access or division by zero."""


class Memory:
    """The data memory of a running module: one row per global array.

    Loads and stores are bounds-checked; MiniC has no pointers, so any
    out-of-bounds index is a workload bug and traps immediately.
    """

    def __init__(self, module: Module) -> None:
        self.arrays: Dict[str, List[int]] = {
            g.name: list(g.init) for g in module.globals.values()
        }

    def _row(self, array: str, what: str) -> List[int]:
        """Look up a global array, trapping (never ``KeyError``) on an
        unknown name — all access paths fault consistently."""
        row = self.arrays.get(array)
        if row is None:
            raise TrapError(f"{what} unknown array {array!r}")
        return row

    def load(self, array: str, index: int) -> int:
        """Bounds-checked read of ``array[index]`` (traps when outside)."""
        row = self._row(array, "load from")
        if not 0 <= index < len(row):
            raise TrapError(
                f"load {array}[{index}] out of bounds (size {len(row)})")
        return row[index]

    def store(self, array: str, index: int, value: int) -> None:
        """Bounds-checked, 32-bit-wrapping write of ``array[index]``."""
        row = self._row(array, "store to")
        if not 0 <= index < len(row):
            raise TrapError(
                f"store {array}[{index}] out of bounds (size {len(row)})")
        row[index] = wrap32(value)

    # ------------------------------------------------------------------
    # Harness conveniences.
    # ------------------------------------------------------------------
    def write_array(self, array: str, values: Iterable[int],
                    offset: int = 0) -> None:
        """Bulk-fill an array (used by workload drivers)."""
        row = self._row(array, "write_array to")
        for i, value in enumerate(values):
            if offset + i >= len(row):
                raise TrapError(f"write_array overflows {array!r}")
            row[offset + i] = wrap32(value)

    def read_array(self, array: str, length: int = -1,
                   offset: int = 0) -> List[int]:
        """Copy out a slice of an array (whole row by default)."""
        row = self._row(array, "read_array from")
        if length < 0:
            length = len(row) - offset
        return list(row[offset:offset + length])

    def scalar(self, name: str) -> int:
        """Value of a global scalar (size-1 array)."""
        return self._row(name, "scalar read of")[0]

    def set_scalar(self, name: str, value: int) -> None:
        """Write a global scalar (size-1 array), 32-bit wrapped."""
        self._row(name, "scalar write of")[0] = wrap32(value)

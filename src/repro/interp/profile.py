"""Execution profiles: per-basic-block execution counts.

The merit function weighs each cut by how often its block runs; the
profile is gathered by actually executing the compiled workload in the IR
interpreter, exactly as the paper gathers MediaBench profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class ProfileData:
    """Block execution counts keyed by ``(function, block label)``."""

    counts: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)
    steps: int = 0

    def record_block(self, func: str, label: str) -> None:
        """Count one entry of block *label* in function *func*."""
        self.counts[(func, label)] += 1

    def record_block_entries(self, func: str,
                             entries: Dict[str, int]) -> None:
        """Fold a whole call frame's ``label -> entry count`` tally in.

        The compiled backend (:mod:`repro.interp.compile`) counts block
        entries in a plain local dict while executing and aggregates
        once per frame through this method — the aggregate totals are
        identical to the walker's per-entry :meth:`record_block` calls.
        """
        counts = self.counts
        for label, count in entries.items():
            counts[(func, label)] += count

    def record_call(self, func: str) -> None:
        """Count one invocation of function *func*."""
        self.calls[func] += 1

    def block_count(self, func: str, label: str) -> int:
        """Entries recorded for one ``(function, block label)`` pair."""
        return self.counts[(func, label)]

    def weights_for(self, func: str) -> Dict[str, float]:
        """Block label -> execution count, for one function."""
        return {
            label: float(count)
            for (f, label), count in self.counts.items()
            if f == func
        }

    def hottest(self, limit: int = 10) -> Tuple[Tuple[Tuple[str, str], int],
                                                ...]:
        """The *limit* most frequently entered blocks, hottest first."""
        return tuple(self.counts.most_common(limit))

    def merge(self, other: "ProfileData") -> None:
        """Fold another profile's counts, calls and steps into this one."""
        self.counts.update(other.counts)
        self.calls.update(other.calls)
        self.steps += other.steps

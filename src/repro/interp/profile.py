"""Execution profiles: per-basic-block execution counts.

The merit function weighs each cut by how often its block runs; the
profile is gathered by actually executing the compiled workload in the IR
interpreter, exactly as the paper gathers MediaBench profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class ProfileData:
    """Block execution counts keyed by ``(function, block label)``."""

    counts: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)
    steps: int = 0

    def record_block(self, func: str, label: str) -> None:
        self.counts[(func, label)] += 1

    def record_call(self, func: str) -> None:
        self.calls[func] += 1

    def block_count(self, func: str, label: str) -> int:
        return self.counts[(func, label)]

    def weights_for(self, func: str) -> Dict[str, float]:
        """Block label -> execution count, for one function."""
        return {
            label: float(count)
            for (f, label), count in self.counts.items()
            if f == func
        }

    def hottest(self, limit: int = 10) -> Tuple[Tuple[Tuple[str, str], int],
                                                ...]:
        return tuple(self.counts.most_common(limit))

    def merge(self, other: "ProfileData") -> None:
        self.counts.update(other.counts)
        self.calls.update(other.calls)
        self.steps += other.steps

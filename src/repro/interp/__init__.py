"""IR interpreter: execution, memory image, profiling."""

from .interpreter import (
    ExecutionLimitExceeded,
    Interpreter,
    RunResult,
    execute,
    profile_module,
)
from .memory import Memory, TrapError
from .profile import ProfileData

__all__ = [
    "Interpreter", "execute", "profile_module", "RunResult",
    "Memory", "TrapError", "ProfileData", "ExecutionLimitExceeded",
]

"""IR interpreter: execution, memory image, profiling, and the
compiled-block execution backend (DESIGN.md §11)."""

from .interpreter import (
    BACKENDS,
    ExecutionLimitExceeded,
    Interpreter,
    RunResult,
    execute,
    profile_module,
    resolve_backend,
)
from .memory import Memory, TrapError
from .profile import ProfileData

__all__ = [
    "Interpreter", "execute", "profile_module", "RunResult",
    "Memory", "TrapError", "ProfileData", "ExecutionLimitExceeded",
    "BACKENDS", "resolve_backend",
]

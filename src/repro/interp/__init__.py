"""IR interpreter: execution, memory image, profiling, the compiled
region/block execution backends and batched N-inputs-per-call execution
(DESIGN.md §11–§12)."""

from .batch import (
    BatchResult,
    Lane,
    LaneResult,
    driver_lanes,
    image_verifier,
    run_batch,
)
from .interpreter import (
    BACKENDS,
    ExecutionLimitExceeded,
    Interpreter,
    RunResult,
    execute,
    profile_module,
    resolve_backend,
)
from .memory import Memory, TrapError
from .profile import ProfileData

__all__ = [
    "Interpreter", "execute", "profile_module", "RunResult",
    "Memory", "TrapError", "ProfileData", "ExecutionLimitExceeded",
    "BACKENDS", "resolve_backend",
    "BatchResult", "Lane", "LaneResult", "driver_lanes", "image_verifier",
    "run_batch",
]

"""Schedule legality: why the paper's convexity constraint exists.

Section 5 of the paper argues that a non-convex cut is illegal because,
once the cut is collapsed into a single instruction that reads all its
inputs at issue and produces all its outputs at completion, *no* schedule
of the surrounding code can respect the dependences (Fig. 4).

This module makes that argument executable: :func:`schedule_with_cuts`
collapses the chosen cuts of one block into atomic macro-operations,
builds the resulting dependence graph, and list-schedules it.  Convex cuts
always schedule; a non-convex cut produces a dependence *cycle* (the cut
needs a value that can only be computed after the cut itself) and raises
:class:`CyclicDependenceError` — exactly the paper's legality test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..ir.dfg import DataFlowGraph


class CyclicDependenceError(ValueError):
    """The block has no legal schedule once the cuts are collapsed —
    i.e. some cut violates the convexity constraint."""


@dataclass(frozen=True)
class ScheduleSlot:
    """One scheduled macro-operation."""

    step: int
    nodes: Tuple[int, ...]          # DFG node indices (1 for scalar ops)
    is_cut: bool


def _group_of(dfg: DataFlowGraph,
              cuts: Sequence[FrozenSet[int]]) -> Dict[int, int]:
    """Map each node to its macro-op id (cuts first, then singletons)."""
    group: Dict[int, int] = {}
    for gid, members in enumerate(cuts):
        for i in members:
            if i in group:
                raise ValueError(f"node {i} belongs to two cuts")
            group[i] = gid
    next_gid = len(cuts)
    for i in range(dfg.n):
        if i not in group:
            group[i] = next_gid
            next_gid += 1
    return group


def schedule_with_cuts(
    dfg: DataFlowGraph,
    cuts: Iterable[Iterable[int]] = (),
) -> List[ScheduleSlot]:
    """List-schedule the block with each cut collapsed to one macro-op.

    Returns the schedule in issue order (dependence-respecting).  Raises
    :class:`CyclicDependenceError` when collapsing creates a dependence
    cycle — which happens exactly when some cut is non-convex, or when
    two cuts are mutually dependent.
    """
    cut_sets = [frozenset(c) for c in cuts]
    group = _group_of(dfg, cut_sets)
    num_groups = max(group.values()) + 1 if group else 0

    members: Dict[int, List[int]] = {g: [] for g in range(num_groups)}
    for node, g in group.items():
        members[g].append(node)

    # Macro-op dependence edges: producer group -> consumer group.
    succs: Dict[int, Set[int]] = {g: set() for g in range(num_groups)}
    indegree: Dict[int, int] = {g: 0 for g in range(num_groups)}
    for producer in range(dfg.n):
        for consumer in dfg.succs[producer]:
            gp, gc = group[producer], group[consumer]
            if gp != gc and gc not in succs[gp]:
                succs[gp].add(gc)
                indegree[gc] += 1

    # Kahn list scheduling; deterministic by smallest max-node-index
    # first (producers have larger DFG indices, so this issues roughly in
    # program order).
    import heapq

    ready = [(max(members[g]), g) for g in range(num_groups)
             if indegree[g] == 0]
    heapq.heapify(ready)
    schedule: List[ScheduleSlot] = []
    step = 0
    while ready:
        _, g = heapq.heappop(ready)
        schedule.append(ScheduleSlot(
            step=step,
            nodes=tuple(sorted(members[g])),
            is_cut=g < len(cut_sets),
        ))
        step += 1
        for s in succs[g]:
            indegree[s] -= 1
            if indegree[s] == 0:
                heapq.heappush(ready, (max(members[s]), s))

    if len(schedule) != num_groups:
        stuck = [g for g in range(num_groups) if indegree[g] > 0]
        raise CyclicDependenceError(
            f"no legal schedule: macro-ops {stuck} form a dependence "
            f"cycle (a cut violates convexity, cf. Fig. 4 of the paper)")
    return schedule


def cut_is_schedulable(dfg: DataFlowGraph,
                       cut: Iterable[int]) -> bool:
    """True when collapsing *cut* leaves the block schedulable — the
    operational form of the paper's convexity constraint."""
    try:
        schedule_with_cuts(dfg, [cut])
    except CyclicDependenceError:
        return False
    return True

"""AFU generation: datapath netlists, Verilog emission, cycle simulation."""

from .datapath import AFUDatapath, Gate, build_datapath
from .schedule import (
    CyclicDependenceError,
    ScheduleSlot,
    cut_is_schedulable,
    schedule_with_cuts,
)
from .simulator import CycleSimulator, SimulationResult, simulate_selection
from .verilog import emit_verilog

__all__ = [
    "AFUDatapath", "Gate", "build_datapath",
    "emit_verilog",
    "CycleSimulator", "SimulationResult", "simulate_selection",
    "schedule_with_cuts", "cut_is_schedulable", "ScheduleSlot",
    "CyclicDependenceError",
]

"""Cycle-approximate single-issue processor model with AFU support.

The paper estimates speedups with a static model (Section 7).  This module
provides the dynamic counterpart used for validation: it *executes* the
program in the interpreter while charging, per basic block visit,

* the software latency of every operation outside any selected cut, and
* the hardware latency (in whole cycles) of each selected cut,

so the measured speedup reflects the real dynamic block frequencies of the
run rather than the profile the selection was made from.  When the
simulation run matches the profiling run, the dynamic speedup equals the
static estimate exactly — a strong internal-consistency check; running with
a different input size shows how well a profile generalises.

Scope note: this simulator charges cut costs *without* rewriting the
program — the original module executes and cuts are priced analytically
per block.  For the real thing (programs rewritten to issue fused ISE
nodes, executed through functional AFU models, outputs compared
bit-for-bit), use :mod:`repro.exec`; its cycle accountant
(:func:`repro.exec.cycles.run_with_cycles`) is the measured counterpart
of this module and must stay in agreement with it on covered blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cut import Cut
from ..hwmodel.latency import CostModel
from ..hwmodel.merit import cut_hardware_cycles
from ..interp.interpreter import Interpreter
from ..interp.memory import Memory
from ..ir.dfg import DataFlowGraph
from ..ir.function import Module


@dataclass
class SimulationResult:
    """Cycle counts of one simulated run."""

    baseline_cycles: float
    specialized_cycles: float
    instructions_executed: int

    @property
    def speedup(self) -> float:
        """Dynamic speedup ``baseline / specialized`` of this run
        (``inf`` when specialisation removed every charged cycle)."""
        if self.specialized_cycles <= 0:
            return float("inf")
        return self.baseline_cycles / self.specialized_cycles


class CycleSimulator:
    """Charges cycles per executed basic block, with and without AFUs."""

    def __init__(self, module: Module, cuts: Sequence[Cut] = (),
                 model: Optional[CostModel] = None) -> None:
        self.module = module
        self.model = model or CostModel()
        # (function, block label) -> (baseline cycles, specialised cycles)
        self._block_cost: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._cuts_by_block: Dict[Tuple[str, str], List[Cut]] = {}
        for cut in cuts:
            key = _dfg_key(cut.dfg)
            self._cuts_by_block.setdefault(key, []).append(cut)
        self._precompute_costs()

    # ------------------------------------------------------------------
    def _precompute_costs(self) -> None:
        for func in self.module.functions.values():
            for block in func.blocks:
                key = (func.name, block.label)
                base = 0.0
                for insn in block.body:
                    base += self.model.sw_latency.get(insn.opcode, 1)
                specialized = base
                for cut in self._cuts_by_block.get(key, []):
                    covered = sum(
                        self.model.sw(cut.dfg.nodes[i]) for i in cut.nodes)
                    specialized -= covered
                    specialized += cut_hardware_cycles(
                        cut.dfg, cut.nodes, self.model)
                self._block_cost[key] = (base, specialized)

    # ------------------------------------------------------------------
    def run(self, entry: str, args: Sequence[int] = (),
            memory: Optional[Memory] = None) -> SimulationResult:
        """Execute ``entry(*args)`` and account cycles."""
        interp = Interpreter(self.module, memory=memory)
        interp.run(entry, args)
        baseline = 0.0
        specialized = 0.0
        # Sorted: profile insertion order differs between execution
        # backends, and float summation of fractional cost models is
        # order-sensitive (same rule as exec/cycles.run_with_cycles).
        for (func, label), count in sorted(interp.profile.counts.items()):
            base, spec = self._block_cost.get((func, label), (0.0, 0.0))
            baseline += count * base
            specialized += count * spec
        return SimulationResult(
            baseline_cycles=baseline,
            specialized_cycles=specialized,
            instructions_executed=interp.profile.steps,
        )


def _dfg_key(dfg: DataFlowGraph) -> Tuple[str, str]:
    """Recover the (function, block) key from a DFG name
    (``function/block``)."""
    if "/" in dfg.name:
        func, label = dfg.name.split("/", 1)
        return (func, label)
    return ("", dfg.name)


def simulate_selection(module: Module, entry: str, args: Sequence[int],
                       cuts: Sequence[Cut],
                       model: Optional[CostModel] = None,
                       memory: Optional[Memory] = None) -> SimulationResult:
    """One-shot: simulate *module* with the given selected cuts."""
    return CycleSimulator(module, cuts, model).run(entry, args,
                                                   memory=memory)

"""AFU datapaths: turning a selected cut into a combinational unit.

An :class:`AFUDatapath` is the hardware view of one chosen cut: named input
ports (the register-file read operands), named output ports (the values
written back), and a netlist of operator instances in dataflow order.

Wires are named after DFG node indices (``n<i>``), not IR register names —
the IR is non-SSA, so register names can be redefined inside one block and
are not unique value identifiers.  Port names derive from register names
(what the processor decoder would see) and are uniquified.

The datapath can evaluate itself functionally using the *same* 32-bit
semantics as the interpreter, which lets the test suite prove that
specialised execution is bit-exact with the original software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.cut import Cut
from ..hwmodel.latency import CostModel
from ..hwmodel.merit import (
    cut_area,
    cut_hardware_critical_path,
    cut_hardware_cycles,
)
from ..ir.opcodes import Opcode
from ..ir.values import Reg
from ..passes.constant_folding import evaluate_pure_op


@dataclass(frozen=True)
class Gate:
    """One operator instance in the datapath netlist.

    ``inputs`` entries are wire/port names (str) or int constants.
    """

    opcode: Opcode
    output: str
    inputs: Tuple[object, ...]


@dataclass
class AFUDatapath:
    """The synthesisable view of one custom instruction.

    Attributes:
        input_ports: port names in declaration order.
        input_sources: parallel to ``input_ports`` — the DFG source tag of
            each port (``('var', name)`` or ``('node', index)``).
        output_ports: port names.
        output_wires: port name -> internal wire it exposes.
        gates: netlist in dataflow (producers-first) order.
    """

    name: str
    cut: Cut
    input_ports: List[str]
    input_sources: List[Tuple]
    output_ports: List[str]
    output_wires: Dict[str, str]
    gates: List[Gate]
    latency_cycles: int
    critical_path_mac: float
    area_mac: float

    # ------------------------------------------------------------------
    def evaluate(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Functionally evaluate the datapath.

        Args:
            inputs: value for every input port name.

        Returns:
            Value of every output port.
        """
        wires: Dict[str, int] = {}
        for port in self.input_ports:
            if port not in inputs:
                raise KeyError(f"missing input port {port!r}")
            wires[port] = inputs[port]
        for gate in self.gates:
            values = [w if isinstance(w, int) else wires[w]
                      for w in gate.inputs]
            result = evaluate_pure_op(gate.opcode, values)
            if result is None:
                raise ZeroDivisionError(
                    f"gate {gate.output} ({gate.opcode}) trapped")
            wires[gate.output] = result
        return {port: wires[self.output_wires[port]]
                for port in self.output_ports}

    @property
    def num_inputs(self) -> int:
        return len(self.input_ports)

    @property
    def num_outputs(self) -> int:
        return len(self.output_ports)

    def describe(self) -> str:
        return (f"AFU {self.name}: {len(self.gates)} operator(s), "
                f"{self.num_inputs} in / {self.num_outputs} out, "
                f"{self.latency_cycles} cycle(s), "
                f"area {self.area_mac:.2f} MAC")


def build_datapath(cut: Cut, model: Optional[CostModel] = None,
                   name: str = "ise0") -> AFUDatapath:
    """Construct the datapath of *cut*.

    The cut must contain only AFU-legal single-instruction nodes (no
    supernodes, loads, stores or calls) and the DFG must carry
    ``operand_sources`` (all graphs built by :func:`repro.ir.build_dfg`
    and :func:`repro.ir.synth.make_dfg` do).
    """
    model = model or CostModel()
    dfg = cut.dfg
    members = sorted(cut.nodes, reverse=True)   # producers first
    member_set = set(cut.nodes)

    for i in members:
        node = dfg.nodes[i]
        if node.forbidden or node.is_super or len(node.insns) != 1:
            raise ValueError(
                f"node {node.label} cannot be implemented in an AFU")
        if len(dfg.operand_sources[i]) != len(node.insns[0].operands):
            raise ValueError(
                f"DFG {dfg.name} lacks operand sources for {node.label}")

    input_ports: List[str] = []
    input_sources: List[Tuple] = []
    port_of_source: Dict[Tuple, str] = {}
    taken_names: Dict[str, int] = {}

    def unique_port(base: str) -> str:
        base = base.replace(".", "_")
        count = taken_names.get(base, 0)
        taken_names[base] = count + 1
        return base if count == 0 else f"{base}_{count}"

    def port_for(source: Tuple, reg_name: str) -> str:
        if source not in port_of_source:
            port = unique_port(reg_name)
            port_of_source[source] = port
            input_ports.append(port)
            input_sources.append(source)
        return port_of_source[source]

    gates: List[Gate] = []
    for i in members:
        insn = dfg.nodes[i].insns[0]
        wires: List[object] = []
        for operand, source in zip(insn.operands, dfg.operand_sources[i]):
            if source[0] == "const":
                wires.append(source[1])
            elif source[0] == "node" and source[1] in member_set:
                wires.append(f"n{source[1]}")
            else:
                reg_name = operand.name if isinstance(operand, Reg) \
                    else f"in{i}"
                wires.append(port_for(source, reg_name))
        gates.append(Gate(opcode=insn.opcode, output=f"n{i}",
                          inputs=tuple(wires)))

    output_ports: List[str] = []
    output_wires: Dict[str, str] = {}
    for j in sorted(dfg.cut_outputs(member_set)):
        port = unique_port(dfg.nodes[j].insns[0].dest or f"out{j}")
        output_ports.append(port)
        output_wires[port] = f"n{j}"

    return AFUDatapath(
        name=name,
        cut=cut,
        input_ports=input_ports,
        input_sources=input_sources,
        output_ports=output_ports,
        output_wires=output_wires,
        gates=gates,
        latency_cycles=cut_hardware_cycles(dfg, member_set, model),
        critical_path_mac=cut_hardware_critical_path(dfg, member_set,
                                                     model),
        area_mac=cut_area(dfg, member_set, model),
    )

"""Structural Verilog emission for AFU datapaths.

Produces a self-contained combinational module per AFU: one 32-bit input
port per register-file read, one output per write-back, and a continuous
assignment per operator.  The paper's AFUs are purely combinational
(Section 2: no architecturally visible state), so no clock is emitted —
the surrounding pipeline registers the results.
"""

from __future__ import annotations

from typing import List

from ..ir.opcodes import Opcode
from .datapath import AFUDatapath, Gate

_BINARY_FMT = {
    Opcode.ADD: "{a} + {b}",
    Opcode.SUB: "{a} - {b}",
    Opcode.MUL: "{a} * {b}",
    Opcode.AND: "{a} & {b}",
    Opcode.OR: "{a} | {b}",
    Opcode.XOR: "{a} ^ {b}",
    Opcode.SHL: "{a} << ({b} & 32'd31)",
    Opcode.LSHR: "{a} >> ({b} & 32'd31)",
    Opcode.ASHR: "$signed({a}) >>> ({b} & 32'd31)",
    Opcode.EQ: "{{31'd0, {a} == {b}}}",
    Opcode.NE: "{{31'd0, {a} != {b}}}",
    Opcode.SLT: "{{31'd0, $signed({a}) < $signed({b})}}",
    Opcode.SLE: "{{31'd0, $signed({a}) <= $signed({b})}}",
    Opcode.SGT: "{{31'd0, $signed({a}) > $signed({b})}}",
    Opcode.SGE: "{{31'd0, $signed({a}) >= $signed({b})}}",
    Opcode.DIV: "$signed({a}) / $signed({b})",
    Opcode.REM: "$signed({a}) % $signed({b})",
}


def _wire_name(name: str) -> str:
    """Sanitise an IR register name into a Verilog identifier."""
    out = name.replace(".", "_")
    if out and out[0].isdigit():
        out = "w" + out
    return out


def _operand(ref) -> str:
    if isinstance(ref, int):
        if ref < 0:
            return f"-32'sd{-ref}"
        return f"32'd{ref}"
    return _wire_name(ref)


def _gate_expr(gate: Gate) -> str:
    op = gate.opcode
    ins = [_operand(x) for x in gate.inputs]
    if op in _BINARY_FMT:
        return _BINARY_FMT[op].format(a=ins[0], b=ins[1])
    if op is Opcode.NEG:
        return f"-{ins[0]}"
    if op is Opcode.NOT:
        return f"~{ins[0]}"
    if op is Opcode.COPY:
        return ins[0]
    if op is Opcode.SELECT:
        return f"({ins[0]} != 32'd0) ? {ins[1]} : {ins[2]}"
    raise ValueError(f"no Verilog form for {op}")


def emit_verilog(afu: AFUDatapath) -> str:
    """Render *afu* as a synthesisable Verilog-2001 module."""
    lines: List[str] = []
    ports: List[str] = []
    for port in afu.input_ports:
        ports.append(f"    input  wire [31:0] {_wire_name(port)}")
    for port in afu.output_ports:
        ports.append(f"    output wire [31:0] {_wire_name(port)}_out")

    lines.append(f"// Custom instruction {afu.name}: "
                 f"{len(afu.gates)} operators, "
                 f"{afu.latency_cycles} cycle(s), "
                 f"~{afu.area_mac:.2f} MAC-equivalent area.")
    lines.append(f"module {afu.name} (")
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    for gate in afu.gates:
        lines.append(f"    wire [31:0] {_wire_name(gate.output)};")
    lines.append("")
    for gate in afu.gates:
        wire = _wire_name(gate.output)
        lines.append(f"    assign {wire} = {_gate_expr(gate)};")
    lines.append("")
    for port in afu.output_ports:
        wire = _wire_name(afu.output_wires[port])
        lines.append(f"    assign {_wire_name(port)}_out = {wire};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)

"""The pluggable store-backend interface and the directory backend.

An :class:`~repro.store.artifacts.ArtifactStore` is split in two: the
*policy* layer (content keys, the pickled payload schema, corruption
tolerance, the in-process hot tier, statistics) lives in
:mod:`repro.store.artifacts`; the *medium* — where encoded artifact
bytes actually live — is a :class:`StoreBackend`.  Three media ship:

* :class:`DirectoryBackend` — the original ``<root>/v<N>/<kind>/
  <key[:2]>/<key>.pkl`` tree; zero-setup, shared via the filesystem;
* :class:`repro.store.sqlite.SQLiteBackend` — one ``.sqlite`` file in
  WAL mode, safe for many concurrent worker processes and far kinder
  to file-count quotas than a directory tree;
* :class:`repro.store.net.NetworkBackend` — a thin TCP client talking
  to ``repro store serve``, so workers on *other nodes* share one
  artifact medium.

Backends are deliberately dumb byte stores: ``load``/``store``/
``contains``/``keys``/``info``/``clear``/``gc`` over ``(kind, key) ->
blob``.  They never pickle or unpickle artifact payloads — the policy
layer above owns the schema, so every backend inherits the same
corruption tolerance and versioning for free, and the network server
never executes payload bytes it relays.

A backend is addressed by a *spec* string — a directory path,
``sqlite:PATH`` (or any path ending ``.sqlite``/``.db``), or
``tcp://HOST:PORT`` — resolved by :func:`open_backend`.  Specs are
plain picklable strings, which is exactly what lets sweep workers on
any node reopen the leader's store.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: On-disk layout version: part of every directory path and of the
#: payload header the policy layer pickles with each artifact.
SCHEMA_VERSION = 1

_tmp_counter = itertools.count()


class BackendError(Exception):
    """A backend could not serve an operation (I/O failure, lost
    connection, corrupt medium).  The policy layer treats reads as
    misses and writes as dropped — never a crash."""


class StoreUnavailable(BackendError):
    """The medium itself is unreachable (connect refused, retry budget
    exhausted) — as opposed to a medium that answered and *rejected*
    the operation.  Callers that treat failures as best-effort (e.g.
    corrupt-entry deletes) swallow only this subclass: an answering
    server's protocol error still surfaces."""


@dataclass
class StoreInfo:
    """Snapshot of a backend's persistent tier (``repro cache stats``)."""

    root: str
    entries: int = 0
    bytes: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)


class StoreBackend:
    """Abstract byte-level ``(kind, key) -> blob`` medium (module doc).

    Subclasses must implement every method below.  All raise
    :class:`BackendError` on medium failure; none ever raise on a
    plain missing entry (``load`` returns ``None``, ``contains``
    returns ``False``).
    """

    #: Reconnect string understood by :func:`open_backend` (picklable;
    #: handed to worker processes and remote nodes).
    spec: str = ""

    def load(self, kind: str, key: str):
        """The stored blob for ``(kind, key)``, or ``None``."""
        raise NotImplementedError

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Persist *blob* under ``(kind, key)`` atomically."""
        raise NotImplementedError

    def contains(self, kind: str, key: str) -> bool:
        """Presence check without transferring the blob."""
        raise NotImplementedError

    def delete(self, kind: str, key: str) -> None:
        """Best-effort removal (corrupt-entry drop); never raises."""
        raise NotImplementedError

    def keys(self) -> Iterator[Tuple[str, str]]:
        """Every stored ``(kind, key)`` pair (order unspecified)."""
        raise NotImplementedError

    def info(self) -> StoreInfo:
        """Entry/byte counts, split per artifact kind."""
        raise NotImplementedError

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        raise NotImplementedError

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Remove entries older than *max_age_days*; returns
        ``(entries_removed, bytes_freed)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release connections/handles (idempotent; default no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.spec}>"


class DirectoryBackend(StoreBackend):
    """The original filesystem tree: ``<root>/v<N>/<kind>/<key[:2]>/
    <key>.pkl``, atomic ``os.replace`` publication, shared between
    processes at the filesystem level."""

    def __init__(self, root: os.PathLike) -> None:
        """Open (creating lazily) the tree rooted at *root*."""
        self.root = Path(root)
        self.base = self.root / f"v{SCHEMA_VERSION}"
        self.spec = str(self.root)

    def _path(self, kind: str, key: str) -> Path:
        return self.base / kind / key[:2] / f"{key}.pkl"

    def load(self, kind: str, key: str):
        """Blob bytes from the entry file (``None`` when absent)."""
        try:
            return self._path(kind, key).read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise BackendError(str(exc))

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Write to a unique temp file, publish with ``os.replace`` —
        readers see the old blob or the whole new one, never a torn
        write.  Same-key racers write identical bytes (content
        addressing), so the race is benign."""
        path = self._path(kind, key)
        tmp = path.with_name(
            f".{key}.{os.getpid()}.{next(_tmp_counter)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise BackendError(str(exc))

    def contains(self, kind: str, key: str) -> bool:
        """Entry-file existence (no read, no decode)."""
        return self._path(kind, key).is_file()

    def delete(self, kind: str, key: str) -> None:
        """Unlink the entry file; missing files are already deleted."""
        try:
            os.unlink(self._path(kind, key))
        except OSError:
            pass

    def _files(self) -> Iterator[Path]:
        if not self.base.is_dir():
            return
        for path in self.base.rglob("*.pkl"):
            if path.is_file():
                yield path

    def keys(self) -> Iterator[Tuple[str, str]]:
        """``(kind, key)`` pairs recovered from the tree layout."""
        for path in self._files():
            parts = path.relative_to(self.base).parts
            yield parts[0], path.stem

    def info(self) -> StoreInfo:
        """Walk the tree counting entries and bytes per kind."""
        info = StoreInfo(root=str(self.root))
        for path in self._files():
            kind = path.relative_to(self.base).parts[0]
            try:
                info.bytes += path.stat().st_size
            except OSError:
                continue
            info.entries += 1
            info.kinds[kind] = info.kinds.get(kind, 0) + 1
        return info

    def clear(self) -> int:
        """Remove the whole versioned tree."""
        import shutil

        removed = sum(1 for _ in self._files())
        shutil.rmtree(self.base, ignore_errors=True)
        return removed

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Age-based sweep by mtime; also reclaims orphaned ``*.tmp``
        files left by writers killed mid-``store`` (anything older
        than an hour is certainly not in flight)."""
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        freed = 0
        for path in list(self._files()):
            try:
                stat = path.stat()
                if stat.st_mtime < cutoff:
                    os.unlink(path)
                    removed += 1
                    freed += stat.st_size
            except OSError:
                continue
        if self.base.is_dir():
            tmp_cutoff = max(cutoff, time.time() - 3600.0)
            for path in list(self.base.rglob("*.tmp")):
                try:
                    stat = path.stat()
                    if stat.st_mtime < tmp_cutoff:
                        os.unlink(path)
                        freed += stat.st_size
                except OSError:
                    continue
        return removed, freed


def open_backend(spec) -> StoreBackend:
    """Resolve a spec string (or path) into a live backend.

    ``tcp://HOST:PORT`` opens a network client, ``sqlite:PATH`` (or a
    path ending ``.sqlite``/``.db``) a SQLite file, anything else a
    directory tree.  A :class:`StoreBackend` instance passes through.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = str(spec)
    if text.startswith("tcp://"):
        from .net import NetworkBackend

        return NetworkBackend(text)
    if text.startswith("sqlite:"):
        from .sqlite import SQLiteBackend

        return SQLiteBackend(text[len("sqlite:"):])
    if text.endswith((".sqlite", ".db")):
        from .sqlite import SQLiteBackend

        return SQLiteBackend(text)
    return DirectoryBackend(Path(text).expanduser())

"""The thin TCP store tier: ``repro store serve`` and its client.

A :class:`StoreServer` wraps any local backend (directory or sqlite)
and serves it over the framed-pickle wire protocol
(:mod:`repro.wire`); a :class:`NetworkBackend` is the matching client,
plugging into :class:`~repro.store.artifacts.ArtifactStore` like any
other medium.  Together they give a sweep cluster one shared artifact
medium across *nodes*: remote workers write identification results
through ``tcp://leader:port`` while the leader reads them back out of
the same underlying file tree or database.

The server relays opaque blobs — artifact payloads are never unpickled
server-side, so the policy layer's schema/corruption handling runs
only in the clients that actually consume the bytes.  Each connection
is served by a daemon thread and may issue any number of requests;
client operations reconnect once on a dropped socket, then degrade to
:class:`~repro.store.backend.BackendError` (which the policy layer
counts as a miss/dropped write — the fabric keeps working, just
colder).
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Iterator, Optional, Tuple

from ..wire import WireError, connect, parse_address, recv_msg, send_msg
from .backend import BackendError, StoreBackend, StoreInfo

#: Default port of ``repro store serve`` (and of ``tcp://HOST`` specs
#: that omit one).
DEFAULT_PORT = 9723

#: Socket timeout for client operations, seconds.
CLIENT_TIMEOUT = 30.0


class _Handler(socketserver.BaseRequestHandler):
    def handle(self):  # noqa: D102 - socketserver plumbing
        backend = self.server.backend      # type: ignore[attr-defined]
        sock = self.request
        sock.settimeout(self.server.idle_timeout)  # type: ignore
        while True:
            try:
                message = recv_msg(sock)
            except (WireError, OSError):
                return
            if message is None:            # clean disconnect
                return
            try:
                reply = ("ok", self._dispatch(backend, message))
            except (BackendError, WireError) as exc:
                reply = ("err", str(exc))
            except Exception as exc:       # never kill the server
                reply = ("err", f"{type(exc).__name__}: {exc}")
            try:
                send_msg(sock, reply)
            except (WireError, OSError):
                return

    @staticmethod
    def _dispatch(backend: StoreBackend, message: Tuple):
        op = message[0]
        if op == "load":
            return backend.load(message[1], message[2])
        if op == "store":
            backend.store(message[1], message[2], message[3])
            return None
        if op == "contains":
            return backend.contains(message[1], message[2])
        if op == "delete":
            backend.delete(message[1], message[2])
            return None
        if op == "keys":
            return list(backend.keys())
        if op == "info":
            info = backend.info()
            return (info.root, info.entries, info.bytes, info.kinds)
        if op == "clear":
            return backend.clear()
        if op == "gc":
            return backend.gc(message[1])
        if op == "ping":
            return {"spec": backend.spec}
        raise WireError(f"unknown store op {op!r}")


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class StoreServer:
    """Serve a local backend over TCP (the ``repro store serve`` verb).

    ``StoreServer(backend).start()`` binds and serves in a daemon
    thread (tests, embedding in a leader process);
    :meth:`serve_forever` blocks instead (the CLI).  ``port=0`` picks
    an ephemeral port, reported by :attr:`address`.
    """

    def __init__(self, backend: StoreBackend, host: str = "0.0.0.0",
                 port: int = DEFAULT_PORT,
                 idle_timeout: float = 600.0) -> None:
        """Bind immediately; serving starts with :meth:`start` or
        :meth:`serve_forever`."""
        self.backend = backend
        self._server = _Server((host, port), _Handler)
        self._server.backend = backend           # type: ignore[attr-defined]
        self._server.idle_timeout = idle_timeout  # type: ignore
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The bound ``HOST:PORT`` (resolves ``port=0`` bindings)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def spec(self) -> str:
        """Client spec for this server, with a connectable host: the
        wildcard bind address is rewritten to the loopback."""
        host, port = self._server.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"tcp://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-store-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever(poll_interval=0.5)

    def shutdown(self) -> None:
        """Stop serving and close the listening socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class NetworkBackend(StoreBackend):
    """TCP client medium: every operation is one framed round-trip.

    Holds a persistent connection (re-established once per operation
    after a drop); concurrent use from one process is serialised by a
    lock — worker *processes* each open their own client, which is the
    actual concurrency path of the fabric.
    """

    def __init__(self, spec: str, timeout: float = CLIENT_TIMEOUT) -> None:
        """Parse ``tcp://HOST:PORT`` (port defaults to
        :data:`DEFAULT_PORT`); connects lazily on first use."""
        host, port = parse_address(spec, default_port=DEFAULT_PORT)
        self.address = f"{host}:{port}"
        self.spec = f"tcp://{self.address}"
        self.root = self.spec
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    def _roundtrip(self, message: Tuple):
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    try:
                        self._sock = connect(self.address, self.timeout)
                    except OSError as exc:
                        raise BackendError(
                            f"cannot reach store {self.spec}: {exc}")
                try:
                    send_msg(self._sock, message)
                    reply = recv_msg(self._sock)
                    if reply is None:
                        raise WireError("server closed the connection")
                    break
                except (WireError, OSError) as exc:
                    self._close_locked()
                    if attempt:       # second strike: give up
                        raise BackendError(
                            f"store {self.spec} unavailable: {exc}")
        status, value = reply
        if status != "ok":
            raise BackendError(f"store {self.spec}: {value}")
        return value

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def load(self, kind: str, key: str):
        """Fetch one blob (``None`` on a remote miss)."""
        return self._roundtrip(("load", kind, key))

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Ship one blob to the server."""
        self._roundtrip(("store", kind, key, blob))

    def contains(self, kind: str, key: str) -> bool:
        """Remote presence check (no blob transfer)."""
        return bool(self._roundtrip(("contains", kind, key)))

    def delete(self, kind: str, key: str) -> None:
        """Best-effort remote removal (unreachable server: no-op)."""
        try:
            self._roundtrip(("delete", kind, key))
        except BackendError:
            pass

    def keys(self) -> Iterator[Tuple[str, str]]:
        """Every remote ``(kind, key)`` pair, in one reply."""
        yield from [tuple(pair) for pair in self._roundtrip(("keys",))]

    def info(self) -> StoreInfo:
        """The server backend's counts (its root, not the client's)."""
        root, entries, size, kinds = self._roundtrip(("info",))
        return StoreInfo(root=root, entries=entries, bytes=size,
                         kinds=dict(kinds))

    def clear(self) -> int:
        """Clear the server's medium; returns entries removed."""
        return int(self._roundtrip(("clear",)))

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Run the age sweep server-side."""
        removed, freed = self._roundtrip(("gc", max_age_days))
        return int(removed), int(freed)

    def ping(self) -> dict:
        """Server liveness + its backend spec (connection check)."""
        return dict(self._roundtrip(("ping",)))

    def close(self) -> None:
        """Drop the client connection (reopened lazily on next use)."""
        with self._lock:
            self._close_locked()

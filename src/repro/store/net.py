"""The thin TCP store tier: ``repro store serve`` and its client.

A :class:`StoreServer` wraps any local backend (directory or sqlite)
and serves it over the framed-pickle wire protocol
(:mod:`repro.wire`); a :class:`NetworkBackend` is the matching client,
plugging into :class:`~repro.store.artifacts.ArtifactStore` like any
other medium.  Together they give a sweep cluster one shared artifact
medium across *nodes*: remote workers write identification results
through ``tcp://leader:port`` while the leader reads them back out of
the same underlying file tree or database.

The server relays opaque blobs — artifact payloads are never unpickled
server-side, so the policy layer's schema/corruption handling runs
only in the clients that actually consume the bytes.  Each connection
is served by a daemon thread and may issue any number of requests;
client operations reconnect once on a dropped socket, then degrade to
:class:`~repro.store.backend.BackendError` (which the policy layer
counts as a miss/dropped write — the fabric keeps working, just
colder).
"""

from __future__ import annotations

import os
import random
import socket
import socketserver
import sys
import threading
import time
import zlib
from typing import Iterator, Optional, Tuple

from ..wire import WireError, connect, parse_address, recv_msg, send_msg
from .backend import BackendError, StoreBackend, StoreInfo, StoreUnavailable

#: Default port of ``repro store serve`` (and of ``tcp://HOST`` specs
#: that omit one).
DEFAULT_PORT = 9723

#: Socket timeout for client operations, seconds.
CLIENT_TIMEOUT = 30.0

#: Environment variable overriding the default connectivity-retry
#: budget of every :class:`NetworkBackend` (``retries=`` wins).
RETRIES_ENV = "REPRO_STORE_RETRIES"

#: Connectivity retries after the first attempt when neither the
#: ``retries`` argument nor :data:`RETRIES_ENV` says otherwise.
DEFAULT_RETRIES = 3


def resolve_retries(retries: Optional[int] = None) -> int:
    """The connectivity-retry budget: explicit argument, then
    ``$REPRO_STORE_RETRIES``, then :data:`DEFAULT_RETRIES`.  An
    unparsable environment value warns on stderr and falls back (the
    same contract as ``REPRO_WORKERS``)."""
    if retries is None:
        env = os.environ.get(RETRIES_ENV, "").strip()
        if not env:
            return DEFAULT_RETRIES
        try:
            retries = int(env)
        except ValueError:
            print(f"warning: unparsable {RETRIES_ENV}={env!r} ignored; "
                  f"using {DEFAULT_RETRIES} retries",
                  file=sys.stderr)
            return DEFAULT_RETRIES
    return max(0, retries)


class _Handler(socketserver.BaseRequestHandler):
    def handle(self):  # noqa: D102 - socketserver plumbing
        backend = self.server.backend      # type: ignore[attr-defined]
        sock = self.request
        sock.settimeout(self.server.idle_timeout)  # type: ignore
        self.server.track(sock)            # type: ignore[attr-defined]
        try:
            while True:
                try:
                    message = recv_msg(sock)
                except (WireError, OSError):
                    return
                if message is None:        # clean disconnect
                    return
                try:
                    reply = ("ok", self._dispatch(backend, message))
                except (BackendError, WireError) as exc:
                    reply = ("err", str(exc))
                except Exception as exc:   # never kill the server
                    reply = ("err", f"{type(exc).__name__}: {exc}")
                try:
                    send_msg(sock, reply)
                except (WireError, OSError):
                    return
        finally:
            self.server.untrack(sock)      # type: ignore[attr-defined]

    @staticmethod
    def _dispatch(backend: StoreBackend, message: Tuple):
        op = message[0]
        if op == "load":
            return backend.load(message[1], message[2])
        if op == "store":
            backend.store(message[1], message[2], message[3])
            return None
        if op == "contains":
            return backend.contains(message[1], message[2])
        if op == "delete":
            backend.delete(message[1], message[2])
            return None
        if op == "keys":
            return list(backend.keys())
        if op == "info":
            info = backend.info()
            return (info.root, info.entries, info.bytes, info.kinds)
        if op == "clear":
            return backend.clear()
        if op == "gc":
            return backend.gc(message[1])
        if op == "ping":
            return {"spec": backend.spec}
        raise WireError(f"unknown store op {op!r}")


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._conn_lock = threading.Lock()
        self._conns: set = set()

    def server_close(self):
        # shutdown() before close(): a forked worker process inherits
        # a duplicate of this listening FD, and with close() alone the
        # kernel socket would stay listening through the dup — clients
        # would connect into a backlog nobody accepts and eat their
        # full timeout instead of an instant refusal.  shutdown() acts
        # on the kernel socket itself, dups and all.
        try:
            self.socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        super().server_close()

    def track(self, sock) -> None:
        with self._conn_lock:
            self._conns.add(sock)

    def untrack(self, sock) -> None:
        with self._conn_lock:
            self._conns.discard(sock)

    def close_connections(self) -> None:
        """Sever every live client connection (handler threads see a
        socket error on their next receive and exit)."""
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class StoreServer:
    """Serve a local backend over TCP (the ``repro store serve`` verb).

    ``StoreServer(backend).start()`` binds and serves in a daemon
    thread (tests, embedding in a leader process);
    :meth:`serve_forever` blocks instead (the CLI).  ``port=0`` picks
    an ephemeral port, reported by :attr:`address`.
    """

    def __init__(self, backend: StoreBackend, host: str = "0.0.0.0",
                 port: int = DEFAULT_PORT,
                 idle_timeout: float = 600.0) -> None:
        """Bind immediately; serving starts with :meth:`start` or
        :meth:`serve_forever`."""
        self.backend = backend
        self._server = _Server((host, port), _Handler)
        self._server.backend = backend           # type: ignore[attr-defined]
        self._server.idle_timeout = idle_timeout  # type: ignore
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The bound ``HOST:PORT`` (resolves ``port=0`` bindings)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def spec(self) -> str:
        """Client spec for this server, with a connectable host: the
        wildcard bind address is rewritten to the loopback."""
        host, port = self._server.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"tcp://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-store-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever(poll_interval=0.5)

    def shutdown(self) -> None:
        """Stop serving: close the listening socket AND sever every
        live client connection (idempotent).  Clients mid-request see
        a dropped socket — exactly what a killed server process looks
        like — and fall back on their retry budget."""
        self._server.shutdown()
        self._server.server_close()
        self._server.close_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class NetworkBackend(StoreBackend):
    """TCP client medium: every operation is one framed round-trip.

    Holds a persistent connection (re-established per attempt after a
    drop); concurrent use from one process is serialised by a lock —
    worker *processes* each open their own client, which is the actual
    concurrency path of the fabric.

    **Retry contract.**  Connectivity failures — connect refused, a
    socket dropped mid-round-trip, a malformed frame — are retried up
    to *retries* times with exponential backoff and deterministic
    jitter (seeded from the spec, so a replayed chaos run backs off
    identically), then raise
    :class:`~repro.store.backend.StoreUnavailable`.  Safe because
    every store operation is idempotent: content-addressed blobs make
    a re-sent ``store`` a byte-identical overwrite and a re-sent read
    side-effect-free.  A server that *answers* with ``("err", ...)``
    is authoritative — that raises plain ``BackendError`` with no
    retry (the server already executed or rejected the operation).
    ``retry_count`` accumulates the retries actually spent, which is
    how a mid-sweep server restart becomes visible in telemetry.
    """

    def __init__(self, spec: str, timeout: float = CLIENT_TIMEOUT,
                 retries: Optional[int] = None,
                 backoff_s: float = 0.05,
                 backoff_max_s: float = 2.0) -> None:
        """Parse ``tcp://HOST:PORT`` (port defaults to
        :data:`DEFAULT_PORT`); connects lazily on first use.

        *retries* is the connectivity-retry budget per operation
        (default ``$REPRO_STORE_RETRIES``, else 3); *backoff_s* is the
        first retry's base delay, doubling per retry and capped at
        *backoff_max_s*, each scaled by jitter in [0.5, 1.0)."""
        host, port = parse_address(spec, default_port=DEFAULT_PORT)
        self.address = f"{host}:{port}"
        self.spec = f"tcp://{self.address}"
        self.root = self.spec
        self.timeout = timeout
        self.retries = resolve_retries(retries)
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.retry_count = 0
        self._rng = random.Random(zlib.crc32(self.spec.encode()))
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Delay before retry *attempt* (1-based): exponential with
        deterministic jitter — two clients hammering a restarting
        server desynchronise, and a replayed run sleeps identically."""
        base = min(self.backoff_max_s,
                   self.backoff_s * (2.0 ** (attempt - 1)))
        return base * (0.5 + 0.5 * self._rng.random())

    def _roundtrip(self, message: Tuple):
        with self._lock:
            last_exc: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                if attempt:
                    self.retry_count += 1
                    time.sleep(self._backoff(attempt))
                try:
                    if self._sock is None:
                        self._sock = connect(self.address, self.timeout)
                    send_msg(self._sock, message)
                    reply = recv_msg(self._sock)
                    if reply is None:
                        raise WireError("server closed the connection")
                    break
                except (WireError, OSError) as exc:
                    self._close_locked()
                    last_exc = exc
            else:
                raise StoreUnavailable(
                    f"store {self.spec} unavailable after "
                    f"{self.retries + 1} attempt(s): {last_exc}")
        status, value = reply
        if status != "ok":
            # The server answered: authoritative, never retried.
            raise BackendError(f"store {self.spec}: {value}")
        return value

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def load(self, kind: str, key: str):
        """Fetch one blob (``None`` on a remote miss)."""
        return self._roundtrip(("load", kind, key))

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Ship one blob to the server."""
        self._roundtrip(("store", kind, key, blob))

    def contains(self, kind: str, key: str) -> bool:
        """Remote presence check (no blob transfer)."""
        return bool(self._roundtrip(("contains", kind, key)))

    def delete(self, kind: str, key: str) -> None:
        """Best-effort remote removal (unreachable server: no-op).

        Only *connectivity* failures are swallowed — a server that
        answered and rejected the delete raises, like every other
        operation (silently dropping a protocol error hid real
        server-side failures)."""
        try:
            self._roundtrip(("delete", kind, key))
        except StoreUnavailable:
            pass

    def keys(self) -> Iterator[Tuple[str, str]]:
        """Every remote ``(kind, key)`` pair, in one reply."""
        yield from [tuple(pair) for pair in self._roundtrip(("keys",))]

    def info(self) -> StoreInfo:
        """The server backend's counts (its root, not the client's)."""
        root, entries, size, kinds = self._roundtrip(("info",))
        return StoreInfo(root=root, entries=entries, bytes=size,
                         kinds=dict(kinds))

    def clear(self) -> int:
        """Clear the server's medium; returns entries removed."""
        return int(self._roundtrip(("clear",)))

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Run the age sweep server-side."""
        removed, freed = self._roundtrip(("gc", max_age_days))
        return int(removed), int(freed)

    def ping(self) -> dict:
        """Server liveness + its backend spec (connection check)."""
        return dict(self._roundtrip(("ping",)))

    def close(self) -> None:
        """Drop the client connection (reopened lazily on next use)."""
        with self._lock:
            self._close_locked()

"""Single-file SQLite store backend (WAL, concurrent-worker safe).

One ``.sqlite`` file replaces the directory tree: kinder to file-count
quotas, trivially copyable between nodes, and — in WAL mode — safe for
many concurrent writer *processes*: a sweep cluster's workers all
``INSERT OR REPLACE`` into the same file while the leader reads.
Same-key racers write identical bytes (content addressing), so the
last writer winning is benign.

Every operation retries through SQLite's own busy handler
(``busy_timeout``); a database that is corrupt or unreadable raises
:class:`~repro.store.backend.BackendError`, which the policy layer
above treats as a miss/dropped write, never a crash — the same
degradation contract as a damaged directory tree.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Tuple

from .backend import BackendError, StoreBackend, StoreInfo

#: How long a writer waits on a locked database before giving up
#: (milliseconds).  Generous: losing a warm-phase write costs a
#: recompute later, but failing fast under load would cost it now.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    kind  TEXT NOT NULL,
    key   TEXT NOT NULL,
    blob  BLOB NOT NULL,
    mtime REAL NOT NULL,
    PRIMARY KEY (kind, key)
) WITHOUT ROWID
"""


class SQLiteBackend(StoreBackend):
    """``(kind, key) -> blob`` rows in one WAL-mode SQLite file."""

    def __init__(self, path) -> None:
        """Open (creating if needed) the database file at *path*."""
        self.root = Path(path).expanduser()
        self.spec = f"sqlite:{self.root}"
        # One connection per instance; instances are per-process (the
        # fabric reopens by spec after fork), but the store server
        # shares one instance across handler threads — hence the lock.
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        # Fail at construction on an unusable path, like the
        # directory backend fails on its first write, but eagerly so
        # `repro sweep --store-dir sqlite:...` reports bad specs
        # before hours of warm work.
        self._connect()

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            try:
                self.root.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(str(self.root), timeout=30.0,
                                       check_same_thread=False)
                conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(_SCHEMA)
                conn.commit()
            except sqlite3.Error as exc:
                raise BackendError(f"cannot open {self.spec}: {exc}")
            self._conn = conn
        return self._conn

    def _execute(self, sql: str, params: Tuple = ()):
        with self._lock:
            try:
                return self._connect().execute(sql, params)
            except sqlite3.Error as exc:
                raise BackendError(f"{self.spec}: {exc}")

    def _commit(self, sql: str, params: Tuple = ()) -> int:
        with self._lock:
            try:
                conn = self._connect()
                cursor = conn.execute(sql, params)
                conn.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                raise BackendError(f"{self.spec}: {exc}")

    # ------------------------------------------------------------------
    def load(self, kind: str, key: str):
        """The blob column, or ``None`` when the row is absent."""
        row = self._execute(
            "SELECT blob FROM artifacts WHERE kind=? AND key=?",
            (kind, key)).fetchone()
        return None if row is None else row[0]

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Upsert one row; a transaction is atomic by construction."""
        self._commit(
            "INSERT OR REPLACE INTO artifacts (kind, key, blob, mtime) "
            "VALUES (?, ?, ?, ?)", (kind, key, blob, time.time()))

    def contains(self, kind: str, key: str) -> bool:
        """Row-existence check (no blob transfer)."""
        row = self._execute(
            "SELECT 1 FROM artifacts WHERE kind=? AND key=?",
            (kind, key)).fetchone()
        return row is not None

    def delete(self, kind: str, key: str) -> None:
        """Drop one row (best-effort, like the directory unlink)."""
        try:
            self._commit("DELETE FROM artifacts WHERE kind=? AND key=?",
                         (kind, key))
        except BackendError:
            pass

    def keys(self) -> Iterator[Tuple[str, str]]:
        """Every ``(kind, key)`` row."""
        yield from self._execute(
            "SELECT kind, key FROM artifacts").fetchall()

    def info(self) -> StoreInfo:
        """Entry/byte counts per kind, straight from SQL aggregates."""
        info = StoreInfo(root=str(self.root))
        for kind, entries, size in self._execute(
                "SELECT kind, COUNT(*), SUM(LENGTH(blob)) "
                "FROM artifacts GROUP BY kind").fetchall():
            info.kinds[kind] = entries
            info.entries += entries
            info.bytes += size or 0
        return info

    def clear(self) -> int:
        """Delete every row (the file itself stays)."""
        return self._commit("DELETE FROM artifacts")

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Drop rows older than *max_age_days* by their mtime column."""
        cutoff = time.time() - max_age_days * 86400.0
        row = self._execute(
            "SELECT COUNT(*), SUM(LENGTH(blob)) FROM artifacts "
            "WHERE mtime < ?", (cutoff,)).fetchone()
        removed, freed = row[0], row[1] or 0
        self._commit("DELETE FROM artifacts WHERE mtime < ?", (cutoff,))
        return removed, freed

    def close(self) -> None:
        """Close the connection (reopened lazily if used again)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

"""Persistent content-addressed artifact storage (DESIGN.md §10, §15).

Every expensive product of the toolchain — compiled+profiled
applications, exponential identification results, baseline execution
runs — is content-addressed by SHA-256 over everything it depends on
(:mod:`repro.store.keys`) and persisted across processes and
invocations by :class:`repro.store.artifacts.ArtifactStore`.  The
*medium* behind a store is a pluggable
:class:`~repro.store.backend.StoreBackend`: a directory tree
(default), a WAL-mode SQLite file (``sqlite:PATH``), or a thin TCP
client (``tcp://HOST:PORT``) talking to ``repro store serve`` — which
is how a sweep cluster's workers on other nodes share one artifact
medium.  The :class:`repro.session.Session` facade wires the store
through every layer; results are bit-identical with the store enabled,
disabled or pre-warmed — persistence only ever skips recomputation.
"""

from .artifacts import (
    STORE_ENV,
    ArtifactStore,
    StoreInfo,
    StoreStats,
    default_store_dir,
    default_store_spec,
    resolve_store,
    stock_store_dir,
)
from .backend import (
    BackendError,
    DirectoryBackend,
    StoreBackend,
    StoreUnavailable,
    open_backend,
)
from .keys import (
    PIPELINE_VERSION,
    SEARCH_VERSION,
    callable_fingerprint,
    canonical_digest,
    dfg_digest,
    limits_key,
    model_digest,
    workload_key,
)
from .net import NetworkBackend, StoreServer
from .sqlite import SQLiteBackend

__all__ = [
    "ArtifactStore", "StoreStats", "StoreInfo", "resolve_store",
    "default_store_dir", "default_store_spec", "stock_store_dir",
    "STORE_ENV",
    "StoreBackend", "DirectoryBackend", "SQLiteBackend",
    "NetworkBackend", "StoreServer", "open_backend", "BackendError",
    "StoreUnavailable",
    "canonical_digest", "callable_fingerprint", "dfg_digest",
    "model_digest", "limits_key", "workload_key",
    "PIPELINE_VERSION", "SEARCH_VERSION",
]

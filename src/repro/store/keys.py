"""Content-addressed key derivation shared by every caching layer.

A cache key must identify everything that could change a result and
nothing that could not: two runs that would compute the same artifact
must derive the same key (or the store is useless), and two runs that
would not must derive different keys (or the store is wrong).  This
module is the single place those rules live:

* :func:`dfg_digest` — SHA-256 over the *search-relevant structure* of a
  dataflow graph (opcodes, flags, adjacency, operand sources, weight;
  names and collapse labels are cosmetic and excluded).  The digest is
  memoised on the graph object together with a cheap mutation
  fingerprint — a graph whose node flags or weight changed after the
  digest was taken is re-digested instead of silently reusing the stale
  key (see :func:`_dfg_fingerprint`);
* :func:`model_digest` — SHA-256 of a cost model's tables, not its
  object identity, so an equal model rebuilt in a worker process still
  hits;
* :func:`limits_key` — the canonical tuple of a ``SearchLimits``;
* :func:`workload_key` — everything :func:`repro.pipeline.
  prepare_application` depends on: the MiniC source, the entry point,
  the profiling size and the pass configuration, plus
  :data:`PIPELINE_VERSION` so pipeline-semantics changes invalidate old
  compiled artifacts instead of replaying them;
* :func:`canonical_digest` — the generic SHA-256 over a canonical
  (repr-stable) tuple that all of the above reduce to.

Digest inputs are versioned (``dfg-v2``, ``model-v1``, ``app-v1``):
bumping a version string retires every artifact derived under the old
semantics at once.
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Optional, Tuple

#: Bump when compile/profile semantics change in a way that should
#: invalidate persisted :class:`~repro.pipeline.Application` artifacts.
PIPELINE_VERSION = 1

#: Bump when search/engine semantics change (pruning, feasibility,
#: tie-breaking, result encoding): persisted ``search`` artifacts from
#: the old engine must read as misses, not replay stale cut sets.
SEARCH_VERSION = 1

_DIGEST_ATTR = "_explore_digest"


def canonical_digest(*parts) -> str:
    """SHA-256 hex digest of the canonical tuple *parts*.

    Parts must have deterministic ``repr`` (strings, numbers, bools,
    ``None`` and nested tuples of those) — the property every caller in
    this module guarantees by construction.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def _dfg_fingerprint(dfg) -> Tuple:
    """Cheap summary of the mutable surface of a DFG.

    A DataFlowGraph is immutable by convention, but its node flags
    (``forbidden``/``forced_out``) and ``weight`` are plain attributes —
    the realistic mutate-after-digest hazards.  Recomputing this
    fingerprint is O(n) with tiny constants, so the memoised digest can
    be validated on every use.
    """
    return (dfg.weight,
            tuple((node.forbidden, node.forced_out) for node in dfg.nodes))


def dfg_digest(dfg) -> str:
    """SHA-256 of the search-relevant structure of *dfg*.

    Memoised on the graph object, guarded by a mutation fingerprint:
    if the graph's flags or weight changed since the digest was taken,
    the stale digest is discarded and recomputed instead of returning a
    key that no longer describes the graph.
    """
    cached = getattr(dfg, _DIGEST_ATTR, None)
    fingerprint = _dfg_fingerprint(dfg)
    if cached is not None and cached[1] == fingerprint:
        return cached[0]
    nodes = []
    for node in dfg.nodes:
        if node.opcode is None:     # collapsed supernode
            op = ("super",) + tuple(i.opcode.value for i in node.insns)
        else:
            op = node.opcode.value
        nodes.append((op, node.forbidden, node.forced_out))
    digest = canonical_digest(
        "dfg-v2",
        dfg.weight,
        tuple(nodes),
        tuple(tuple(row) for row in dfg.succs),
        tuple(tuple(row) for row in dfg.node_inputs),
        tuple(tuple(src) for src in dfg.operand_sources),
    )
    setattr(dfg, _DIGEST_ATTR, (digest, fingerprint))
    return digest


def model_digest(model) -> str:
    """SHA-256 of the cost tables (content, not object identity)."""
    return canonical_digest(
        "model-v1",
        tuple(sorted((op.value, v) for op, v in model.sw_latency.items())),
        tuple(sorted((op.value, v) for op, v in model.hw_delay.items())),
        tuple(sorted((op.value, v) for op, v in model.area.items())),
        model.const_shift_free,
    )


def limits_key(limits) -> Tuple:
    """Canonical tuple of a ``SearchLimits`` (``None`` = unbounded)."""
    if limits is None:
        return (None, False)
    return (limits.max_considered, limits.use_upper_bound)


def callable_fingerprint(fn) -> Tuple:
    """Best-effort content fingerprint of a Python callable.

    Prefers the function's own source text (so editing a workload's
    driver or golden verifier invalidates artifacts derived from it),
    falling back to the compiled bytecode plus constants for callables
    ``inspect`` cannot read.  Helpers the callable merely *calls* are
    not covered — a conservative limitation documented in DESIGN.md
    §10; bump :data:`PIPELINE_VERSION` when shared golden-model helpers
    change semantics.
    """
    try:
        return ("src", inspect.getsource(fn))
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        if code is not None:
            return ("code", code.co_code.hex(), repr(code.co_consts))
        return ("name", getattr(fn, "__module__", ""),
                getattr(fn, "__qualname__", repr(fn)))


def workload_key(
    workload,
    n: Optional[int],
    unroll: Optional[int],
    if_convert: bool,
    verify: bool,
    min_nodes: int,
) -> str:
    """Store key of one compile+profile run (the ``prepare`` artifact).

    Keyed on the workload's *source text* and entry point rather than
    its registry name, so editing a workload's program can never replay
    a stale compiled artifact, while renaming it costs nothing; the
    driver and golden verifier callables are fingerprinted too, so
    changing the input generator or the acceptance check also misses.
    The profiling size resolves the workload's default first — an
    explicit ``n=default_n`` and an omitted ``n`` share the artifact.
    """
    size = n if n is not None else workload.default_n
    return canonical_digest(
        "app-v1",
        PIPELINE_VERSION,
        workload.source,
        workload.entry,
        callable_fingerprint(workload.driver),
        callable_fingerprint(workload.verify),
        size,
        unroll,
        bool(if_convert),
        bool(verify),
        min_nodes,
    )

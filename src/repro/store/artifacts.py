"""The persistent, content-addressed artifact store.

An :class:`ArtifactStore` maps ``(kind, key)`` pairs to picklable
payloads, where *kind* names an artifact family (``"app"`` for compiled
+profiled applications, ``"search"`` for identification results,
``"baseline"`` for baseline execution runs) and *key* is a SHA-256 hex
digest derived from content (:mod:`repro.store.keys`).  Properties:

* **Two tiers.**  Every hit is promoted into an in-process dict (the hot
  tier); the disk tier under ``<root>/v<N>/<kind>/<key[:2]>/<key>.pkl``
  survives the process and is shared by concurrent workers.
* **Atomic writes.**  Payloads are pickled to a unique temp file in the
  destination directory and published with ``os.replace`` — readers see
  either the old file or the complete new one, never a torn write.
  Concurrent writers of the same key race benignly: content addressing
  means they are writing identical bytes.
* **Versioned schemas.**  The layout version is part of the path and a
  header tuple is pickled with every payload; artifacts from a different
  schema (or foreign files) read as misses, never as wrong data.
* **Corruption tolerance.**  A truncated, corrupt or unreadable file is
  a *miss*, counted in ``stats.errors`` and removed, never an exception
  crossing the store boundary.
* **Statistics.**  ``stats`` counts hits (split by tier), misses, puts
  and errors — the numbers ``repro cache stats`` and the session
  benchmark report.

The default root is ``~/.cache/repro``, overridden by the
``REPRO_STORE`` environment variable (a path, or ``0``/``off``/``none``
to disable persistence wherever the default store would be used).
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

#: Environment variable overriding the default store root (or disabling
#: the default store entirely with ``0`` / ``off`` / ``none`` / ``"" ``).
STORE_ENV = "REPRO_STORE"

#: Values of :data:`STORE_ENV` that mean "no persistent store".
_DISABLED = {"0", "off", "none", "disabled"}

#: On-disk layout version: part of every path and payload header.
SCHEMA_VERSION = 1

_HEADER = ("repro-store", SCHEMA_VERSION)

#: Errors that mean "this artifact file is unusable", never propagated.
_READ_ERRORS = (OSError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError, KeyError, TypeError, ValueError)

_tmp_counter = itertools.count()


def stock_store_dir() -> Path:
    """The built-in default store root, ignoring the environment —
    the single place the ``~/.cache/repro`` path is spelled."""
    return Path.home() / ".cache" / "repro"


def default_store_dir() -> Optional[Path]:
    """The store root the environment selects: ``$REPRO_STORE`` if set
    (``None`` when it names one of the disabled values), else
    :func:`stock_store_dir`."""
    env = os.environ.get(STORE_ENV)
    if env is not None:
        if env.strip().lower() in _DISABLED or not env.strip():
            return None
        return Path(env).expanduser()
    return stock_store_dir()


@dataclass
class StoreStats:
    """Hit/miss accounting of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-ready record, including the derived hit rate."""
        record: Dict[str, float] = asdict(self)
        record["hit_rate"] = self.hit_rate
        return record


@dataclass
class StoreInfo:
    """Snapshot of the disk tier, per kind (``repro cache stats``)."""

    root: str
    entries: int = 0
    bytes: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)


class ArtifactStore:
    """Disk-backed content-addressed artifact store (see module doc)."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 hot_limit: int = 4096) -> None:
        """Open (creating lazily) the store rooted at *root*.

        Args:
            root: store directory; defaults to :func:`default_store_dir`
                (raises ``ValueError`` if the environment disables it).
            hot_limit: in-memory hot-tier entry bound; the hot tier is
                dropped wholesale when it fills (artifacts stay on disk).
        """
        if root is None:
            root = default_store_dir()
            if root is None:
                raise ValueError(
                    f"persistent store disabled by ${STORE_ENV}; "
                    f"pass an explicit root to force one")
        self.root = Path(root)
        self.base = self.root / f"v{SCHEMA_VERSION}"
        self.hot_limit = hot_limit
        self.stats = StoreStats()
        self._hot: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    def key(self, kind: str, payload) -> str:
        """Content key for *payload* (repr-stable canonical value) under
        *kind* — namespaced so equal payloads of different kinds never
        collide."""
        from .keys import canonical_digest
        return canonical_digest("store-key-v1", kind, payload)

    def _path(self, kind: str, key: str) -> Path:
        return self.base / kind / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, kind: str, key: str):
        """The stored payload, or ``None`` on a miss.  Disk hits are
        promoted to the hot tier; unreadable files count as misses."""
        hot_key = (kind, key)
        value = self._hot.get(hot_key)
        if value is not None:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return value
        path = self._path(kind, key)
        try:
            with open(path, "rb") as fh:
                header, stored_kind, value = pickle.load(fh)
            if header != _HEADER or stored_kind != kind or value is None:
                raise ValueError("artifact header mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except _READ_ERRORS:
            # Truncated/corrupt/foreign file: a miss, not a crash.  Drop
            # it so the slot can be rewritten cleanly.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.disk_hits += 1
        self._remember(hot_key, value)
        return value

    def put(self, kind: str, key: str, value) -> None:
        """Persist *value* under ``(kind, key)`` atomically.

        ``None`` payloads are rejected (``None`` is the miss sentinel).
        I/O failures degrade to hot-tier-only caching — persistence is a
        performance layer, never a correctness requirement.
        """
        if value is None:
            raise ValueError("cannot store None (the miss sentinel)")
        self._remember((kind, key), value)
        self.stats.puts += 1
        path = self._path(kind, key)
        tmp = path.with_name(
            f".{key}.{os.getpid()}.{next(_tmp_counter)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump((_HEADER, kind, value), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            self.stats.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def contains(self, kind: str, key: str) -> bool:
        """Presence check (no payload decode, no hit/miss accounting)."""
        return ((kind, key) in self._hot
                or self._path(kind, key).is_file())

    def _remember(self, hot_key: Tuple[str, str], value) -> None:
        if len(self._hot) >= self.hot_limit:
            self._hot.clear()
        self._hot[hot_key] = value

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` verb).
    # ------------------------------------------------------------------
    def _files(self) -> Iterator[Path]:
        if not self.base.is_dir():
            return
        for path in self.base.rglob("*.pkl"):
            if path.is_file():
                yield path

    def info(self) -> StoreInfo:
        """Entry/byte counts of the disk tier, split per artifact kind."""
        info = StoreInfo(root=str(self.root))
        for path in self._files():
            kind = path.relative_to(self.base).parts[0]
            try:
                info.bytes += path.stat().st_size
            except OSError:
                continue
            info.entries += 1
            info.kinds[kind] = info.kinds.get(kind, 0) + 1
        return info

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        removed = sum(1 for _ in self._files())
        self._hot.clear()
        shutil.rmtree(self.base, ignore_errors=True)
        return removed

    def gc(self, max_age_days: float = 30.0) -> Tuple[int, int]:
        """Remove disk artifacts older than *max_age_days* (by mtime);
        returns ``(entries_removed, bytes_freed)``.  The hot tier is
        dropped too — it may alias removed entries.  Also sweeps
        orphaned ``*.tmp`` files left by writers killed mid-``put``
        (anything older than an hour is certainly not in flight)."""
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        freed = 0
        for path in list(self._files()):
            try:
                stat = path.stat()
                if stat.st_mtime < cutoff:
                    os.unlink(path)
                    removed += 1
                    freed += stat.st_size
            except OSError:
                continue
        if self.base.is_dir():
            tmp_cutoff = max(cutoff, time.time() - 3600.0)
            for path in list(self.base.rglob("*.tmp")):
                try:
                    stat = path.stat()
                    if stat.st_mtime < tmp_cutoff:
                        os.unlink(path)
                        freed += stat.st_size
                except OSError:
                    continue
        self._hot.clear()
        return removed, freed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ArtifactStore {self.root}>"


def resolve_store(store="auto") -> Optional[ArtifactStore]:
    """Normalise a store argument into an ``ArtifactStore`` or ``None``.

    ``"auto"`` opens the environment-selected default (``None`` when
    ``$REPRO_STORE`` disables it); ``None``/``False`` disable; a path
    opens a store there; an ``ArtifactStore`` passes through.
    """
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if store == "auto" or store is True:
        root = default_store_dir()
        return ArtifactStore(root) if root is not None else None
    return ArtifactStore(store)

"""The persistent, content-addressed artifact store.

An :class:`ArtifactStore` maps ``(kind, key)`` pairs to picklable
payloads, where *kind* names an artifact family (``"app"`` for compiled
+profiled applications, ``"search"`` for identification results,
``"baseline"`` for baseline execution runs) and *key* is a SHA-256 hex
digest derived from content (:mod:`repro.store.keys`).  Properties:

* **Two tiers.**  Every hit is promoted into an in-process LRU (the hot
  tier); the persistent tier is a pluggable
  :class:`~repro.store.backend.StoreBackend` — a directory tree, a
  WAL-mode SQLite file, or a TCP client to ``repro store serve`` —
  that survives the process and is shared by concurrent workers.
* **Atomic writes.**  Payloads are pickled once here and published
  atomically by the backend — readers see the old blob or the complete
  new one, never a torn write.  Concurrent writers of the same key
  race benignly: content addressing means they write identical bytes.
* **Versioned schemas.**  A header tuple is pickled with every payload;
  artifacts from a different schema (or foreign blobs) read as misses,
  never as wrong data.
* **Corruption tolerance.**  A truncated, corrupt or unreadable blob is
  a *miss*, counted in ``stats.errors`` and removed, never an exception
  crossing the store boundary; an unreachable backend degrades the same
  way.
* **Degraded mode.**  After ``degrade_after`` consecutive backend
  failures the store flips to pass-through (reads are fast misses,
  writes stay hot-tier-only) instead of paying a timeout per operation
  against a dead medium; every ``probe_every``-th skipped operation
  re-probes, and one success recovers.  Counted in
  ``stats.degraded_skips`` / ``stats.degraded_events``.
* **Statistics.**  ``stats`` counts hits (split by tier), misses, puts,
  errors and hot-tier evictions — the numbers ``repro cache stats``
  and the session benchmark report.

The default root is ``~/.cache/repro``, overridden by the
``REPRO_STORE`` environment variable (a backend spec — a path,
``sqlite:PATH`` or ``tcp://HOST:PORT`` — or ``0``/``off``/``none`` to
disable persistence wherever the default store would be used).
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from .backend import (
    SCHEMA_VERSION,
    BackendError,
    StoreBackend,
    StoreInfo,
    open_backend,
)

__all__ = [
    "ArtifactStore", "StoreStats", "StoreInfo", "resolve_store",
    "default_store_dir", "default_store_spec", "stock_store_dir",
    "STORE_ENV", "SCHEMA_VERSION",
]

#: Environment variable overriding the default store spec (or disabling
#: the default store entirely with ``0`` / ``off`` / ``none`` / ``"" ``).
STORE_ENV = "REPRO_STORE"

#: Values of :data:`STORE_ENV` that mean "no persistent store".
_DISABLED = {"0", "off", "none", "disabled"}

_HEADER = ("repro-store", SCHEMA_VERSION)

#: Errors that mean "this artifact blob is unusable", never propagated.
_READ_ERRORS = (OSError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError, KeyError, TypeError, ValueError)


def stock_store_dir() -> Path:
    """The built-in default store root, ignoring the environment —
    the single place the ``~/.cache/repro`` path is spelled."""
    return Path.home() / ".cache" / "repro"


def default_store_spec() -> Optional[str]:
    """The backend spec the environment selects: ``$REPRO_STORE`` if
    set (``None`` when it names one of the disabled values), else the
    stock directory root."""
    env = os.environ.get(STORE_ENV)
    if env is not None:
        if env.strip().lower() in _DISABLED or not env.strip():
            return None
        return env
    return str(stock_store_dir())


def default_store_dir() -> Optional[Path]:
    """:func:`default_store_spec` as a path (historical accessor; for
    ``tcp://`` / ``sqlite:`` specs prefer the spec form)."""
    spec = default_store_spec()
    if spec is None:
        return None
    return Path(spec).expanduser()


@dataclass
class StoreStats:
    """Hit/miss accounting of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    errors: int = 0
    evictions: int = 0
    #: Backend operations skipped while the store was degraded
    #: (pass-through mode after consecutive backend failures).
    degraded_skips: int = 0
    #: Times the store *entered* degraded mode.
    degraded_events: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-ready record, including the derived hit rate."""
        record: Dict[str, float] = asdict(self)
        record["hit_rate"] = self.hit_rate
        return record


class ArtifactStore:
    """Backend-agnostic content-addressed artifact store (module doc)."""

    def __init__(self, root=None, hot_limit: int = 4096,
                 degrade_after: int = 8, probe_every: int = 64) -> None:
        """Open the store over the medium *root* names.

        Args:
            root: a backend spec — directory path, ``sqlite:PATH``,
                ``tcp://HOST:PORT`` — or a live
                :class:`~repro.store.backend.StoreBackend`; defaults
                to :func:`default_store_spec` (raises ``ValueError``
                if the environment disables it).
            hot_limit: in-memory hot-tier entry bound, enforced by
                one-at-a-time LRU eviction (artifacts stay persistent).
            degrade_after: consecutive backend failures before the
                store flips to degraded pass-through mode (reads are
                fast misses, writes stay hot-tier-only) instead of
                paying a timeout per operation against a dead medium;
                ``0`` disables degradation.
            probe_every: while degraded, every Nth skipped backend
                operation goes through as a re-probe — one success
                recovers the store, one failure re-arms the skip
                window.
        """
        if root is None:
            root = default_store_spec()
            if root is None:
                raise ValueError(
                    f"persistent store disabled by ${STORE_ENV}; "
                    f"pass an explicit root to force one")
        self.backend: StoreBackend = open_backend(root)
        self.root = getattr(self.backend, "root", self.backend.spec)
        self.hot_limit = hot_limit
        self.degrade_after = degrade_after
        self.probe_every = max(1, probe_every)
        self.stats = StoreStats()
        self._hot: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._consecutive_errors = 0
        self._degraded = False
        self._skips_since_probe = 0

    @property
    def degraded(self) -> bool:
        """True while the store is in pass-through (degraded) mode."""
        return self._degraded

    # ------------------------------------------------------------------
    # Degraded mode: after ``degrade_after`` consecutive backend
    # failures the persistent tier is assumed down and skipped (a dead
    # TCP medium would otherwise cost a timeout per operation for the
    # rest of a sweep).  Count-based re-probing keeps recovery cheap
    # and deterministic: every ``probe_every``-th skipped operation
    # goes through, and a single success flips the store healthy again.
    # ------------------------------------------------------------------
    def _backend_gate(self) -> bool:
        """True when the next backend operation should actually run."""
        if not self._degraded:
            return True
        self._skips_since_probe += 1
        if self._skips_since_probe >= self.probe_every:
            self._skips_since_probe = 0
            return True            # re-probe
        self.stats.degraded_skips += 1
        return False

    def _backend_failed(self) -> None:
        """Record one backend failure; may enter degraded mode."""
        self._consecutive_errors += 1
        if (not self._degraded and self.degrade_after > 0
                and self._consecutive_errors >= self.degrade_after):
            self._degraded = True
            self._skips_since_probe = 0
            self.stats.degraded_events += 1

    def _backend_succeeded(self) -> None:
        """Record one backend success; recovers from degraded mode."""
        self._consecutive_errors = 0
        self._degraded = False

    @property
    def spec(self) -> str:
        """Picklable reconnect string (:func:`repro.store.backend.
        open_backend` reopens it) — how worker processes and remote
        nodes are pointed at this store's medium."""
        return self.backend.spec

    @property
    def base(self):
        """The directory backend's versioned tree root (layout
        introspection; only meaningful for directory media)."""
        return getattr(self.backend, "base", None)

    # ------------------------------------------------------------------
    def key(self, kind: str, payload) -> str:
        """Content key for *payload* (repr-stable canonical value) under
        *kind* — namespaced so equal payloads of different kinds never
        collide."""
        from .keys import canonical_digest
        return canonical_digest("store-key-v1", kind, payload)

    # ------------------------------------------------------------------
    def get(self, kind: str, key: str):
        """The stored payload, or ``None`` on a miss.  Backend hits are
        promoted to the hot tier; unreadable blobs count as misses."""
        hot_key = (kind, key)
        value = self._hot.get(hot_key)
        if value is not None:
            self._hot.move_to_end(hot_key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return value
        if not self._backend_gate():
            self.stats.misses += 1
            return None
        try:
            blob = self.backend.load(kind, key)
        except BackendError:
            self._backend_failed()
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self._backend_succeeded()
        if blob is None:
            self.stats.misses += 1
            return None
        try:
            header, stored_kind, value = pickle.loads(blob)
            if header != _HEADER or stored_kind != kind or value is None:
                raise ValueError("artifact header mismatch")
        except _READ_ERRORS:
            # Truncated/corrupt/foreign blob: a miss, not a crash.
            # Drop it so the slot can be rewritten cleanly.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                self.backend.delete(kind, key)
            except BackendError:
                self._backend_failed()
            return None
        self.stats.hits += 1
        self.stats.disk_hits += 1
        self._remember(hot_key, value)
        return value

    def put(self, kind: str, key: str, value) -> None:
        """Persist *value* under ``(kind, key)`` atomically.

        ``None`` payloads are rejected (``None`` is the miss sentinel).
        Backend failures degrade to hot-tier-only caching — persistence
        is a performance layer, never a correctness requirement.
        """
        if value is None:
            raise ValueError("cannot store None (the miss sentinel)")
        self._remember((kind, key), value)
        self.stats.puts += 1
        try:
            blob = pickle.dumps((_HEADER, kind, value),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except pickle.PicklingError:
            self.stats.errors += 1
            return
        if not self._backend_gate():
            return
        try:
            self.backend.store(kind, key, blob)
        except BackendError:
            self._backend_failed()
            self.stats.errors += 1
        else:
            self._backend_succeeded()

    def contains(self, kind: str, key: str) -> bool:
        """Presence check (no payload decode, no hit/miss accounting)."""
        if (kind, key) in self._hot:
            return True
        if not self._backend_gate():
            return False
        try:
            present = self.backend.contains(kind, key)
        except BackendError:
            self._backend_failed()
            return False
        self._backend_succeeded()
        return present

    def _remember(self, hot_key: Tuple[str, str], value) -> None:
        """Insert into the hot tier, evicting the least recently used
        entries one at a time at ``hot_limit`` (never the whole tier —
        a hot working set must survive a stream of cold inserts)."""
        if hot_key in self._hot:
            self._hot.move_to_end(hot_key)
        else:
            while len(self._hot) >= self.hot_limit:
                self._hot.popitem(last=False)
                self.stats.evictions += 1
        self._hot[hot_key] = value

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` verb).
    # ------------------------------------------------------------------
    def info(self) -> StoreInfo:
        """Entry/byte counts of the persistent tier, per artifact kind."""
        try:
            return self.backend.info()
        except BackendError:
            return StoreInfo(root=str(self.root))

    def clear(self) -> int:
        """Drop both tiers; returns the number of entries removed."""
        self._hot.clear()
        try:
            return self.backend.clear()
        except BackendError:
            return 0

    def gc(self, max_age_days: float = 30.0) -> Tuple[int, int]:
        """Remove persistent artifacts older than *max_age_days*;
        returns ``(entries_removed, bytes_freed)``.  The hot tier is
        dropped too — it may alias removed entries."""
        self._hot.clear()
        try:
            return self.backend.gc(max_age_days)
        except BackendError:
            return 0, 0

    def close(self) -> None:
        """Release the backend's connections/handles (idempotent)."""
        self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ArtifactStore {self.spec}>"


def resolve_store(store="auto") -> Optional[ArtifactStore]:
    """Normalise a store argument into an ``ArtifactStore`` or ``None``.

    ``"auto"`` opens the environment-selected default (``None`` when
    ``$REPRO_STORE`` disables it); ``None``/``False`` disable; a spec
    (path, ``sqlite:PATH``, ``tcp://HOST:PORT``) or a live backend
    opens a store there; an ``ArtifactStore`` passes through.
    """
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if store == "auto" or store is True:
        spec = default_store_spec()
        return ArtifactStore(spec) if spec is not None else None
    return ArtifactStore(store)

"""The sweep engine: one process invocation, a whole design-space grid.

``run_sweep`` executes a :class:`~repro.explore.grid.SweepSpec` in three
phases:

1. **Prepare** — each workload is compiled, profiled and verified
   exactly once (the seed CLI re-did this per grid point);
2. **Warm** — the unique identification obligations implied by the grid
   are planned at *(block, constraint)* granularity, deduplicated by
   cache key, and fanned out largest-first over the work-stealing
   :func:`repro.core.parallel.scheduled_map` (or, with ``cluster=``/
   ``listen=``, over the leader/worker fabric of
   :mod:`repro.cluster`).  Each worker fills a local
   :class:`~repro.explore.cache.SearchCache` and returns its entries
   (or spills them into the shared persistent store); the parent
   merges them, which shares the memo across processes — and, through
   a ``tcp://`` or ``sqlite:`` store, across nodes — without OS-level
   shared memory.  A worker warms a *chain* (the find-best/collapse
   sequence the iterative algorithm replays), a candidate *pool* (for
   area-constrained rows) or a *multi*-cut seed (for Optimal rows);
   per-unit wall time and worker identity land in
   ``SweepOutcome.unit_reports``;
3. **Evaluate** — every grid point runs through the ordinary selection
   algorithms with the shared cache.  Identification is a hit by then,
   and everything on top is polynomial — this is where a sweep over
   ``Ninstr`` or over algorithms gains its order of magnitude.

The cache is a pure memo (DESIGN.md §8): rows of a cached sweep are
bit-identical to a cold one, which ``tests/explore/test_sweep.py``
asserts and ``benchmarks/bench_sweep.py`` measures.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import (
    BlockTooLargeError,
    Constraints,
    find_best_cut,
    find_best_cuts,
    select_clubbing,
    select_iterative,
    select_maxmiso,
    select_optimal,
)
from ..core.parallel import scheduled_map
from ..core.select_area import _block_candidates, select_area_constrained
from ..core.selection import SelectionResult
from ..hwmodel.merit import cut_area
from ..pipeline import Application, prepare_application
from ..store.artifacts import ArtifactStore
from .cache import SearchCache, dfg_digest
from .grid import SweepPoint, SweepSpec, resolve_model

#: A warm task: ("chain", depth) | ("pool", max_per_block) | ("multi", m).
_WarmTask = Tuple[str, int]


def _warm_unit(job: Tuple) -> List[Tuple[Tuple, object]]:
    """Module-level worker: compute one (block, constraint) unit's
    identification obligations into a local cache and return its
    entries (picklable) for the parent to merge.

    When the job names a persistent store spec (a directory path,
    ``sqlite:PATH`` or ``tcp://HOST:PORT``), the worker's cache spills
    every entry straight into that shared store and returns nothing —
    the parent (and any later process, on any node) reads the entries
    back through its own backing tier instead of a pickled round-trip."""
    dfg, nin, nout, model_name, limits, tasks, store_spec = job
    backing = ArtifactStore(store_spec) if store_spec is not None else None
    cache = SearchCache(backing=backing)
    model = resolve_model(model_name)
    cons = Constraints(nin=nin, nout=nout)
    for kind, arg in tasks:
        if kind == "pool":
            # The pool chain is the real _block_candidates, with the
            # cache threaded into its per-round searches: collapse
            # labels are excluded from cache digests, so the single-cut
            # entries it warms serve the iterative algorithm too.
            candidates, stats = _block_candidates(
                (dfg, cons, model, limits, arg, cache))
            cache.put_pool(dfg, cons, model, limits, arg, candidates, stats)
        elif kind == "chain":
            current = dfg
            for k in range(arg):
                result = find_best_cut(current, cons, model, limits,
                                       cache=cache)
                if result.cut is None or result.cut.merit <= 0:
                    break
                current = current.collapse(result.cut.nodes,
                                           label=f"warm{k + 1}")
        elif kind == "multi":
            find_best_cuts(dfg, cons, arg, model, limits, cache=cache)
    return [] if backing is not None else cache.entries()


#: Relative cost weight of one warm task kind, multiplied by the task
#: argument (chain depth / pool size / cut count).  Identification is
#: exponential in block size, so the DFG node count dominates the hint;
#: the weights only rank tasks on the *same* block.
_TASK_WEIGHTS = {"chain": 1.0, "pool": 1.0, "multi": 2.0}


def _unit_hint(job: Tuple) -> float:
    """Scheduling size hint of one warm job: DFG node count times the
    summed task weights.  Hints only need to *rank* units — the
    work-stealing scheduler dispatches largest-first so the plausibly
    longest-running (block, constraint) unit starts immediately
    instead of serializing the tail of the warm phase."""
    dfg, _nin, _nout, _model, _limits, tasks, _store = job
    weight = sum(_TASK_WEIGHTS.get(kind, 1.0) * max(1, arg)
                 for kind, arg in tasks)
    return float(dfg.n) * weight


def _task_covered(task: _WarmTask, cache: SearchCache, dfg, cons,
                  model, limits) -> bool:
    """True when a pre-warmed cache already holds this task's entries.
    The root single-cut entry is a sound proxy for a whole chain: the
    warm phase is the only bulk producer and always completes its
    chain, and anything deeper is filled on demand during evaluation."""
    kind, arg = task
    if kind == "pool":
        return cache.has_pool(dfg, cons, model, limits, arg)
    if kind == "chain":
        return cache.has_single(dfg, cons, model, limits)
    return cache.has_multi(dfg, cons, arg, model, limits)


def _plan_units(
    spec: SweepSpec,
    apps: Dict[str, Application],
    cache: SearchCache,
    store_spec: Optional[str] = None,
) -> List[Tuple]:
    """The unique (block, constraint) warm jobs the grid implies,
    deduplicated by (graph digest, ports, model) and filtered down to
    what *cache* (including its persistent backing tier) does not
    already cover — a pre-warmed store empties the warm phase."""
    chain_depth = (max(spec.ninstrs)
                   if "iterative" in spec.algorithms else 0)
    # (digest, ports, model) -> [dfg, nin, nout, model_name, task set];
    # digest-identical blocks from different workloads merge their task
    # sets (they may disagree, e.g. on optimal_ok) instead of keeping
    # only the first workload's.
    planned: Dict[Tuple, list] = {}
    models = {name: resolve_model(name) for name in spec.models}
    for model_name in spec.models:
        for workload in spec.workloads:
            app = apps[workload]
            optimal_ok = ("optimal" in spec.algorithms
                          and all(d.n <= spec.max_nodes for d in app.dfgs))
            for dfg in app.dfgs:
                for nin, nout in spec.ports:
                    tasks: List[_WarmTask] = []
                    has_pool = "area" in spec.algorithms
                    if has_pool:
                        tasks.append(("pool", spec.max_per_block))
                    # A pool task already warms the single-cut chain up
                    # to max_per_block collapses; a separate chain task
                    # is only needed beyond that (or without area rows).
                    if chain_depth and (not has_pool
                                        or chain_depth > spec.max_per_block):
                        tasks.append(("chain", chain_depth))
                    if optimal_ok:
                        tasks.append(("multi", 1))
                    cons = Constraints(nin=nin, nout=nout)
                    tasks = [t for t in tasks
                             if not _task_covered(t, cache, dfg, cons,
                                                  models[model_name],
                                                  spec.limits)]
                    if not tasks:
                        continue
                    key = (dfg_digest(dfg), nin, nout, model_name)
                    entry = planned.get(key)
                    if entry is None:
                        planned[key] = [dfg, nin, nout, model_name,
                                        list(tasks)]
                    else:
                        entry[4].extend(t for t in tasks
                                        if t not in entry[4])
    return [(dfg, nin, nout, model_name, spec.limits, tuple(tasks),
             store_spec)
            for dfg, nin, nout, model_name, tasks in planned.values()]


@dataclass
class SweepOutcome:
    """Everything one sweep produced: rows plus engine telemetry."""

    spec: SweepSpec
    rows: List[dict] = field(default_factory=list)
    prepare_s: float = 0.0
    warm_s: float = 0.0
    points_s: float = 0.0
    warm_units: int = 0
    cache_stats: Optional[dict] = None
    cache_entries: int = 0
    code_memo: Optional[dict] = None
    unit_reports: List[dict] = field(default_factory=list)
    #: Warm units the cluster quarantined (``status="error"`` reports:
    #: index, worker, attempts, last traceback).  The sweep still
    #: completes — the evaluation phase recomputes a failed unit's
    #: obligations inline through the shared cache, so rows stay
    #: bit-identical; this records that the fabric had to.
    failed_units: List[dict] = field(default_factory=list)

    @property
    def sweep_s(self) -> float:
        """Grid time excluding workload preparation (warm + evaluate)."""
        return self.warm_s + self.points_s

    @property
    def points_per_second(self) -> float:
        """Grid throughput over warm + evaluate time (the headline
        metric of ``benchmarks/bench_sweep.py``)."""
        return len(self.rows) / max(self.sweep_s, 1e-9)


def _run_point(
    point: SweepPoint,
    app: Application,
    spec: SweepSpec,
    model,
    cache: Optional[SearchCache],
    workers: Optional[int],
    baselines: Optional[Dict[Tuple[str, str], tuple]] = None,
    store: Optional[ArtifactStore] = None,
    backend: Optional[str] = None,
) -> dict:
    """Evaluate one grid point through the ordinary algorithms."""
    limits = spec.limits
    cons = point.constraints
    row = {
        "workload": point.workload,
        "nin": point.nin,
        "nout": point.nout,
        "ninstr": point.ninstr,
        "algorithm": point.algorithm,
        "model": point.model,
        "status": "ok",
    }
    start = time.perf_counter()
    try:
        if point.algorithm == "iterative":
            result = select_iterative(app.dfgs, cons, model, limits,
                                      workers=workers, cache=cache)
        elif point.algorithm == "clubbing":
            result = select_clubbing(app.dfgs, cons, model)
        elif point.algorithm == "maxmiso":
            result = select_maxmiso(app.dfgs, cons, model)
        elif point.algorithm == "optimal":
            result = select_optimal(app.dfgs, cons, model, limits,
                                    max_nodes=spec.max_nodes,
                                    workers=workers, cache=cache)
        elif point.algorithm == "area":
            result = select_area_constrained(
                app.dfgs, cons, spec.area_budget, model, limits,
                max_per_block=spec.max_per_block,
                workers=workers, cache=cache)
        else:  # unreachable: SweepSpec validates algorithms
            raise ValueError(f"unknown algorithm {point.algorithm!r}")
    except BlockTooLargeError as exc:
        # The paper's own note: Optimal could not run on the largest
        # adpcm-decode block.  The grid point reports n/a, the sweep
        # continues.
        row.update({
            "status": "n/a",
            "error": str(exc),
            "speedup": None,
            "total_merit": None,
            "num_instructions": None,
            "complete": None,
            "elapsed_s": time.perf_counter() - start,
        })
        return row
    row.update(_result_fields(result, point, spec, model))
    if spec.measure:
        row.update(_measure_fields(app, result, point, spec, model,
                                   baselines, store, backend=backend))
    row["elapsed_s"] = time.perf_counter() - start
    return row


def _measure_fields(app: Application, result: SelectionResult,
                    point: SweepPoint, spec: SweepSpec, model,
                    baselines: Optional[Dict[Tuple[str, str], tuple]],
                    store: Optional[ArtifactStore] = None,
                    backend: Optional[str] = None) -> dict:
    """Execute the point's selection (repro.exec) and report the
    measured — not merely estimated — speedup for the row.  The
    baseline run depends only on (workload, model, n), so it is
    computed once per pair and shared across the grid via *baselines*
    (and, when a *store* is given, across invocations as a persisted
    baseline artifact).  Measurement runs on *backend*; the compiled
    backend's process-wide code memo additionally shares compiled
    blocks across every grid point whose rewritten module leaves a
    block's instruction stream unchanged."""
    from ..exec import measure_selection
    from ..exec.speedup import measure_baseline

    baseline = None
    if baselines is not None:
        key = (point.workload, point.model)
        baseline = baselines.get(key)
        if baseline is None:
            baseline = measure_baseline(app, model, n=spec.n, store=store,
                                        backend=backend)
            baselines[key] = baseline
    measured = measure_selection(app, result, model, n=spec.n,
                                 baseline=baseline, backend=backend)
    return {
        # None instead of inf keeps the JSON artifact strict.
        "measured_speedup": (measured.speedup
                             if math.isfinite(measured.speedup) else None),
        "measured_identical": measured.identical,
        "measured_baseline_cycles": measured.baseline_cycles,
        "measured_cycles": measured.ise_cycles,
        "rewritten_blocks": measured.rewritten_blocks,
        "skipped_cuts": measured.skipped_cuts,
    }


def _result_fields(result: SelectionResult, point: SweepPoint,
                   spec: SweepSpec, model) -> dict:
    fields_: dict = {
        "algorithm_label": result.algorithm,
        "speedup": result.speedup,
        "total_merit": result.total_merit,
        "num_instructions": result.num_instructions,
        "complete": result.complete,
        "cuts_considered": result.stats.cuts_considered,
        "cuts": [
            {
                "block": cut.dfg.name,
                "nodes": sorted(cut.nodes),
                "size": cut.size,
                "merit": cut.merit,
                "num_inputs": cut.num_inputs,
                "num_outputs": cut.num_outputs,
            }
            for cut in result.cuts
        ],
    }
    if point.algorithm == "area":
        fields_["area_budget"] = spec.area_budget
        fields_["total_area"] = sum(
            cut_area(cut.dfg, cut.nodes, model) for cut in result.cuts)
    return fields_


def run_sweep(
    spec: SweepSpec,
    use_cache: bool = True,
    cache: Optional[SearchCache] = None,
    workers: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
    store: Optional[ArtifactStore] = None,
    prepare: Optional[Callable] = None,
    backend: Optional[str] = None,
    cluster: Optional[int] = None,
    listen: Optional[str] = None,
    unit_attempts: int = 3,
    unit_deadline: Optional[float] = None,
    cluster_deadline: Optional[float] = None,
) -> SweepOutcome:
    """Execute the whole grid; see the module docstring for the phases.

    Args:
        spec: the declarative grid.
        use_cache: disable to measure the cold baseline (every point
            recomputes identification from scratch, as separate CLI
            invocations would).
        cache: optional pre-warmed cache to reuse across sweeps; a
            fresh one is created when omitted and ``use_cache`` is on.
        workers: process fan-out for the warm phase and for cache-miss
            identification (default: ``REPRO_WORKERS``, else serial).
        echo: optional progress sink (e.g. ``print``).
        store: optional persistent :class:`repro.store.ArtifactStore`:
            workload preparation, warm-phase search entries and measure
            baselines all read through and spill into it, so a repeated
            sweep skips straight to the (polynomial) evaluation phase.
            Ignored when ``use_cache`` is off — the cold baseline stays
            genuinely cold.
        prepare: optional ``(name, n, unroll) -> Application`` callable
            replacing :func:`prepare_application` — the session passes
            its in-process memo here so a sweep shares Applications
            already prepared by other facade calls.  Ignored when
            ``use_cache`` is off.
        backend: execution backend for profiling and ``measure=True``
            runs (``"walk"``/``"compiled"``; default ``$REPRO_BACKEND``,
            else compiled).  Rows are byte-identical either way.
        cluster: when given, the warm phase runs through the
            leader/worker fabric (:func:`repro.cluster.run_cluster`)
            with this many local worker processes instead of the
            in-process pool.  Rows are bit-identical either way.
        listen: ``HOST:PORT`` the cluster leader additionally accepts
            remote ``repro worker --connect`` nodes on (implies the
            cluster path even with ``cluster=0``); point the store at
            a shared medium (``tcp://`` / ``sqlite:``) so remote
            workers reach the same artifacts.
        unit_attempts: cluster-path hand-out budget per warm unit
            before it is quarantined into ``failed_units`` (the sweep
            then recomputes its obligations during evaluation).
        unit_deadline: seconds one warm unit may stay outstanding on
            a cluster worker before the leader requeues it.
        cluster_deadline: overall warm-phase deadline (seconds) on the
            cluster path; unresolved units are abandoned into
            ``failed_units`` instead of hanging the sweep.
    """
    say = echo or (lambda _line: None)
    outcome = SweepOutcome(spec=spec)
    if not use_cache:
        store = None    # a cold run must not warm-start either
        prepare = None

    start = time.perf_counter()
    apps: Dict[str, Application] = {}
    for name in spec.workloads:
        if prepare is not None:
            apps[name] = prepare(name, spec.n, spec.unroll)
        else:
            apps[name] = prepare_application(name, n=spec.n,
                                             unroll=spec.unroll,
                                             store=store, backend=backend)
        say(f"prepared {name}: {len(apps[name].dfgs)} profiled block(s)")
    outcome.prepare_s = time.perf_counter() - start

    if use_cache and cache is None:
        cache = SearchCache(backing=store)
    elif not use_cache:
        cache = None

    if cache is not None:
        start = time.perf_counter()
        store_spec = (store.spec
                      if store is not None and cache.backing is store
                      else None)
        jobs = _plan_units(spec, apps, cache, store_spec=store_spec)
        outcome.warm_units = len(jobs)
        hints = [_unit_hint(job) for job in jobs]
        if cluster is not None or listen:
            from ..cluster import run_cluster
            unit_entries, reports = run_cluster(
                "repro.explore.runner:_warm_unit", jobs,
                size_hints=hints, workers=(cluster or 0),
                listen=listen, store_spec=store_spec, echo=say,
                max_attempts=unit_attempts,
                unit_deadline=unit_deadline,
                deadline=cluster_deadline)
        else:
            unit_entries, reports = scheduled_map(
                _warm_unit, jobs, workers=workers, size_hints=hints)
        for entries in unit_entries:
            if entries is not None:
                cache.merge(entries)
        outcome.unit_reports = [report.as_dict() for report in reports]
        outcome.failed_units = [report.as_dict() for report in reports
                                if report.status != "ok"]
        if outcome.failed_units:
            # A quarantined unit left a hole in the warm tier.  The
            # evaluation phase only recomputes entries it actually
            # reads, and e.g. iterative selection never re-searches a
            # block it did not select — so deep chain entries of a
            # failed unit would stay missing and the store would
            # diverge from a fault-free run.  Re-run the failed jobs
            # directly, bypassing the dispatch fabric: a unit that
            # failed in transit (killed worker, injected poison, blown
            # deadline) heals here, while a genuinely poisonous
            # compute raises again and stays quarantined.
            healed = 0
            for report in reports:
                if report.status == "ok":
                    continue
                try:
                    entries = _warm_unit(jobs[report.index])
                except Exception:
                    continue
                cache.merge(entries)
                healed += 1
            if healed:
                say(f"cluster: recomputed {healed} quarantined warm "
                    f"unit(s) inline (quarantine report stands)")
        outcome.warm_s = time.perf_counter() - start
        say(f"warmed {len(jobs)} (block, constraint) unit(s) -> "
            f"{len(cache)} cache entries in {outcome.warm_s:.2f}s"
            + (f" ({len(outcome.failed_units)} unit(s) failed)"
               if outcome.failed_units else ""))

    models = {name: resolve_model(name) for name in spec.models}
    baselines: Dict[Tuple[str, str], tuple] = {}
    start = time.perf_counter()
    for point in spec.expand():
        row = _run_point(point, apps[point.workload], spec,
                         models[point.model], cache, workers,
                         baselines=baselines, store=store,
                         backend=backend)
        outcome.rows.append(row)
    outcome.points_s = time.perf_counter() - start

    if cache is not None:
        outcome.cache_stats = cache.stats.as_dict()
        outcome.cache_entries = len(cache)
    # Compiled-backend telemetry: the process-wide code memo the
    # sweep's measurement runs (and any rewritten modules) compiled
    # into or reused — `hits` rising across a sweep is the satellite
    # obligation that rewritten-module region digests share the memo.
    from ..interp.compile import code_memo_stats

    outcome.code_memo = code_memo_stats().as_dict()
    say(f"{len(outcome.rows)} grid point(s) in {outcome.sweep_s:.2f}s "
        f"({outcome.points_per_second:.2f} points/s)")
    return outcome

"""Declarative sweep grids and their expansion into work units.

A :class:`SweepSpec` names the axes of a design-space sweep — workloads,
register-file port budgets, instruction budgets, algorithms, cost
models — plus the shared knobs (profiling size, unroll factor, search
budget, the Optimal node guard, the area budget).  :meth:`SweepSpec.
expand` produces the cartesian grid as :class:`SweepPoint` work units,
one per number the paper's Figs. 8-11 tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from ..core.cut import Constraints
from ..core.engine import SearchLimits
from ..hwmodel.latency import CostModel, uniform_cost_model
from ..workloads import WORKLOADS

#: Algorithms a sweep can run per grid point.
ALGORITHMS: Tuple[str, ...] = (
    "iterative", "optimal", "clubbing", "maxmiso", "area",
)

#: Named cost models (factories — each call builds a fresh instance, so
#: workers can rebuild an equal model; the cache keys on content).
MODELS: Dict[str, Callable[[], CostModel]] = {
    "default": CostModel,
    "uniform": uniform_cost_model,
}


def resolve_model(name: str) -> CostModel:
    try:
        return MODELS[name]()
    except KeyError:
        known = ", ".join(sorted(MODELS))
        raise ValueError(f"unknown cost model {name!r}; known: {known}")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a (workload, constraint, algorithm, model) cell."""

    workload: str
    nin: int
    nout: int
    ninstr: int
    algorithm: str
    model: str = "default"

    @property
    def constraints(self) -> Constraints:
        return Constraints(nin=self.nin, nout=self.nout, ninstr=self.ninstr)


@dataclass(frozen=True)
class SweepSpec:
    """The declarative grid: axes plus shared knobs.

    Attributes:
        workloads: registry names to sweep.
        ports: ``(nin, nout)`` pairs — the paper's Fig. 11 x-axis.
        ninstrs: instruction budgets (Fig. 10 x-axis).
        algorithms: any of ``iterative``/``optimal``/``clubbing``/
            ``maxmiso``/``area``.
        models: named cost models (``default``/``uniform``).
        n: profiling run size shared by all workloads (None = each
            workload's default).
        unroll: optional loop-unroll factor.
        limit: per-identification search budget (``SearchLimits.
            max_considered``).
        max_nodes: the Optimal algorithm's node guard — oversized blocks
            make that grid point report ``n/a``, like the paper's note.
        area_budget: silicon budget (MAC units) for the ``area`` rows.
        max_per_block: candidate-pool depth for ``area`` rows.
        measure: additionally *execute* each grid point's selection
            (rewrite the program and run it through
            :mod:`repro.exec`); rows gain ``measured_speedup`` and
            ``measured_identical`` columns.
    """

    workloads: Tuple[str, ...]
    ports: Tuple[Tuple[int, int], ...]
    ninstrs: Tuple[int, ...] = (16,)
    algorithms: Tuple[str, ...] = ("iterative", "clubbing", "maxmiso")
    models: Tuple[str, ...] = ("default",)
    n: Optional[int] = None
    unroll: Optional[int] = None
    limit: Optional[int] = None
    max_nodes: int = 40
    area_budget: float = 2.0
    max_per_block: int = 32
    measure: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "ports",
                           tuple((int(a), int(b)) for a, b in self.ports))
        object.__setattr__(self, "ninstrs", tuple(self.ninstrs))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "models", tuple(self.models))
        if not (self.workloads and self.ports and self.ninstrs
                and self.algorithms and self.models):
            raise ValueError("every sweep axis needs at least one value")
        for name in self.workloads:
            if name not in WORKLOADS:
                known = ", ".join(sorted(WORKLOADS))
                raise ValueError(f"unknown workload {name!r}; known: {known}")
        for algo in self.algorithms:
            if algo not in ALGORITHMS:
                raise ValueError(f"unknown algorithm {algo!r}; known: "
                                 + ", ".join(ALGORITHMS))
        for model in self.models:
            if model not in MODELS:
                raise ValueError(f"unknown cost model {model!r}; known: "
                                 + ", ".join(sorted(MODELS)))
        for nin, nout in self.ports:
            if nin < 1 or nout < 1:
                raise ValueError(f"port pair ({nin}, {nout}) must be "
                                 f"positive")
        for ninstr in self.ninstrs:
            if ninstr < 1:
                raise ValueError(f"ninstr {ninstr} must be positive")

    # ------------------------------------------------------------------
    @property
    def limits(self) -> Optional[SearchLimits]:
        """The spec's ``limit`` as a ``SearchLimits`` (None = unbounded)."""
        if self.limit is None:
            return None
        return SearchLimits(max_considered=self.limit)

    def expand(self) -> List[SweepPoint]:
        """The cartesian grid, in deterministic report order."""
        points: List[SweepPoint] = []
        for model in self.models:
            for workload in self.workloads:
                for nin, nout in self.ports:
                    for ninstr in self.ninstrs:
                        for algorithm in self.algorithms:
                            points.append(SweepPoint(
                                workload=workload, nin=nin, nout=nout,
                                ninstr=ninstr, algorithm=algorithm,
                                model=model))
        return points

    def describe(self) -> str:
        """Axis sizes and total point count, for progress echoes."""
        return (f"{len(self.workloads)} workload(s) x "
                f"{len(self.ports)} port pair(s) x "
                f"{len(self.ninstrs)} ninstr value(s) x "
                f"{len(self.algorithms)} algorithm(s) x "
                f"{len(self.models)} model(s) = "
                f"{len(self.expand())} points")

    def to_dict(self) -> dict:
        """Every field as a flat dict (the JSON artifact's ``spec``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

"""Digest-keyed memoisation of identification results.

The exponential per-block searches dominate every sweep; everything on
top of them (selection, reporting) is polynomial.  A sweep that varies
only ``Ninstr``, the algorithm, or the workload mix therefore re-runs
*identical* identification work at every grid point — exactly what this
cache removes.

**Key.**  A cache key is ``(kind, dfg_digest, nin, nout, model_digest,
limits, extra)`` where

* ``dfg_digest`` is a SHA-256 over the *search-relevant structure* of
  the graph: per-node opcodes (member opcodes for collapsed supernodes),
  ``forbidden``/``forced_out`` flags, adjacency, external-input wiring,
  operand sources (which carry the constant shift amounts the cost
  model prices) and the block weight.  Node *labels* and the graph
  *name* are cosmetic and excluded, so the ``ise1``/``area1`` collapse
  chains of different callers share entries;
* ``nin``/``nout`` come from :class:`~repro.core.cut.Constraints`;
  ``ninstr`` is deliberately **excluded** — a single-cut search does not
  depend on it, which is what lets an Ninstr sweep reuse every search;
* ``model_digest`` hashes the cost tables, not the object identity, so
  workers can rebuild an equal model and still hit;
* ``extra`` carries the per-kind parameter (``num_cuts`` for multi-cut
  searches, ``max_per_block`` for candidate pools).

**Values** are self-contained picklable payloads: node-index tuples
plus the :class:`~repro.core.engine.SearchStats` counters.  Cuts are
*rebuilt* on lookup with :func:`~repro.core.cut.evaluate_cut` (and, for
candidate pools, by replaying the deterministic collapse chain), so a
hit returns exactly what the search would have — the cache can never
change a result, only skip recomputing it.

The cache object itself is the duck-typed ``cache=`` hook accepted by
:func:`~repro.core.single_cut.find_best_cut`,
:func:`~repro.core.multi_cut.find_best_cuts` and the selection
strategies; :mod:`repro.explore.runner` shares one across processes by
warming per-``(block, constraint)`` entries in workers and merging the
returned entries into the parent's store.

**Persistence.**  A cache may be *backed* by a
:class:`repro.store.ArtifactStore`: in-memory misses fall through to
the disk store (hits promote into memory), puts spill to disk, and —
because the disk tier is shared at the filesystem level — warm workers
and later processes inherit every entry without pickled round-trips.
Keys are already pure content (digests plus plain numbers), so the
in-memory tuple key hashes directly into a store key.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from ..core.cut import Constraints, evaluate_cut
from ..core.engine import SearchLimits, SearchStats
from ..core.multi_cut import MultiCutResult
from ..core.select_area import AreaCandidate
from ..core.single_cut import SearchResult
from ..hwmodel.latency import CostModel
from ..hwmodel.merit import cut_area
from ..ir.dfg import DataFlowGraph
from ..store.keys import (
    SEARCH_VERSION,
    dfg_digest,
    limits_key as _limits_key,
    model_digest,
)

__all__ = ["CacheStats", "SearchCache", "dfg_digest", "model_digest"]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`SearchCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class SearchCache:
    """Process-shared memo of identification results (see module doc).

    The in-memory ``store`` is any mutable mapping; the default is a
    plain dict.  :meth:`entries`/:meth:`merge` move entries between
    caches — the sweep runner's workers each fill a local cache and the
    parent merges what they return, which shares the memo across
    processes without requiring OS-level shared memory (unavailable in
    some sandboxes; cf. the silent serial fallback of
    ``core/parallel.py``).

    ``backing`` optionally adds a persistent tier (an
    :class:`repro.store.ArtifactStore`): gets fall through to it on an
    in-memory miss and promote on hit, puts spill to it, and presence
    checks consult it — which is how warm-start sessions and sibling
    worker processes share one memo through the filesystem.
    """

    #: Artifact kind of spilled entries in the backing store.
    KIND = "search"

    def __init__(self, store: Optional[dict] = None,
                 backing=None) -> None:
        self.store: dict = store if store is not None else {}
        self.backing = backing
        self.stats = CacheStats()
        # Per-model digest memo with an identity guard (recycled id()s
        # must never alias a different model), as in dfg.cost_vectors.
        self._model_digests: Dict[int, Tuple[CostModel, str]] = {}

    # ------------------------------------------------------------------
    def _model_digest(self, model: CostModel) -> str:
        entry = self._model_digests.get(id(model))
        if entry is not None and entry[0] is model:
            return entry[1]
        digest = model_digest(model)
        if len(self._model_digests) >= 8:
            self._model_digests.clear()
        self._model_digests[id(model)] = (model, digest)
        return digest

    def _key(self, kind: str, dfg: DataFlowGraph, constraints: Constraints,
             model: CostModel, limits: Optional[SearchLimits],
             extra: Optional[int] = None) -> Tuple:
        # ninstr is excluded on purpose: identification never depends
        # on the instruction budget.  SEARCH_VERSION retires persisted
        # entries wholesale when engine semantics change.
        return (kind, SEARCH_VERSION, dfg_digest(dfg), constraints.nin,
                constraints.nout, self._model_digest(model),
                _limits_key(limits), extra)

    def _get(self, key: Tuple):
        value = self.store.get(key)
        if value is None and self.backing is not None:
            value = self.backing.get(
                self.KIND, self.backing.key(self.KIND, key))
            if value is not None:
                self.store[key] = value     # promote into memory
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def _put(self, key: Tuple, value) -> None:
        self.store[key] = value
        self.stats.puts += 1
        if self.backing is not None:
            self.backing.put(self.KIND, self.backing.key(self.KIND, key),
                             value)

    # ------------------------------------------------------------------
    # Single-cut searches (find_best_cut).
    # ------------------------------------------------------------------
    def get_single(self, dfg: DataFlowGraph, constraints: Constraints,
                   model: CostModel,
                   limits: Optional[SearchLimits]) -> Optional[SearchResult]:
        """Memoized :func:`find_best_cut` result for this (graph,
        constraint, model, limits) key, or ``None`` on a miss.  Cuts are
        re-hydrated against *dfg*, so the result is bit-identical to a
        cold search."""
        value = self._get(self._key("single", dfg, constraints, model,
                                    limits))
        if value is None:
            return None
        nodes, stats_dict, complete = value
        cut = (evaluate_cut(dfg, frozenset(nodes), model)
               if nodes is not None else None)
        return SearchResult(cut=cut, stats=SearchStats(**stats_dict),
                            complete=complete)

    def put_single(self, dfg: DataFlowGraph, constraints: Constraints,
                   model: CostModel, limits: Optional[SearchLimits],
                   result: SearchResult) -> None:
        """Store a :func:`find_best_cut` result (node set + stats only;
        values re-derive on :meth:`get_single`, keeping entries small
        and picklable)."""
        nodes = (tuple(sorted(result.cut.nodes))
                 if result.cut is not None else None)
        self._put(self._key("single", dfg, constraints, model, limits),
                  (nodes, asdict(result.stats), result.complete))

    # ------------------------------------------------------------------
    # Multi-cut searches (find_best_cuts).
    # ------------------------------------------------------------------
    def get_multi(self, dfg: DataFlowGraph, constraints: Constraints,
                  num_cuts: int, model: CostModel,
                  limits: Optional[SearchLimits]) -> Optional[MultiCutResult]:
        """Memoized :func:`find_best_cuts` result for ``num_cuts``
        simultaneous cuts, or ``None`` on a miss."""
        value = self._get(self._key("multi", dfg, constraints, model,
                                    limits, num_cuts))
        if value is None:
            return None
        node_sets, total_merit, stats_dict, complete = value
        cuts = [evaluate_cut(dfg, frozenset(nodes), model)
                for nodes in node_sets]
        return MultiCutResult(cuts=cuts, total_merit=total_merit,
                              stats=SearchStats(**stats_dict),
                              complete=complete)

    def put_multi(self, dfg: DataFlowGraph, constraints: Constraints,
                  num_cuts: int, model: CostModel,
                  limits: Optional[SearchLimits],
                  result: MultiCutResult) -> None:
        """Store a :func:`find_best_cuts` result under its grid key."""
        # Cuts are stored in the result's (merit-sorted) order, so the
        # decoded list is identical without re-sorting.
        node_sets = tuple(tuple(sorted(c.nodes)) for c in result.cuts)
        self._put(self._key("multi", dfg, constraints, model, limits,
                            num_cuts),
                  (node_sets, result.total_merit, asdict(result.stats),
                   result.complete))

    # ------------------------------------------------------------------
    # Candidate pools (select_area.enumerate_candidates).
    # ------------------------------------------------------------------
    def get_pool(self, dfg: DataFlowGraph, constraints: Constraints,
                 model: CostModel, limits: Optional[SearchLimits],
                 max_per_block: int,
                 ) -> Optional[Tuple[List[AreaCandidate], SearchStats]]:
        """Memoized area-candidate pool of one block (``None`` on miss);
        the deterministic collapse chain is replayed so each candidate
        lives in its round's graph, exactly as a cold enumeration."""
        value = self._get(self._key("pool", dfg, constraints, model,
                                    limits, max_per_block))
        if value is None:
            return None
        node_sets, stats_dict = value
        # Replay the deterministic collapse chain of _block_candidates:
        # candidate k lives in the k-times-collapsed graph.
        candidates: List[AreaCandidate] = []
        current = dfg
        for nodes in node_sets:
            cut = evaluate_cut(current, frozenset(nodes), model)
            area = cut_area(current, cut.nodes, model)
            candidates.append(AreaCandidate(cut=cut, area=area))
            current = current.collapse(cut.nodes,
                                       label=f"area{len(candidates)}")
        return candidates, SearchStats(**stats_dict)

    def put_pool(self, dfg: DataFlowGraph, constraints: Constraints,
                 model: CostModel, limits: Optional[SearchLimits],
                 max_per_block: int, candidates: List[AreaCandidate],
                 stats: SearchStats) -> None:
        """Store one block's area-candidate pool (node sets per round)."""
        node_sets = tuple(tuple(sorted(c.cut.nodes)) for c in candidates)
        self._put(self._key("pool", dfg, constraints, model, limits,
                            max_per_block),
                  (node_sets, asdict(stats)))

    # ------------------------------------------------------------------
    # Presence checks: no decoding, no hit/miss accounting.  Used by
    # the sweep planner to skip warm jobs a pre-warmed cache already
    # covers.
    # ------------------------------------------------------------------
    def _has(self, key: Tuple) -> bool:
        if key in self.store:
            return True
        return (self.backing is not None
                and self.backing.contains(
                    self.KIND, self.backing.key(self.KIND, key)))

    def has_single(self, dfg: DataFlowGraph, constraints: Constraints,
                   model: CostModel,
                   limits: Optional[SearchLimits]) -> bool:
        """Presence check for a single-cut entry (no decode, no stats)."""
        return self._has(self._key("single", dfg, constraints, model,
                                   limits))

    def has_multi(self, dfg: DataFlowGraph, constraints: Constraints,
                  num_cuts: int, model: CostModel,
                  limits: Optional[SearchLimits]) -> bool:
        """Presence check for a multi-cut entry (no decode, no stats)."""
        return self._has(self._key("multi", dfg, constraints, model,
                                   limits, num_cuts))

    def has_pool(self, dfg: DataFlowGraph, constraints: Constraints,
                 model: CostModel, limits: Optional[SearchLimits],
                 max_per_block: int) -> bool:
        """Presence check for a candidate-pool entry (no decode)."""
        return self._has(self._key("pool", dfg, constraints, model,
                                   limits, max_per_block))

    # ------------------------------------------------------------------
    # Cross-process sharing.
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[Tuple, object]]:
        """All (key, value) pairs, picklable, for :meth:`merge`."""
        return list(self.store.items())

    def merge(self, entries) -> None:
        """Adopt entries computed elsewhere (first writer wins); spilled
        to the backing store too so merged warm work persists."""
        for key, value in entries:
            if key not in self.store:
                self.store[key] = value
                self.stats.puts += 1
                if self.backing is not None:
                    skey = self.backing.key(self.KIND, key)
                    if not self.backing.contains(self.KIND, skey):
                        self.backing.put(self.KIND, skey, value)

    def __len__(self) -> int:
        return len(self.store)

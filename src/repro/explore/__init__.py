"""Design-space exploration: batched sweeps over the paper's grids.

Every result of the paper (Figs. 8-11) is a *sweep* — speedup as a
function of the register-file port budget (Nin, Nout), the instruction
budget (Ninstr) and the algorithm, across benchmarks.  This package runs
such grids in one process invocation:

* :mod:`repro.explore.grid` — the declarative grid specification
  (:class:`SweepSpec`) and its expansion into :class:`SweepPoint` work
  units;
* :mod:`repro.explore.cache` — a digest-keyed memo of identification
  results (:class:`SearchCache`), shared by every grid point, so sweeps
  that vary only ``Ninstr`` or the algorithm never repeat the
  exponential per-block searches;
* :mod:`repro.explore.runner` — the engine: prepares each workload
  once, warms the cache at *(block, constraint)* granularity over
  :mod:`repro.core.parallel`, then evaluates every grid point through
  the ordinary selection algorithms;
* :mod:`repro.explore.report` — Fig. 11-style tables plus JSON/CSV
  artifacts.

The cache is a pure memo: a cached sweep is bit-identical to a cold one
(DESIGN.md §8 states the invariants).
"""

from .cache import CacheStats, SearchCache, dfg_digest, model_digest
from .grid import MODELS, SweepPoint, SweepSpec, resolve_model
from .report import format_table, rows_payload, write_csv, write_json
from .runner import SweepOutcome, run_sweep

__all__ = [
    "SweepSpec", "SweepPoint", "MODELS", "resolve_model",
    "SearchCache", "CacheStats", "dfg_digest", "model_digest",
    "run_sweep", "SweepOutcome",
    "format_table", "rows_payload", "write_json", "write_csv",
]

"""Sweep artifacts: Fig. 11-style tables, JSON and CSV.

The JSON payload is the machine-readable record a paper table is built
from (one object per grid point, cuts included); the CSV flattens the
same rows for spreadsheets; ``format_table`` prints the familiar
ports-by-algorithm matrix, one block per (model, workload, Ninstr).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional, Sequence

from .runner import SweepOutcome

#: Flat columns shared by the CSV artifact and external tooling.
CSV_COLUMNS = [
    "workload", "nin", "nout", "ninstr", "algorithm", "model", "status",
    "speedup", "measured_speedup", "measured_identical", "total_merit",
    "num_instructions", "complete", "cuts_considered", "elapsed_s",
]


def rows_payload(outcome: SweepOutcome) -> dict:
    """The full machine-readable record of one sweep."""
    return {
        "spec": outcome.spec.to_dict(),
        "meta": {
            "points": len(outcome.rows),
            "prepare_s": outcome.prepare_s,
            "warm_s": outcome.warm_s,
            "points_s": outcome.points_s,
            "sweep_s": outcome.sweep_s,
            "points_per_second": outcome.points_per_second,
            "warm_units": outcome.warm_units,
            "cache_entries": outcome.cache_entries,
            "cache_stats": outcome.cache_stats,
            "unit_reports": outcome.unit_reports,
            "failed_units": outcome.failed_units,
            "warm_workers": sorted({report["worker"] for report
                                    in outcome.unit_reports}),
        },
        "rows": outcome.rows,
    }


def write_json(outcome: SweepOutcome, path) -> None:
    with open(path, "w") as fh:
        json.dump(rows_payload(outcome), fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_csv(outcome: SweepOutcome, path) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS,
                                extrasaction="ignore")
        writer.writeheader()
        for row in outcome.rows:
            writer.writerow(row)


def _cell(row: Optional[dict]) -> str:
    if row is None:
        return "." .rjust(9)
    if row["status"] != "ok":
        return "n/a".rjust(9)
    if "measured_speedup" in row:
        # Measured (executed) speedup wins over the static estimate;
        # '!' marks a bit-exactness failure (should never happen), '*'
        # still marks an exhausted search budget.
        if not row.get("measured_identical", True):
            flag = "!"
        else:
            flag = "" if row.get("complete") else "*"
        value = row["measured_speedup"]
        if value is None:       # JSON-safe stand-in for infinity
            return f"{'inf':>8s}{flag or ' '}"
        return f"{value:8.3f}{flag or ' '}"
    flag = "" if row.get("complete") else "*"
    return f"{row['speedup']:8.3f}{flag or ' '}"


def format_table(rows: Sequence[dict]) -> str:
    """Fig. 11-style speedup matrix: (Nin, Nout) rows x algorithm
    columns, one block per (model, workload, Ninstr) combination.
    ``*`` marks rows whose search budget was exhausted; ``n/a`` marks
    grid points the algorithm refused (oversized block for Optimal)."""
    algorithms: List[str] = []
    for row in rows:
        if row["algorithm"] not in algorithms:
            algorithms.append(row["algorithm"])
    blocks: Dict[tuple, Dict[tuple, dict]] = {}
    for row in rows:
        block_key = (row["model"], row["workload"], row["ninstr"])
        cell_key = (row["nin"], row["nout"], row["algorithm"])
        blocks.setdefault(block_key, {})[cell_key] = row

    lines: List[str] = []
    for (model, workload, ninstr), cells in blocks.items():
        title = f"{workload}  Ninstr={ninstr}"
        if model != "default":
            title += f"  model={model}"
        lines.append(title)
        header = f"  {'Nin':>3s} {'Nout':>4s} |"
        for algo in algorithms:
            header += f" {algo:>9s}"
        lines.append(header)
        ports = []
        for nin, nout, _ in cells:
            if (nin, nout) not in ports:
                ports.append((nin, nout))
        for nin, nout in ports:
            line = f"  {nin:3d} {nout:4d} |"
            for algo in algorithms:
                line += f" {_cell(cells.get((nin, nout, algo)))}"
            lines.append(line)
        lines.append("")
    return "\n".join(lines).rstrip("\n")

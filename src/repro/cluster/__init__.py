"""Leader/worker sweep sharding over TCP (DESIGN.md §15).

A sweep's warm phase is a bag of independent, idempotent *(block,
constraint)* identification units whose results are content-addressed
— exactly the shape that shards across machines.  This package is the
fabric:

* :class:`~repro.cluster.leader.ClusterLeader` — owns the unit queue,
  hands units out **largest-first** to whichever worker asks next
  (work stealing by construction: an idle worker pulls the next unit,
  so one oversized Optimal block occupies one worker while every
  other unit drains through the rest), requeues units lost to a dead
  worker, and records per-unit telemetry;
* :func:`~repro.cluster.worker.worker_loop` — the worker side:
  connect, pull, execute, report, repeat (``repro worker --connect``);
* :func:`~repro.cluster.leader.run_cluster` — the one-call local
  topology: start a leader, fork N store-connected local worker
  processes, optionally also listen for remote workers, collect
  everything (``repro sweep --cluster N [--listen HOST:PORT]``).

Results are bit-identical to a serial sweep regardless of topology:
units are pure functions of their payload, the shared artifact store
(or the returned entry lists) is the only communication medium, and
the leader evaluates the grid itself from the merged cache.
"""

from .leader import ClusterLeader, run_cluster
from .worker import worker_loop

__all__ = ["ClusterLeader", "run_cluster", "worker_loop"]

"""The leader side of the sweep cluster.

The leader owns the bag of units and serves it over the same framed
wire protocol the store server speaks.  Scheduling is pull-based work
stealing: the queue is a max-heap on the units' size hints, and
whichever worker asks next receives the largest pending unit — so the
one oversized Optimal block pins exactly one worker while every other
unit drains through the rest, and a fast worker automatically "steals"
the queue share a slow one cannot take.  Robustness invariants:

* a unit is *outstanding* from hand-out to result; if the worker's
  connection drops first, the unit is requeued for the next puller;
* duplicate results for a unit (a worker that reported and then died,
  plus the requeued re-run) are benign: units are pure, so the copies
  are identical and the first one wins;
* a unit whose function *raises* is quarantined, not fatal: the worker
  reports ``("error", index, traceback, elapsed, name)`` and keeps
  serving, the leader retries the unit up to ``max_attempts``
  hand-outs, then records a structured failure (``UnitReport`` with
  ``status="error"``) and the sweep finishes around it — one poison
  unit can no longer cascade through the whole fleet;
* a unit held past ``unit_deadline`` seconds (hung worker) is requeued
  by :meth:`ClusterLeader.expire_deadlines` under the same attempts
  cap, and an overall ``deadline`` on :func:`run_cluster` abandons
  whatever is unresolved (recorded as failures) instead of hanging;
* :func:`run_cluster` is never stranded — if every worker dies (or
  none could be forked), the leader runs the leftovers in-process,
  so the cluster path degrades to serial, never to a hang.

Results are reassembled in unit order (``None`` for failed units),
bit-identical to a serial map over the payloads, with per-unit
telemetry (:class:`~repro.core.parallel.UnitReport`) in completion
order.
"""

from __future__ import annotations

import heapq
import socketserver
import threading
import time
import traceback
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.parallel import UnitReport
from ..wire import WireError, parse_address, recv_msg, send_msg
from .worker import resolve_callable

__all__ = ["ClusterLeader", "run_cluster"]

#: Default port of ``repro sweep --listen`` (store server uses 9723).
DEFAULT_PORT = 9724

#: Failures that mean "cannot fork local workers here" — the leader
#: then runs the units itself instead of giving up.
_SPAWN_ERRORS = (OSError, ImportError, NotImplementedError,
                 PermissionError, ValueError)


class _LeaderServer(socketserver.ThreadingTCPServer):
    """TCP server whose handler threads share one ClusterLeader."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, leader: "ClusterLeader") -> None:
        """Bind on *address* and attach *leader* for the handlers."""
        super().__init__(address, _Handler)
        self.leader = leader


class _Handler(socketserver.BaseRequestHandler):
    """One connected worker: hello → welcome, then get/result rounds."""

    def handle(self) -> None:
        """Serve one worker connection until EOF; requeue on loss."""
        leader: ClusterLeader = self.server.leader
        sock = self.request
        sock.settimeout(leader.idle_timeout)
        claimed: Optional[int] = None
        name = "?"
        try:
            while True:
                message = recv_msg(sock)
                if message is None:
                    break
                op = message[0]
                if op == "hello":
                    name = str(message[1])
                    send_msg(sock, ("welcome", {
                        "fn": leader.fn_path,
                        "units": leader.pending_count(),
                        "store": leader.store_spec,
                    }))
                elif op == "get":
                    status, index, payload = leader.take(name)
                    if status == "unit":
                        claimed = index
                        send_msg(sock, ("unit", index, payload))
                    elif status == "wait":
                        send_msg(sock, ("wait",))
                    else:
                        send_msg(sock, ("done",))
                elif op == "result":
                    _tag, index, result, elapsed, reporter = message
                    leader.complete(index, result, elapsed,
                                    str(reporter))
                    claimed = None
                    send_msg(sock, ("ok",))
                elif op == "error":
                    _tag, index, error, elapsed, reporter = message
                    leader.fail(index, str(error), elapsed,
                                str(reporter))
                    claimed = None
                    send_msg(sock, ("ok",))
                elif op == "ping":
                    send_msg(sock, ("pong",))
                else:
                    send_msg(sock, ("error", f"unknown op {op!r}"))
        except (WireError, OSError):
            pass
        finally:
            if claimed is not None:
                leader.requeue(claimed)


class ClusterLeader:
    """Unit queue + result collector behind a TCP accept loop.

    Serves *payloads* largest-first (by *size_hints*) to connecting
    workers, which execute the module-level callable named by
    *fn_path* (``module:callable``).  ``take``/``complete``/``requeue``
    are the scheduling core — also used directly by the leader's own
    in-process fallback — and are thread-safe.
    """

    def __init__(self, fn_path: str, payloads: Sequence,
                 size_hints: Optional[Sequence[float]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 store_spec: Optional[str] = None,
                 idle_timeout: float = 3600.0,
                 max_attempts: int = 3,
                 unit_deadline: Optional[float] = None) -> None:
        """Stage *payloads* for serving; call :meth:`start` to listen.

        ``port=0`` binds an ephemeral port (read it back from
        :attr:`address`).  *store_spec* is advisory metadata echoed to
        workers in the welcome (payloads carry their own store spec).
        *max_attempts* caps how often one unit is handed out before it
        is quarantined as failed; *unit_deadline* (seconds) is how long
        a unit may stay outstanding on one worker before
        :meth:`expire_deadlines` takes it back.
        """
        self.fn_path = fn_path
        self.store_spec = store_spec
        self.idle_timeout = idle_timeout
        self.max_attempts = max(1, max_attempts)
        self.unit_deadline = unit_deadline
        self._payloads = list(payloads)
        hints = (list(size_hints) if size_hints is not None
                 else [0.0] * len(self._payloads))
        if len(hints) != len(self._payloads):
            raise ValueError("size_hints length mismatch")
        self._hints = [float(h) for h in hints]
        # Max-heap on hint, ties broken by unit order.
        self._pending = [(-self._hints[i], i)
                         for i in range(len(self._payloads))]
        heapq.heapify(self._pending)
        #: index -> (worker, monotonic hand-out time)
        self._outstanding: dict = {}
        self._results: dict = {}
        self._failed: dict = {}
        self._attempts: dict = {}
        self._reports: List[UnitReport] = []
        self._lock = threading.Lock()
        self._done = threading.Event()
        if not self._payloads:
            self._done.set()
        self._server = _LeaderServer((host, port), self)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Scheduling core (thread-safe; shared by handlers and fallback).
    # ------------------------------------------------------------------
    def take(self, worker: str) -> Tuple[str, Optional[int], object]:
        """Claim the largest pending unit for *worker*.

        Returns ``("unit", index, payload)``, or ``("wait", None,
        None)`` when the queue is empty but units are still
        outstanding elsewhere (one may be requeued yet), or
        ``("done", None, None)`` when every unit is resolved (result
        or recorded failure).  Every hand-out counts one attempt
        against the unit's ``max_attempts`` budget.
        """
        with self._lock:
            if self._pending:
                _neg, index = heapq.heappop(self._pending)
                self._attempts[index] = self._attempts.get(index, 0) + 1
                self._outstanding[index] = (worker, time.monotonic())
                return "unit", index, self._payloads[index]
            if self._resolved_locked():
                return "done", None, None
            return "wait", None, None

    def _resolved_locked(self) -> bool:
        return (len(self._results) + len(self._failed)
                >= len(self._payloads))

    def _check_done_locked(self) -> None:
        if self._resolved_locked():
            self._done.set()

    def complete(self, index: int, result, elapsed: float,
                 worker: str) -> None:
        """Record *result* for unit *index* (duplicates are ignored —
        idempotent units make re-runs after a requeue identical).  A
        late success from a worker that outlived the unit's failure
        verdict supersedes it: a real result always beats a failure
        record."""
        with self._lock:
            self._outstanding.pop(index, None)
            if index in self._results:
                return
            if index in self._failed:
                del self._failed[index]
                self._reports = [r for r in self._reports
                                 if not (r.index == index
                                         and r.status != "ok")]
            self._results[index] = result
            self._reports.append(UnitReport(
                index=index, size_hint=self._hints[index],
                elapsed_s=float(elapsed), worker=worker,
                attempts=self._attempts.get(index, 1)))
            self._check_done_locked()

    def fail(self, index: int, error: str, elapsed: float,
             worker: str) -> None:
        """Record one failed execution of unit *index*.

        Requeues the unit while hand-outs remain under
        ``max_attempts``; at the cap the unit is quarantined — a
        structured ``status="error"`` report with the last traceback —
        and the run finishes around it."""
        with self._lock:
            self._outstanding.pop(index, None)
            if index in self._results or index in self._failed:
                return
            if self._attempts.get(index, 0) < self.max_attempts:
                heapq.heappush(self._pending,
                               (-self._hints[index], index))
                return
            self._record_failure_locked(index, error, elapsed, worker)

    def _record_failure_locked(self, index: int, error: str,
                               elapsed: float, worker: str) -> None:
        self._failed[index] = str(error)
        self._reports.append(UnitReport(
            index=index, size_hint=self._hints[index],
            elapsed_s=float(elapsed), worker=worker,
            status="error", attempts=self._attempts.get(index, 0),
            error=str(error)))
        self._check_done_locked()

    def requeue(self, index: int) -> None:
        """Return a lost unit (worker died mid-run) to the queue —
        under the same attempts cap as :meth:`fail`, so a unit that
        kills every worker that touches it is eventually quarantined
        instead of cycling forever."""
        with self._lock:
            self._outstanding.pop(index, None)
            if index in self._results or index in self._failed:
                return
            if self._attempts.get(index, 0) < self.max_attempts:
                heapq.heappush(self._pending,
                               (-self._hints[index], index))
                return
            self._record_failure_locked(
                index, f"unit lost with worker after "
                       f"{self._attempts.get(index, 0)} attempt(s)",
                0.0, "leader")

    def expire_deadlines(self) -> int:
        """Requeue units outstanding past ``unit_deadline`` (hung or
        stalled worker); returns how many were taken back.  The
        original worker's late result, if it ever lands, is absorbed
        by :meth:`complete`'s dedup."""
        if self.unit_deadline is None:
            return 0
        now = time.monotonic()
        expired = 0
        with self._lock:
            for index, (worker, since) in list(self._outstanding.items()):
                if now - since < self.unit_deadline:
                    continue
                self._outstanding.pop(index, None)
                expired += 1
                if index in self._results or index in self._failed:
                    continue
                if self._attempts.get(index, 0) < self.max_attempts:
                    heapq.heappush(self._pending,
                                   (-self._hints[index], index))
                else:
                    self._record_failure_locked(
                        index, f"unit deadline of "
                               f"{self.unit_deadline}s exceeded on "
                               f"{worker}", self.unit_deadline, worker)
        return expired

    def abandon(self, reason: str) -> int:
        """Fail every unresolved unit with *reason* and finish the run
        (the overall-deadline path); returns units abandoned."""
        with self._lock:
            self._pending = []
            self._outstanding.clear()
            abandoned = 0
            for index in range(len(self._payloads)):
                if index in self._results or index in self._failed:
                    continue
                self._record_failure_locked(index, reason, 0.0,
                                            "leader")
                abandoned += 1
            self._done.set()
            return abandoned

    def pending_count(self) -> int:
        """Units not yet handed out (outstanding ones excluded)."""
        with self._lock:
            return len(self._pending)

    def failed(self) -> dict:
        """``{index: error}`` for every quarantined unit so far."""
        with self._lock:
            return dict(self._failed)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "ClusterLeader":
        """Start accepting workers on a daemon thread; returns self."""
        # Tight poll interval: shutdown() blocks for up to one poll,
        # and half a second of teardown would dwarf a small warm phase.
        self._thread = threading.Thread(
            target=lambda: self._server.serve_forever(poll_interval=0.05),
            name="repro-cluster-leader", daemon=True)
        self._thread.start()
        return self

    @property
    def address(self) -> str:
        """``host:port`` workers connect to (wildcard → loopback)."""
        host, port = self._server.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"{host}:{port}"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every unit has a result (or *timeout*)."""
        return self._done.wait(timeout)

    def run_pending_inline(self, fn: Optional[Callable] = None,
                           poll_s: float = 0.05) -> int:
        """Drain the queue in the calling process (fallback path).

        Used when no workers could be forked or all of them died:
        the leader claims and executes units itself until every unit
        is resolved, briefly polling while units are outstanding on
        still-connected remote workers.  Inline units are quarantined
        exactly like remote ones (an exception consumes one attempt,
        never propagates), and a chaos plan's unit faults still apply
        — minus process kills, which degrade to poison.  Returns the
        units run inline successfully.
        """
        from ..chaos.plan import plan_from_env

        fn = fn or resolve_callable(self.fn_path)
        plan = plan_from_env()
        ran = 0
        while True:
            status, index, payload = self.take("leader-inline")
            if status == "done":
                return ran
            if status == "wait":
                self.expire_deadlines()
                time.sleep(poll_s)
                continue
            start = time.perf_counter()
            try:
                if plan is not None:
                    plan.check_unit(index, allow_kill=False)
                result = fn(payload)
            except Exception:
                self.fail(index, traceback.format_exc(limit=20),
                          time.perf_counter() - start, "leader-inline")
                continue
            self.complete(index, result,
                          time.perf_counter() - start, "leader-inline")
            ran += 1

    def results(self) -> Tuple[List, List[UnitReport]]:
        """``(results in unit order, reports in completion order)`` —
        call after :meth:`wait` returns true.  Quarantined units hold
        ``None`` in the results list; their reports carry
        ``status="error"``."""
        with self._lock:
            ordered = [self._results.get(i)
                       for i in range(len(self._payloads))]
            return ordered, list(self._reports)

    def shutdown(self) -> None:
        """Stop accepting workers and release the socket (idempotent).

        Handler threads already serving a connection are daemonic and
        finish (or die with the process) on their own.
        """
        self._server.shutdown()
        self._server.server_close()


def run_cluster(
    fn_path: str,
    payloads: Sequence,
    size_hints: Optional[Sequence[float]] = None,
    workers: int = 0,
    listen: Optional[str] = None,
    store_spec: Optional[str] = None,
    echo: Optional[Callable[[str], None]] = None,
    poll_s: float = 0.1,
    max_attempts: int = 3,
    unit_deadline: Optional[float] = None,
    deadline: Optional[float] = None,
) -> Tuple[List, List[UnitReport]]:
    """Map *payloads* through a leader/worker cluster, in unit order.

    Starts a :class:`ClusterLeader` for the module-level callable
    named by *fn_path*, forks *workers* local worker processes
    against it, and — when *listen* gives a ``HOST:PORT`` — also
    accepts remote ``repro worker --connect`` nodes on that address.
    Blocks until every unit is resolved and returns ``(results,
    unit_reports)`` exactly like
    :func:`~repro.core.parallel.scheduled_map` — except that a unit
    whose function failed on ``max_attempts`` hand-outs resolves to
    ``None`` with a ``status="error"`` report instead of propagating.

    Never hangs: units lost to a dead worker are requeued (same
    attempts cap), units outstanding past *unit_deadline* seconds are
    taken back from their worker, an overall *deadline* (seconds)
    abandons whatever is unresolved, and if no workers remain (or
    none could be forked) the leftovers run in the calling process —
    degradation is to serial execution, not to failure.
    """
    say = echo or (lambda _line: None)
    if not payloads:
        return [], []
    host, port = ("127.0.0.1", 0)
    if listen:
        host, port = parse_address(listen, default_port=DEFAULT_PORT)
    leader = ClusterLeader(fn_path, payloads, size_hints=size_hints,
                           host=host, port=port,
                           store_spec=store_spec,
                           max_attempts=max_attempts,
                           unit_deadline=unit_deadline).start()
    started = time.monotonic()
    procs: List = []
    try:
        if workers > 0:
            try:
                import multiprocessing
                for i in range(workers):
                    proc = multiprocessing.Process(
                        target=_spawn_target,
                        args=(leader.address, i), daemon=True)
                    proc.start()
                    procs.append(proc)
            except _SPAWN_ERRORS:
                procs = [p for p in procs if p.is_alive()]
        if listen:
            say(f"cluster: leader on {leader.address} "
                f"({len(payloads)} unit(s), {len(procs)} local "
                f"worker(s); repro worker --connect {leader.address})")
        if not procs and not listen:
            # Nothing will ever pull: run everything in-process.
            leader.run_pending_inline()
        while not leader.wait(timeout=poll_s):
            leader.expire_deadlines()
            if (deadline is not None
                    and time.monotonic() - started >= deadline):
                abandoned = leader.abandon(
                    f"cluster deadline of {deadline}s exceeded")
                say(f"cluster: overall deadline of {deadline}s "
                    f"exceeded; abandoned {abandoned} unit(s)")
                break
            if procs and not any(p.is_alive() for p in procs):
                # Every local worker died (crash, OOM-kill).  Their
                # closed sockets requeued whatever they held; finish
                # the leftovers here rather than hang.
                say("cluster: local workers exited early; "
                    "running remaining units inline")
                leader.run_pending_inline()
        for proc in procs:
            proc.join(timeout=10.0)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        leader.shutdown()
    results, reports = leader.results()
    failed = leader.failed()
    if failed:
        say(f"cluster: {len(failed)} unit(s) failed after "
            f"{max_attempts} attempt(s): "
            f"{sorted(failed)}")
    return results, reports


def _spawn_target(address: str, index: int) -> None:
    """Module-level fork target (kept here so ``run_cluster`` and the
    worker loop stay importable under ``spawn`` start methods)."""
    from .worker import _local_worker
    _local_worker(address, index)

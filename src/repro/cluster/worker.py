"""The worker side of the sweep cluster (``repro worker``).

A worker is a pull loop: connect to the leader, announce itself, then
repeatedly request a unit, execute it, and send the result back.  The
unit payloads are self-contained (they carry the store spec the
leader's planner embedded), and the *function* each unit runs is named
by the leader in its welcome message as a ``module:callable`` path —
the worker resolves it by import, so the protocol is transport-level
generic while the trust model stays "your own cluster" (the same
trusted-network assumption the store server documents).

Workers are stateless and disposable: a worker that crashes mid-unit
costs nothing but that unit's recompute — the leader requeues it for
the next puller.  Units are idempotent (content-addressed results), so
the double execution a crash can cause is benign.  A unit whose
*function* raises does not crash the worker: the traceback travels to
the leader as an ``("error", ...)`` report and the worker keeps
pulling — quarantining a poison unit is the leader's decision, not a
fleet-wide cascade.
"""

from __future__ import annotations

import importlib
import itertools
import os
import socket
import time
import traceback
from typing import Callable, Optional

from ..chaos.plan import plan_from_env
from ..wire import WireError, connect, recv_msg, send_msg

#: Seconds a worker sleeps when the leader says "wait" (queue empty
#: but units still outstanding elsewhere — one may yet be requeued).
WAIT_POLL_S = 0.05

_name_counter = itertools.count()


def default_worker_name() -> str:
    """A worker name unique across hosts, processes *and* loops in one
    process: ``host-pid-counter``.  (The previous ``id(object())``
    scheme collided across forked processes — CPython reuses object
    addresses — making ``UnitReport.worker`` telemetry ambiguous.)"""
    return (f"{socket.gethostname()}-{os.getpid()}"
            f"-{next(_name_counter)}")


def _allow_kill() -> bool:
    """True only in a forked/spawned child process — a chaos ``kill``
    must never take down the main process (tests run ``worker_loop``
    on threads; the CLI runs it in the foreground)."""
    try:
        import multiprocessing
        return multiprocessing.parent_process() is not None
    except (ImportError, AttributeError):
        return False


def resolve_callable(path: str) -> Callable:
    """Import the ``module:callable`` path a leader names for units."""
    module_name, sep, attr = path.partition(":")
    if not sep:
        raise ValueError(f"bad callable path {path!r} "
                         f"(expected module:callable)")
    fn = getattr(importlib.import_module(module_name), attr)
    if not callable(fn):
        raise ValueError(f"{path!r} is not callable")
    return fn


def _sleep_unit(payload):
    """Calibration unit: sleep for ``payload`` seconds and echo it.

    The scheduler benchmark and the cluster tests use this to measure
    the fabric itself (dispatch, stealing, reassembly) with perfectly
    controlled unit durations, independent of CPU count.
    """
    seconds = payload[0] if isinstance(payload, tuple) else payload
    time.sleep(float(seconds))
    return payload


def worker_loop(address: str, name: Optional[str] = None,
                timeout: float = 3600.0,
                echo: Optional[Callable[[str], None]] = None) -> int:
    """Serve one leader until its queue drains; returns units done.

    Connects to ``HOST:PORT``, resolves the unit callable the leader
    announces, then pulls units until the leader answers ``done``.
    Raises ``ConnectionError``/``OSError`` if the leader is
    unreachable; a connection lost mid-run simply ends the loop (the
    leader requeues whatever this worker held).
    """
    say = echo or (lambda _line: None)
    worker_name = name or default_worker_name()
    plan = plan_from_env()
    allow_kill = _allow_kill()
    sock = connect(address, timeout=timeout)
    done = 0
    try:
        send_msg(sock, ("hello", worker_name))
        welcome = recv_msg(sock)
        if not welcome or welcome[0] != "welcome":
            raise WireError(f"unexpected greeting {welcome!r}")
        meta = welcome[1]
        fn = resolve_callable(meta["fn"])
        say(f"{worker_name}: connected to {address}, "
            f"{meta.get('units', '?')} unit(s) pending, fn {meta['fn']}"
            + (f", store {meta['store']}" if meta.get("store") else ""))
        while True:
            send_msg(sock, ("get",))
            message = recv_msg(sock)
            if message is None or message[0] == "done":
                break
            if message[0] == "wait":
                time.sleep(WAIT_POLL_S)
                continue
            if message[0] != "unit":
                raise WireError(f"unexpected reply {message[0]!r}")
            _tag, index, payload = message
            start = time.perf_counter()
            try:
                if plan is not None:
                    plan.check_unit(index, allow_kill=allow_kill)
                result = fn(payload)
            except Exception:
                # The unit is poison, not the worker: ship the
                # traceback and keep serving — quarantine (or retry)
                # is the leader's call.
                elapsed = time.perf_counter() - start
                send_msg(sock, ("error", index,
                                traceback.format_exc(limit=20),
                                elapsed, worker_name))
                ack = recv_msg(sock)
                if ack is None:
                    break
                say(f"{worker_name}: unit {index} failed "
                    f"in {elapsed:.2f}s")
                continue
            elapsed = time.perf_counter() - start
            send_msg(sock, ("result", index, result, elapsed,
                            worker_name))
            ack = recv_msg(sock)
            if ack is None:
                break
            done += 1
            say(f"{worker_name}: unit {index} in {elapsed:.2f}s")
    finally:
        try:
            sock.close()
        except OSError:
            pass
    say(f"{worker_name}: queue drained, {done} unit(s) done")
    return done


def _local_worker(address: str, index: int) -> None:
    """Module-level process target for the leader's local workers
    (must be importable after ``fork``/``spawn``)."""
    try:
        worker_loop(address, name=f"local{index}")
    except (ConnectionError, OSError, WireError):
        # A leader that already finished (or died) is not the worker's
        # problem; the leader side accounts for lost units.
        pass

"""End-to-end application pipeline: MiniC source to profiled DFGs.

This is the top of the public API: :func:`prepare_application` compiles a
workload, optimises it (including the paper's if-conversion preprocessing
and, optionally, loop unrolling), executes it in the interpreter to gather
basic-block frequencies, and builds one weighted dataflow graph per block —
everything the identification/selection algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .frontend import analyze, lower_program, parse
from .interp import Interpreter, Memory, ProfileData
from .ir import Module
from .ir.dfg import DataFlowGraph, function_dfgs
from .passes import optimize_module, unroll_loops
from .store.keys import workload_key
from .workloads.registry import Workload, get_workload


@dataclass
class Application:
    """A compiled, profiled workload ready for ISE identification."""

    name: str
    module: Module
    entry: str
    profile: ProfileData
    dfgs: List[DataFlowGraph] = field(default_factory=list)

    @property
    def hot_dfg(self) -> DataFlowGraph:
        """The most frequently executed non-trivial block."""
        candidates = [d for d in self.dfgs if d.n >= 2]
        if not candidates:
            raise ValueError(f"{self.name}: no non-trivial blocks")
        return max(candidates, key=lambda d: d.weight * d.n)

    def describe(self) -> str:
        """Block inventory sorted by heat (weight x size), for reports."""
        lines = [f"application {self.name} (entry {self.entry}):"]
        for dfg in sorted(self.dfgs, key=lambda d: -d.weight * d.n):
            lines.append(
                f"  {dfg.name}: {dfg.n} nodes, weight {dfg.weight:g}")
        return "\n".join(lines)


def compile_workload(workload: Workload, unroll: Optional[int] = None,
                     if_convert: bool = True) -> Module:
    """Compile a workload's MiniC source through the full pipeline."""
    program = parse(workload.source)
    if unroll is not None and unroll >= 2:
        unroll_loops(program, unroll)
    symbols = analyze(program)
    module = lower_program(program, symbols, name=workload.name)
    optimize_module(module, if_convert=if_convert)
    return module


def prepare_application(
    name_or_workload,
    n: Optional[int] = None,
    unroll: Optional[int] = None,
    if_convert: bool = True,
    verify: bool = True,
    min_nodes: int = 2,
    store=None,
    backend: Optional[str] = None,
) -> Application:
    """Build an :class:`Application` for a registered workload.

    Args:
        name_or_workload: registry name or a :class:`Workload` instance.
        n: problem size for the profiling run (default: the workload's).
        unroll: optional loop-unroll factor (the paper's Section 9
            extension).
        if_convert: run if-conversion (the paper always does).
        verify: additionally check interpreter output against the golden
            model — catching any compiler/pass bug before it can distort
            experiment results.
        min_nodes: drop DFGs smaller than this many nodes.
        store: optional :class:`repro.store.ArtifactStore` memoising the
            whole compile+profile product, keyed on the workload source
            and every parameter above (:func:`repro.store.keys.
            workload_key`) — a hit skips compilation, optimisation and
            the profiling run and returns a bit-identical application.
        backend: execution backend for the profiling run (``"walk"`` or
            ``"compiled"``; default ``$REPRO_BACKEND``, else compiled).
            Profiles are bit-identical either way, so the store key
            deliberately excludes it.
    """
    workload = (name_or_workload
                if isinstance(name_or_workload, Workload)
                else get_workload(name_or_workload))
    size = n if n is not None else workload.default_n

    if store is not None:
        key = workload_key(workload, size, unroll, if_convert, verify,
                           min_nodes)
        app = store.get("app", key)
        if app is not None:
            return app

    module = compile_workload(workload, unroll=unroll,
                              if_convert=if_convert)
    memory = Memory(module)
    args = workload.driver(memory, size)
    interpreter = Interpreter(module, memory=memory, backend=backend)
    interpreter.run(workload.entry, args)
    if verify:
        workload.verify(memory, size)

    dfgs: List[DataFlowGraph] = []
    for func in module.functions.values():
        weights = interpreter.profile.weights_for(func.name)
        if not weights:
            continue            # never executed
        dfgs.extend(function_dfgs(func, weights, min_nodes=min_nodes))
    # Ignore blocks that never ran: their weight is zero.
    dfgs = [d for d in dfgs if d.weight > 0]

    app = Application(
        name=workload.name,
        module=module,
        entry=workload.entry,
        profile=interpreter.profile,
        dfgs=dfgs,
    )
    if store is not None:
        store.put("app", key, app)
    return app

"""The differential oracle: one generated program through everything.

:func:`run_differential` drives a single MiniC source through the full
toolchain and cross-checks every pair of paths that is obliged to be
bit-identical (DESIGN.md §11–§12), plus the static gates of §13:

1. **frontend + optimiser** — parse/analyse/lower, then the cleanup
   pipeline with if-conversion; the optimised module must pass the full
   IR verifier, and its observable behaviour (return value + final
   memory image) must match the *unoptimised* module run on the walker;
2. **backends** — ``walk`` vs ``block`` vs ``compiled`` on the
   optimised module: values, step counts, profiles, final memory and
   trap messages all bit-identical;
3. **selection** — iterative selection over the profiled DFGs; every
   returned cut re-validated by the independent mask checker
   (``S0xx`` codes);
4. **rewrite** — the ISE-rewritten clone passes ``check_rewrite``
   (full verifier + memory-chain preservation) and behaves identically
   to the optimised baseline on all three backends (its step counts
   differ from baseline by design but must agree *across* backends);
5. **batch** — :func:`repro.interp.run_batch` over the argument sets
   (baseline and rewritten, every backend) must reproduce the
   single-run outcomes lane for lane, including a deliberately
   starved lane whose step budget expires mid-program — the PR 5
   step-accounting drift class.

A divergence anywhere produces a :class:`Divergence` with the stage
name and a human-readable detail; the report never raises, so a soak
can log and keep going.  The optional *inject* hook mutates the
optimised module *after* the unoptimised reference run — fault
injection used by the reducer's tests (and handy for validating that
the oracle actually catches miscompiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    check_cut_record,
    check_rewrite,
    errors_of,
    verify_module,
)
from ..core import Constraints, SearchLimits
from ..core.select_iterative import select_iterative
from ..exec.rewrite import RewriteError, rewrite_module
from ..frontend import analyze, lower_program, parse
from ..frontend.errors import MiniCError
from ..hwmodel import CostModel
from ..interp import (
    BACKENDS,
    ExecutionLimitExceeded,
    Interpreter,
    Lane,
    Memory,
    TrapError,
    run_batch,
)
from ..ir.dfg import function_dfgs
from ..passes import optimize_module
from .generator import GeneratedProgram

__all__ = ["DEFAULT_LIMITS", "PHASE_OF_STAGE", "Divergence",
           "DifferentialReport", "run_differential"]

#: Which pipeline phase each failure stage belongs to; used by the
#: reducer to stop re-running phases beyond the one that failed.
PHASE_OF_STAGE = {
    "frontend": 0, "verifier": 0,
    "backend": 1, "optimizer": 1,
    "selection": 2, "selection-check": 2,
    "rewrite": 3, "rewrite-check": 3, "rewritten": 3,
    "rewritten-backend": 3,
    "batch": 4, "rewritten-batch": 4,
}

#: Identification budget per generated program: big enough that tiny
#: programs search exhaustively, bounded so a pathological seed cannot
#: stall a soak.
DEFAULT_LIMITS = SearchLimits(max_considered=50_000)

#: Per-run step budget: generated programs are terminating with trip
#: counts of a few dozen, so this is pure runaway insurance.
MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class Divergence:
    """One oracle failure: which stage broke and how."""

    stage: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.stage}] {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome and telemetry of one program's differential run."""

    seed: int
    shape: str
    failures: List[Divergence] = field(default_factory=list)
    cuts: int = 0
    rewritten_blocks: int = 0
    baseline_steps: int = 0
    reference_steps: int = 0
    traps: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, stage: str, detail: str) -> None:
        self.failures.append(Divergence(stage=stage, detail=detail))

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "shape": self.shape,
            "ok": self.ok,
            "failures": [{"stage": f.stage, "detail": f.detail}
                         for f in self.failures],
            "cuts": self.cuts,
            "rewritten_blocks": self.rewritten_blocks,
            "baseline_steps": self.baseline_steps,
            "reference_steps": self.reference_steps,
            "traps": self.traps,
        }


# ----------------------------------------------------------------------
# Execution outcome capture.
# ----------------------------------------------------------------------
def _run_single(module, entry: str, args: Sequence[int], backend: str,
                max_steps: int = MAX_STEPS) -> Tuple:
    """One execution distilled to its bit-identity surface:
    ``(kind, value-or-message, steps, profile counts, calls, memory)``.
    """
    memory = Memory(module)
    interp = Interpreter(module, memory=memory, backend=backend,
                         max_steps=max_steps)
    try:
        run = interp.run(entry, args)
        kind, payload, steps = "ok", run.value, run.steps
    except TrapError as exc:
        kind, payload, steps = "trap", str(exc), interp._steps
    except ExecutionLimitExceeded as exc:
        kind, payload, steps = "limit", str(exc), interp._steps
    return (kind, payload, steps, dict(interp.profile.counts),
            dict(interp.profile.calls), memory.arrays)


def _lane_summary(lane) -> Tuple:
    """A batch lane's identity surface, parallel to :func:`_run_single`."""
    kind = "ok" if lane.ok else ("limit" if lane.limit else "trap")
    payload = lane.value if lane.ok else lane.trap
    return (kind, payload, lane.steps, dict(lane.profile.counts),
            dict(lane.profile.calls), lane.arrays)


def _describe(outcome: Tuple) -> str:
    kind, payload, steps = outcome[0], outcome[1], outcome[2]
    return f"{kind}(value={payload!r}, steps={steps})"


# ----------------------------------------------------------------------
# The oracle.
# ----------------------------------------------------------------------
def run_differential(
    program: GeneratedProgram,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    nin: int = 4,
    nout: int = 2,
    ninstr: int = 8,
    inject: Optional[Callable] = None,
    phases: int = 4,
    max_steps: int = MAX_STEPS,
) -> DifferentialReport:
    """Full-pipeline differential check of one generated program.

    Args:
        program: the generated case (source + driving argument sets).
        model: cost model for selection/rewrite (default paper model).
        limits: identification budget (default :data:`DEFAULT_LIMITS`).
        nin / nout / ninstr: the paper's port and instruction budgets
            used for the selection phase.
        inject: optional fault hook ``inject(module) -> None`` applied
            to the optimised module before any differential execution —
            a simulated compiler bug the oracle is expected to catch.
        phases: last phase to run (see :data:`PHASE_OF_STAGE`); the
            default runs everything.  The reducer lowers this to the
            failing phase so shrinking stays fast.
        max_steps: per-run step budget.  The reducer shrinks this to a
            multiple of the original program's runtime so candidates
            that turn into infinite loops die fast instead of walking
            two million steps.

    Returns:
        A :class:`DifferentialReport`; ``report.ok`` is the verdict.
    """
    model = model or CostModel()
    limits = limits or DEFAULT_LIMITS
    report = DifferentialReport(seed=program.seed, shape=program.shape)
    entry = program.entry

    # ---- 1. frontend: unoptimised reference + optimised module ------
    try:
        ast = parse(program.source)
        raw = lower_program(ast, analyze(ast), name="fuzz-raw")
        ast2 = parse(program.source)
        module = lower_program(ast2, analyze(ast2), name="fuzz")
        optimize_module(module, if_convert=True)
    except MiniCError as exc:
        report.fail("frontend", f"valid program rejected: {exc}")
        return report
    if inject is not None:
        inject(module)
    else:
        # A deliberately broken module is expected to fail V-codes;
        # only gate the verifier when the module should be pristine.
        verifier_errors = errors_of(verify_module(module))
        if verifier_errors:
            report.fail("verifier", "; ".join(
                f"{d.code}: {d.message}" for d in verifier_errors[:5]))
            return report

    arg_sets = [list(args) for args in program.arg_sets]

    # ---- 2. backend differential on the optimised module ------------
    baseline: Dict[int, Tuple] = {}
    for idx, args in enumerate(arg_sets):
        reference = _run_single(raw, entry, args, "walk", max_steps)
        outcomes = {backend: _run_single(module, entry, args, backend,
                                         max_steps)
                    for backend in BACKENDS}
        walk = outcomes["walk"]
        baseline[idx] = walk
        if walk[0] != "ok":
            report.traps += 1
        report.baseline_steps += walk[2]
        report.reference_steps += reference[2]
        for backend in BACKENDS:
            if outcomes[backend] != walk:
                report.fail("backend",
                            f"args{tuple(args)}: {backend} "
                            f"{_describe(outcomes[backend])} != walk "
                            f"{_describe(walk)}")
        # Optimisations may change steps/profile but never behaviour.
        if (walk[0], walk[1], walk[5]) != (reference[0], reference[1],
                                           reference[5]):
            report.fail("optimizer",
                        f"args{tuple(args)}: optimised "
                        f"{_describe(walk)} != unoptimised "
                        f"{_describe(reference)}")
    if report.failures or phases <= 1:
        return report

    # ---- 3. selection + independent cut checker ----------------------
    profile = _profile(module, entry, arg_sets[0], max_steps)
    dfgs = []
    for func in module.functions.values():
        weights = profile.weights_for(func.name)
        if weights:
            dfgs.extend(function_dfgs(func, weights, min_nodes=2))
    dfgs = [d for d in dfgs if d.weight > 0]
    selection = None
    if dfgs:
        try:
            selection = select_iterative(
                dfgs, Constraints(nin=nin, nout=nout, ninstr=ninstr),
                model, limits)
        except Exception as exc:  # noqa: BLE001 - any crash is a find
            report.fail("selection", f"{type(exc).__name__}: {exc}")
            return report
        report.cuts = len(selection.cuts)
        for cut in selection.cuts:
            bad = errors_of(check_cut_record(cut, nin, nout))
            if bad:
                report.fail("selection-check", "; ".join(
                    f"{d.code}: {d.message}" for d in bad[:5]))

    if report.failures or phases <= 2:
        return report

    # ---- 4. rewrite + rewritten differential -------------------------
    rewritten = None
    if selection is not None and selection.cuts:
        try:
            rewritten = rewrite_module(module, selection.cuts, model,
                                       verify=False)
        except RewriteError as exc:
            report.fail("rewrite", str(exc))
        if rewritten is not None:
            report.rewritten_blocks = rewritten.rewritten_blocks
            bad = errors_of(check_rewrite(module, rewritten.module))
            if bad:
                report.fail("rewrite-check", "; ".join(
                    f"{d.code}: {d.message}" for d in bad[:5]))
    rewritten_runs: Dict[int, Tuple] = {}
    if rewritten is not None and not report.failures:
        for idx, args in enumerate(arg_sets):
            outcomes = {backend: _run_single(rewritten.module, entry,
                                             args, backend, max_steps)
                        for backend in BACKENDS}
            walk = outcomes["walk"]
            rewritten_runs[idx] = walk
            for backend in BACKENDS:
                if outcomes[backend] != walk:
                    report.fail("rewritten-backend",
                                f"args{tuple(args)}: {backend} "
                                f"{_describe(outcomes[backend])} != "
                                f"walk {_describe(walk)}")
            # The rewrite may change step counts, never behaviour.
            base = baseline[idx]
            if (walk[0], walk[1], walk[5]) != (base[0], base[1],
                                               base[5]):
                report.fail("rewritten",
                            f"args{tuple(args)}: rewritten "
                            f"{_describe(walk)} != baseline "
                            f"{_describe(base)}")
    if report.failures or phases <= 3:
        return report

    # ---- 5. batched lanes vs. single runs ----------------------------
    # One extra lane is starved to half the reference step count, so
    # every batch exercises mid-program budget expiry (the step-
    # accounting drift class) — unless the program is so tiny the
    # budget cannot expire mid-run.
    lanes = [Lane(args=tuple(args)) for args in arg_sets]
    starved = max(1, baseline[0][2] // 2)
    if starved < baseline[0][2]:
        lanes.append(Lane(args=tuple(arg_sets[0]), max_steps=starved))
    singles = dict(baseline)
    singles[len(arg_sets)] = _run_single(module, entry, arg_sets[0],
                                         "walk", max_steps=starved)
    modules = [("batch", module, singles)]
    if rewritten is not None:
        rw_singles = dict(rewritten_runs)
        rw_singles[len(arg_sets)] = _run_single(
            rewritten.module, entry, arg_sets[0], "walk",
            max_steps=starved)
        modules.append(("rewritten-batch", rewritten.module, rw_singles))
    for stage, mod, singles_map in modules:
        for backend in BACKENDS:
            batch = run_batch(mod, entry, lanes, backend=backend,
                              max_steps=max_steps, keep_arrays=True)
            for lane_result in batch.lanes:
                got = _lane_summary(lane_result)
                want = singles_map[lane_result.index]
                if got != want:
                    report.fail(
                        stage,
                        f"lane {lane_result.index} on {backend}: "
                        f"{_describe(got)} != single "
                        f"{_describe(want)}")
    return report


def _profile(module, entry: str, args: Sequence[int],
             max_steps: int = MAX_STEPS):
    """Walker profile of one run (the DFG weights' ground truth)."""
    interp = Interpreter(module, backend="walk", max_steps=max_steps)
    interp.run(entry, args)
    return interp.profile

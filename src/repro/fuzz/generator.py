"""Seeded MiniC program generator: the corpus side of the fuzz fabric.

Every program is produced deterministically from ``(seed, shape)`` —
the same pair always renders byte-identical source — so a failing seed
is a complete reproducer on its own.  Programs are *terminating and
trap-free by construction* (the same guardrails the old ad-hoc test
generator used, hardened here into one shared implementation):

* array indices are masked to the (power-of-two) array size;
* division/modulo denominators are ``(x & 7) + 1`` — never zero;
* shift amounts are masked to ``& 31``;
* loops are counted ``for`` loops with small constant trip counts
  (``break``/``continue`` only ever appear inside those).

Each :data:`SHAPES` entry targets a known-interesting region of the
pipeline — the shapes are chosen from the classes that actually broke
previous PRs (multi-output IN(S) undercounting, step-accounting drift)
plus the paper's §4 constraint structure (see ``docs/paper_map.md``):

``chain``
    deep straight-line arithmetic chains: long dependency chains make
    large convex cuts, stressing the B&B enumeration and region fusion;
``multiout``
    several live-out temporaries per block, stored *and* used later —
    the multi-output supernode shape behind the PR 4 selection bug;
``branchy``
    if/else ladders and diamonds inside loops: if-conversion fodder and
    single-entry block chains, the region-codegen stress case;
``memory``
    memory-carried dependences (``mem[i]`` from ``mem[i-1]``, read
    after write): cuts must *skip* the LOAD/STORE chain, never absorb
    or reorder it;
``portlimit``
    wide fan-in expressions over many distinct operands folding into a
    few outputs — cut candidates that hover at the ``Nin``/``Nout``
    port budgets;
``mixed``
    a statement soup of all of the above (the default fuzzing diet).

Statements are rendered one per line, which is what makes the
line-oriented shrinking in :mod:`repro.fuzz.reduce` effective.

:func:`generate_invalid` is the error-path twin: it derives a program
that is *guaranteed* ill-formed in a chosen frontend stage (lexer,
parser or sema), for asserting that diagnostics stay structured
(:mod:`repro.frontend.errors`) instead of leaking raw tracebacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["SHAPES", "GeneratedProgram", "InvalidProgram",
           "generate_program", "generate_invalid", "INVALID_KINDS"]

#: Generator shapes, mixed-last (the default diet samples all of them).
SHAPES = ("chain", "multiout", "branchy", "memory", "portlimit", "mixed")

#: Power-of-two sizes keep index masking a single AND.
ARRAY = "mem"
ARRAY_SIZE = 16
OUT_ARRAY = "out"
OUT_SIZE = 8

_INIT = "{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}"


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated MiniC program plus the inputs the oracle drives it
    with.  ``entry`` is always ``f(int a, int b, int c)``."""

    seed: int
    shape: str
    source: str
    arg_sets: Tuple[Tuple[int, int, int], ...]
    entry: str = "f"


@dataclass(frozen=True)
class InvalidProgram:
    """A program guaranteed to be rejected by one frontend stage.

    ``stage`` names the stage whose structured diagnostic must fire:
    ``"lex"`` (:class:`~repro.frontend.errors.LexError`), ``"parse"``
    (:class:`~repro.frontend.errors.ParseError`) or ``"sema"``
    (:class:`~repro.frontend.errors.SemanticError`).  ``kind`` is the
    specific corruption, for telemetry.
    """

    seed: int
    stage: str
    kind: str
    source: str


class _Body:
    """Accumulates indented statement lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 1

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def open(self, text: str) -> None:
        self.emit(text)
        self.depth += 1

    def close(self) -> None:
        self.depth -= 1
        self.emit("}")


class _Builder:
    """Renders one program for a shape, all randomness from one rng."""

    def __init__(self, rng: random.Random, shape: str) -> None:
        self.rng = rng
        self.shape = shape
        self.locals = ["a", "b", "c"]
        self._temps = 0
        self._loops = 0

    # ------------------------------------------------------------------
    # Expression grammar (trap-free by construction).
    # ------------------------------------------------------------------
    def atom(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            return str(rng.randint(-128, 127))
        if roll < 0.85:
            return rng.choice(self.locals)
        return (f"{ARRAY}[({rng.choice(self.locals)}) & "
                f"{ARRAY_SIZE - 1}]")

    def expr(self, depth: int = 0, width: Optional[List[str]] = None) -> str:
        """A random expression; *width* forces the leaf pool (used by
        the port-limit shape to control distinct-operand fan-in)."""
        rng = self.rng
        if depth >= 3 or rng.random() < 0.28:
            if width:
                return rng.choice(width)
            return self.atom()
        roll = rng.random()
        if roll < 0.55:
            op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                             "<", "<=", "==", "!=", ">", ">="])
            left = self.expr(depth + 1, width)
            right = self.expr(depth + 1, width)
            if op in ("<<", ">>"):
                right = f"(({right}) & 31)"
            return f"(({left}) {op} ({right}))"
        if roll < 0.65:
            op = rng.choice(["/", "%"])
            return (f"(({self.expr(depth + 1, width)}) {op} "
                    f"((({self.expr(depth + 1, width)}) & 7) + 1))")
        if roll < 0.78:
            op = rng.choice(["-", "~", "!"])
            return f"({op}({self.expr(depth + 1, width)}))"
        if roll < 0.9:
            return (f"(({self.expr(depth + 1, width)}) ? "
                    f"({self.expr(depth + 1, width)}) : "
                    f"({self.expr(depth + 1, width)}))")
        op = rng.choice(["&&", "||"])
        return (f"(({self.expr(depth + 1, width)}) {op} "
                f"({self.expr(depth + 1, width)}))")

    def temp(self, body: _Body, init: Optional[str] = None) -> str:
        name = f"t{self._temps}"
        self._temps += 1
        body.emit(f"int {name} = {init if init else self.expr()};")
        self.locals.append(name)
        return name

    def index(self, of: Optional[str] = None) -> str:
        base = of if of else self.rng.choice(self.locals)
        return f"({base}) & {ARRAY_SIZE - 1}"

    # ------------------------------------------------------------------
    # Statement kinds.
    # ------------------------------------------------------------------
    def assign(self, body: _Body) -> None:
        body.emit(f"{self.rng.choice(self.locals)} = {self.expr()};")

    def store(self, body: _Body) -> None:
        array = self.rng.choice([ARRAY, OUT_ARRAY])
        size = ARRAY_SIZE if array == ARRAY else OUT_SIZE
        body.emit(f"{array}[({self.rng.choice(self.locals)}) & "
                  f"{size - 1}] = {self.expr()};")

    def loop(self, body: _Body, emit_inner, trip: Optional[int] = None,
             breaker: bool = False) -> None:
        var = f"i{self._loops}"
        self._loops += 1
        trip = trip if trip is not None else self.rng.randint(2, 6)
        body.open(f"for (int {var} = 0; {var} < {trip}; {var}++) {{")
        if breaker and self.rng.random() < 0.5:
            kw = self.rng.choice(["break", "continue"])
            body.emit(f"if ((({self.expr(2)}) & 15) == 7) {{ {kw}; }}")
        emit_inner(body, var)
        body.close()

    def branch(self, body: _Body, emit_arm, else_arm: bool = True) -> None:
        body.open(f"if ({self.expr(1)}) {{")
        emit_arm(body)
        body.close()
        if else_arm:
            body.open("else {")
            emit_arm(body)
            body.close()

    # ------------------------------------------------------------------
    # Shapes.
    # ------------------------------------------------------------------
    def shape_chain(self, body: _Body) -> None:
        """Deep straight-line dependency chains."""
        rng = self.rng
        prev = rng.choice(["a", "b", "c"])
        for _ in range(rng.randint(8, 18)):
            op = rng.choice(["+", "-", "*", "^", "&", "|"])
            prev = self.temp(
                body, f"(({prev}) {op} ({self.expr(2)}))")
        body.emit(f"a = a ^ {prev};")
        body.emit(f"{OUT_ARRAY}[0] = {prev};")

    def shape_multiout(self, body: _Body) -> None:
        """Blocks with several live-out values (the PR 4 bug class)."""
        rng = self.rng

        def inner(b: _Body, var: str) -> None:
            shared = f"s{self._temps}"
            self._temps += 1
            b.emit(f"int {shared} = (({rng.choice(self.locals)}) + "
                   f"({var}) * 3) ^ ({self.expr(2)});")
            outs = []
            for _ in range(rng.randint(2, 4)):
                op = rng.choice(["+", "^", "*", "-"])
                name = f"m{self._temps}"
                self._temps += 1
                b.emit(f"int {name} = (({shared}) {op} "
                       f"({self.expr(2)}));")
                outs.append(name)
            for k, name in enumerate(outs):
                b.emit(f"{OUT_ARRAY}[(({var}) + {k}) & {OUT_SIZE - 1}] "
                       f"= {name};")
            # Live across iterations too: feed the accumulators.
            b.emit(f"a = a + {outs[0]};")
            b.emit(f"b = b ^ {outs[-1]};")

        self.loop(body, inner, trip=rng.randint(3, 7))

    def shape_branchy(self, body: _Body) -> None:
        """If/else ladders in loops: if-conversion + region chains."""
        rng = self.rng

        def arm(b: _Body) -> None:
            for _ in range(rng.randint(1, 2)):
                if rng.random() < 0.7:
                    self.assign(b)
                else:
                    self.store(b)

        def inner(b: _Body, var: str) -> None:
            for _ in range(rng.randint(2, 4)):
                if rng.random() < 0.35:
                    # Nested diamond.
                    b.open(f"if ((({var}) & 3) < 2) {{")
                    self.branch(b, arm, else_arm=rng.random() < 0.7)
                    b.close()
                else:
                    self.branch(b, arm, else_arm=rng.random() < 0.8)
            b.emit(f"c = c + ({var});")

        self.loop(body, inner, breaker=True)

    def shape_memory(self, body: _Body) -> None:
        """Memory-carried dependences: skip, never miscompile."""
        rng = self.rng

        def inner(b: _Body, var: str) -> None:
            prev = f"({var} + {ARRAY_SIZE - 1}) & {ARRAY_SIZE - 1}"
            cur = f"({var}) & {ARRAY_SIZE - 1}"
            b.emit(f"int ld{self._temps} = {ARRAY}[{prev}];")
            carried = f"ld{self._temps}"
            self._temps += 1
            b.emit(f"{ARRAY}[{cur}] = ({carried}) + ({self.expr(2)});")
            # Read-after-write on the same slot.
            b.emit(f"a = a ^ {ARRAY}[{cur}];")
            if rng.random() < 0.5:
                b.emit(f"{ARRAY}[{cur}] = ({ARRAY}[{cur}]) "
                       f"^ ({rng.choice(self.locals)});")

        self.loop(body, inner, trip=rng.randint(4, 10))
        body.emit(f"b = b + {ARRAY}[({self.index('a')})];")

    def shape_portlimit(self, body: _Body) -> None:
        """Wide fan-in folded into few outputs: near Nin/Nout cuts."""
        rng = self.rng
        # A pool of distinct operands wider than any port budget.
        pool = ["a", "b", "c"]
        for _ in range(rng.randint(3, 5)):
            pool.append(self.temp(body))
        ops = ["+", "^", "&", "|", "-"]
        folds = []
        for _ in range(rng.randint(2, 3)):
            terms = rng.sample(pool, k=rng.randint(3, min(6, len(pool))))
            acc = terms[0]
            for term in terms[1:]:
                acc = f"({acc} {rng.choice(ops)} {term})"
            folds.append(self.temp(body, acc))
        for k, name in enumerate(folds):
            body.emit(f"{OUT_ARRAY}[{k}] = {name};")
        body.emit(f"a = {folds[0]} ^ {folds[-1]};")

    def shape_mixed(self, body: _Body) -> None:
        """Statement soup over every other shape's ingredients."""
        rng = self.rng
        for _ in range(rng.randint(4, 7)):
            roll = rng.random()
            if roll < 0.3:
                self.assign(body)
            elif roll < 0.45:
                self.store(body)
            elif roll < 0.6:
                self.branch(body, lambda b: self.assign(b),
                            else_arm=rng.random() < 0.6)
            elif roll < 0.75:
                self.loop(body, lambda b, var: self.assign(b),
                          breaker=True)
            elif roll < 0.85:
                self.temp(body)
            else:
                picked = rng.choice([self.shape_memory,
                                     self.shape_multiout,
                                     self.shape_portlimit])
                picked(body)

    # ------------------------------------------------------------------
    def render(self) -> str:
        body = _Body()
        use_helper = self.shape in ("chain", "mixed") \
            and self.rng.random() < 0.4
        {
            "chain": self.shape_chain,
            "multiout": self.shape_multiout,
            "branchy": self.shape_branchy,
            "memory": self.shape_memory,
            "portlimit": self.shape_portlimit,
            "mixed": self.shape_mixed,
        }[self.shape](body)
        if use_helper:
            body.emit(f"a = a + helper(b, {self.expr(2)});")
        lines = [
            f"int {ARRAY}[{ARRAY_SIZE}] = {_INIT};",
            f"int {OUT_ARRAY}[{OUT_SIZE}];",
        ]
        if use_helper:
            lines += [
                "int helper(int x, int y) {",
                "  int acc = x;",
                "  for (int h = 0; h < 3; h++) {",
                "    acc = ((acc * 2) ^ y) + h;",
                "  }",
                "  return acc;",
                "}",
            ]
        lines.append("int f(int a, int b, int c) {")
        lines.extend(body.lines)
        lines.append("  return (a ^ b) ^ c;")
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed: int, shape: str = "mixed") -> GeneratedProgram:
    """Render the program for ``(seed, shape)`` — pure and deterministic.

    Raises ``ValueError`` for an unknown shape (the CLI surfaces it as
    a usage error).
    """
    if shape not in SHAPES:
        known = ", ".join(SHAPES)
        raise ValueError(f"unknown shape {shape!r}; known: {known}")
    rng = random.Random((seed, shape).__repr__())
    source = _Builder(rng, shape).render()
    arg_sets = tuple(
        (rng.randint(-(1 << 31), (1 << 31) - 1),
         rng.randint(-100, 100),
         rng.randint(-100, 100))
        for _ in range(2)
    )
    return GeneratedProgram(seed=seed, shape=shape, source=source,
                            arg_sets=arg_sets)


# ----------------------------------------------------------------------
# Invalid programs: guaranteed structured-diagnostic fodder.
# ----------------------------------------------------------------------
def _lex_corruptions(rng: random.Random) -> Tuple[str, str]:
    return rng.choice([
        ("stray_char", "int f() { return 1 @ 2; }"),
        ("bad_hex", "int f() { return 0x; }"),
        ("bad_suffix", "int f() { return 123abc; }"),
        ("unterminated_comment", "int f() { /* no end\nreturn 1; }"),
        ("bad_escape", r"int f() { return '\q'; }"),
        ("unterminated_char", "int f() { return 'ab; }"),
    ])


def _parse_corruptions(rng: random.Random, base: str) -> Tuple[str, str]:
    return rng.choice([
        ("truncated", base.rstrip()[:-1]),          # drop the final }
        ("trailing_garbage", base + "\nint\n"),
        ("stray_else", base + "\nint g() { else; return 1; }\n"),
        ("missing_semicolon",
         base + "\nint g() { int x = 1 return x; }\n"),
        ("unbalanced_paren", base + "\nint g() { return (1 + 2; }\n"),
        ("missing_param_type", base + "\nint g(x) { return x; }\n"),
    ])


def _sema_corruptions(rng: random.Random, base: str) -> Tuple[str, str]:
    return rng.choice([
        ("undeclared", base + "\nint g() { return nosuchvar; }\n"),
        ("unknown_call", base + "\nint g() { return phantom(1); }\n"),
        ("bad_arity", base + "\nint g() { return f(1); }\n"),
        ("scalar_indexed",
         base + "\nint gs;\nint g() { return gs[0]; }\n"),
        ("array_as_value", f"{base}\nint g() {{ return {ARRAY}; }}\n"),
        ("break_outside", base + "\nint g() { break; return 1; }\n"),
        ("redeclared", base + "\nint g() { int x = 1; int x = 2; "
                              "return x; }\n"),
        ("dup_param", base + "\nint g(int p, int p) { return p; }\n"),
        ("missing_return_value", base + "\nint g() { return; }\n"),
    ])


#: The stages :func:`generate_invalid` can target.
INVALID_KINDS = ("lex", "parse", "sema")


def generate_invalid(seed: int) -> InvalidProgram:
    """An ill-formed program for ``seed``, targeting a random stage.

    The corruption is appended to (or replaces) a *valid* generated
    program, so the faulty construct is reached with realistic
    surroundings; the chosen stage's structured error is guaranteed to
    fire before any later stage runs.
    """
    rng = random.Random(("invalid", seed).__repr__())
    stage = rng.choice(INVALID_KINDS)
    base = generate_program(seed, "mixed").source
    if stage == "lex":
        kind, source = _lex_corruptions(rng)
    elif stage == "parse":
        kind, source = _parse_corruptions(rng, base)
    else:
        kind, source = _sema_corruptions(rng, base)
    return InvalidProgram(seed=seed, stage=stage, kind=kind,
                          source=source)

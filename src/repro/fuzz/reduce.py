"""Shrink a failing generated program to a minimal reproducer.

Delta-debugging over source lines: a candidate is *interesting* when it
is still frontend-valid **and** still fails the differential oracle at
the same post-frontend stage.  Two passes alternate to a fixpoint:

* **ddmin** — classic Zeller/Hildebrandt chunk removal over the lines
  of the program, restarting at coarse granularity after every
  successful cut;
* **brace unwrap** — for every ``... {`` line, try deleting it together
  with its matching ``}`` while keeping the body (turning
  ``if (c) { S; }`` into plain ``S;``), which line-chunk removal alone
  can never do without losing the body.

The reducer is oblivious to MiniC syntax beyond brace matching:
syntactically broken candidates simply fail the frontend and are
rejected as uninteresting, so no grammar knowledge is required to stay
sound.  Determinism is inherited from the oracle — no randomness here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from .generator import GeneratedProgram
from .oracle import PHASE_OF_STAGE, DifferentialReport, run_differential

__all__ = ["ReductionResult", "failure_stages", "reduce_program"]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of one reduction: the shrunk source plus bookkeeping."""

    source: str
    original_lines: int
    reduced_lines: int
    stage: str
    tests: int

    @property
    def shrank(self) -> bool:
        return self.reduced_lines < self.original_lines


def failure_stages(report: DifferentialReport) -> frozenset:
    return frozenset(f.stage for f in report.failures)


def _lines(source: str) -> List[str]:
    return [line for line in source.splitlines() if line.strip()]


def _matching_brace(lines: Sequence[str], start: int) -> Optional[int]:
    """Index of the line closing the brace opened at ``lines[start]``."""
    depth = 0
    for idx in range(start, len(lines)):
        depth += lines[idx].count("{") - lines[idx].count("}")
        if depth == 0 and idx > start:
            return idx
    return None


def reduce_program(
    program: GeneratedProgram,
    interesting: Optional[Callable[[str], bool]] = None,
    max_tests: int = 2_000,
    **oracle_kwargs,
) -> ReductionResult:
    """Shrink *program* while it keeps failing the oracle.

    Args:
        program: the failing case; its argument sets drive every
            candidate, so the reproducer fails on the same inputs.
        interesting: optional predicate ``f(source) -> bool`` replacing
            the default "same post-frontend oracle stage still fails".
        max_tests: hard cap on oracle invocations (reduction is
            O(lines²) in the worst case).
        **oracle_kwargs: forwarded to :func:`run_differential`
            (typically ``inject=`` when reproducing a planted fault).

    Returns:
        A :class:`ReductionResult`; if the original program does not
        actually fail, it is returned unshrunk with ``stage=""``.
    """
    tests = 0

    def run(source: str, **extra) -> DifferentialReport:
        nonlocal tests
        tests += 1
        return run_differential(replace(program, source=source),
                                **oracle_kwargs, **extra)

    original = run(program.source)
    stages = failure_stages(original) - {"frontend"}
    if not stages:
        return ReductionResult(
            source=program.source,
            original_lines=len(_lines(program.source)),
            reduced_lines=len(_lines(program.source)),
            stage="", tests=tests)

    if interesting is None:
        # Re-running phases beyond the failing one would only slow the
        # shrink down; cap the oracle at the deepest failing phase.  A
        # step cap scaled to the original runtime kills candidates that
        # reduction turned into infinite loops (e.g. a deleted loop
        # increment) without walking the full runaway budget.
        depth = max(PHASE_OF_STAGE.get(s, 4) for s in stages)
        extra = {"phases": depth}
        if "max_steps" not in oracle_kwargs:
            # Scale off the *reference* runtime — the injected module's
            # own step count is unusable when the fault itself creates
            # an infinite loop.
            extra["max_steps"] = max(10_000,
                                     original.reference_steps * 50)

        def interesting(source: str) -> bool:
            report = run(source, **extra)
            return bool(failure_stages(report) & stages)
    else:
        user_check = interesting

        def interesting(source: str) -> bool:
            nonlocal tests
            tests += 1
            return user_check(source)

    def keeps_failing(lines: Sequence[str]) -> bool:
        if tests >= max_tests:
            return False
        return interesting("\n".join(lines) + "\n")

    lines = _lines(program.source)
    original_count = len(lines)

    changed = True
    while changed and tests < max_tests:
        changed = False

        # Pass 1: ddmin chunk removal.
        granularity = 2
        while len(lines) >= 2 and tests < max_tests:
            chunk = max(1, len(lines) // granularity)
            removed_any = False
            start = 0
            while start < len(lines):
                candidate = lines[:start] + lines[start + chunk:]
                if candidate and keeps_failing(candidate):
                    lines = candidate
                    removed_any = True
                    changed = True
                else:
                    start += chunk
            if removed_any:
                granularity = max(2, granularity - 1)
            elif chunk == 1:
                break
            else:
                granularity = min(len(lines), granularity * 2)

        # Pass 2: unwrap brace pairs, keeping their bodies.
        idx = 0
        while idx < len(lines) and tests < max_tests:
            if lines[idx].rstrip().endswith("{"):
                close = _matching_brace(lines, idx)
                if close is not None:
                    candidate = (lines[:idx] + lines[idx + 1:close]
                                 + lines[close + 1:])
                    if candidate and keeps_failing(candidate):
                        lines = candidate
                        changed = True
                        continue
            idx += 1

    return ReductionResult(
        source="\n".join(lines) + "\n",
        original_lines=original_count,
        reduced_lines=len(lines),
        stage=min(stages),
        tests=tests)

"""Seeded program generation + full-pipeline differential fuzzing.

The package turns the toolchain into its own oracle:

* :mod:`~repro.fuzz.generator` — deterministic MiniC programs in
  paper-relevant shapes (§4 constraints: deep chains, multi-output
  regions, branchy single-entry chains, memory-carried dependences,
  near-port-limit operand pools), plus an invalid-program mode for
  frontend error paths;
* :mod:`~repro.fuzz.oracle` — one program through everything: three
  backends, baseline vs. rewritten, single vs. batched lanes, verifier
  and selection checker, all bit-identical or it's a finding;
* :mod:`~repro.fuzz.reduce` — ddmin + brace-unwrap shrinking of any
  failure to a small reproducer;
* :mod:`~repro.fuzz.campaign` — N-program sweeps with telemetry and
  on-disk artifacts, the engine behind ``repro fuzz``.
"""

from .campaign import (
    CampaignResult,
    FailureRecord,
    check_invalid_corpus,
    run_campaign,
)
from .generator import (
    INVALID_KINDS,
    SHAPES,
    GeneratedProgram,
    InvalidProgram,
    generate_invalid,
    generate_program,
)
from .oracle import (
    DEFAULT_LIMITS,
    PHASE_OF_STAGE,
    DifferentialReport,
    Divergence,
    run_differential,
)
from .reduce import ReductionResult, failure_stages, reduce_program

__all__ = [
    "CampaignResult",
    "DEFAULT_LIMITS",
    "DifferentialReport",
    "Divergence",
    "FailureRecord",
    "GeneratedProgram",
    "INVALID_KINDS",
    "InvalidProgram",
    "PHASE_OF_STAGE",
    "ReductionResult",
    "SHAPES",
    "check_invalid_corpus",
    "failure_stages",
    "generate_invalid",
    "generate_program",
    "reduce_program",
    "run_campaign",
    "run_differential",
]

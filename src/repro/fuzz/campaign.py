"""Fuzzing campaigns: many programs, telemetry, artifacts.

:func:`run_campaign` drives N generated programs through the
differential oracle, round-robining over the generator shapes (or
pinned to one), and collects the telemetry a soak run is judged by:
per-shape coverage, cuts found, blocks rewritten, trap counts, and the
delta of codegen *fallback codes* over the campaign (a silent surge of
``unsupported-opcode`` fallbacks would mean the compiled backend quietly
stopped being exercised — the differential would still pass, on easier
terms).

Every failing program is shrunk with :func:`repro.fuzz.reduce_program`
and written to an artifact directory::

    <artifacts>/<shape>-seed<seed>/
        original.c      the generated source as found
        reduced.c       the minimized reproducer
        report.json     stages, divergence details, reduction stats

Re-running a failure is then ``repro fuzz --seed N --shape S`` — the
generator is deterministic, so the seed *is* the reproducer; the
artifact files exist for humans and for checking into
``tests/fuzz/corpus/``.

:func:`check_invalid_corpus` is the error-path half: N invalid programs
per corruption stage, asserting every one raises a **structured**
frontend diagnostic (never a raw traceback, never silent acceptance).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..interp.compile import code_memo_stats
from .generator import (
    SHAPES,
    GeneratedProgram,
    generate_invalid,
    generate_program,
)
from .oracle import DifferentialReport, run_differential
from .reduce import reduce_program

__all__ = ["CampaignResult", "FailureRecord", "check_invalid_corpus",
           "run_campaign"]


@dataclass(frozen=True)
class FailureRecord:
    """One campaign failure, with its on-disk artifacts (if written)."""

    seed: int
    shape: str
    stages: List[str]
    artifact_dir: Optional[str]
    reduced_lines: Optional[int]


@dataclass
class CampaignResult:
    """What a campaign ran and what it found."""

    programs: int = 0
    by_shape: Dict[str, int] = field(default_factory=dict)
    cuts: int = 0
    rewritten_blocks: int = 0
    traps: int = 0
    fallback_codes: Dict[str, int] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "programs": self.programs,
            "by_shape": dict(sorted(self.by_shape.items())),
            "cuts": self.cuts,
            "rewritten_blocks": self.rewritten_blocks,
            "traps": self.traps,
            "fallback_codes": dict(sorted(self.fallback_codes.items())),
            "failures": [{
                "seed": f.seed, "shape": f.shape, "stages": f.stages,
                "artifact_dir": f.artifact_dir,
                "reduced_lines": f.reduced_lines,
            } for f in self.failures],
            "ok": self.ok,
        }


def _write_artifacts(artifacts: str, program: GeneratedProgram,
                     report: DifferentialReport,
                     **oracle_kwargs) -> FailureRecord:
    """Shrink one failure and persist original + reproducer + report."""
    reduction = reduce_program(program, **oracle_kwargs)
    directory = os.path.join(artifacts,
                             f"{program.shape}-seed{program.seed}")
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "original.c"), "w") as fh:
        fh.write(program.source)
    with open(os.path.join(directory, "reduced.c"), "w") as fh:
        fh.write(reduction.source)
    with open(os.path.join(directory, "report.json"), "w") as fh:
        json.dump({
            "report": report.as_dict(),
            "arg_sets": [list(a) for a in program.arg_sets],
            "reduction": {
                "original_lines": reduction.original_lines,
                "reduced_lines": reduction.reduced_lines,
                "stage": reduction.stage,
                "tests": reduction.tests,
            },
        }, fh, indent=2)
        fh.write("\n")
    return FailureRecord(
        seed=program.seed, shape=program.shape,
        stages=sorted({f.stage for f in report.failures}),
        artifact_dir=directory,
        reduced_lines=reduction.reduced_lines)


def run_campaign(
    count: int = 100,
    seed: int = 0,
    shape: Optional[str] = None,
    artifacts: Optional[str] = None,
    on_progress: Optional[Callable[[int, DifferentialReport], None]]
        = None,
    **oracle_kwargs,
) -> CampaignResult:
    """Run *count* generated programs through the differential oracle.

    Args:
        count: number of programs.
        seed: base seed; program ``i`` uses seed ``seed + i``.
        shape: pin every program to one generator shape, or ``None``
            to round-robin across all of :data:`SHAPES`.
        artifacts: directory for failing-case reproducers; failures
            are reduced and written there (created on demand).  With
            ``None``, failures are recorded but nothing hits disk.
        on_progress: optional callback ``f(index, report)`` after each
            program — the CLI uses it for live soak telemetry.
        **oracle_kwargs: forwarded to :func:`run_differential`
            (``inject=`` turns the campaign into an oracle self-test).

    Returns:
        A :class:`CampaignResult`; ``result.ok`` means zero failures.
    """
    result = CampaignResult()
    before = dict(code_memo_stats().fallback_codes)
    for index in range(count):
        this_shape = shape or SHAPES[index % len(SHAPES)]
        program = generate_program(seed + index, this_shape)
        report = run_differential(program, **oracle_kwargs)
        result.programs += 1
        result.by_shape[this_shape] = \
            result.by_shape.get(this_shape, 0) + 1
        result.cuts += report.cuts
        result.rewritten_blocks += report.rewritten_blocks
        result.traps += report.traps
        if not report.ok:
            if artifacts:
                record = _write_artifacts(artifacts, program, report,
                                          **oracle_kwargs)
            else:
                record = FailureRecord(
                    seed=program.seed, shape=program.shape,
                    stages=sorted({f.stage for f in report.failures}),
                    artifact_dir=None, reduced_lines=None)
            result.failures.append(record)
        if on_progress is not None:
            on_progress(index, report)
    after = code_memo_stats().fallback_codes
    result.fallback_codes = {
        code: after[code] - before.get(code, 0)
        for code in after if after[code] - before.get(code, 0)}
    return result


def check_invalid_corpus(count: int = 50, seed: int = 0) -> List[str]:
    """Error-path sweep: *count* invalid programs, structured failures.

    Each generated :class:`~repro.fuzz.generator.InvalidProgram` must
    raise the exact diagnostic class its corruption stage promises
    (``LexError`` / ``ParseError`` / ``SemanticError``).  Returns a
    list of problem descriptions — empty means the frontend never
    leaked a raw traceback and never accepted a corrupted program.
    """
    from ..frontend import analyze, parse
    from ..frontend.errors import (
        LexError,
        MiniCError,
        ParseError,
        SemanticError,
    )
    expected = {"lex": LexError, "parse": ParseError,
                "sema": SemanticError}
    problems: List[str] = []
    for index in range(count):
        case = generate_invalid(seed + index)
        want = expected[case.stage]
        try:
            analyze(parse(case.source))
        except MiniCError as exc:
            if not isinstance(exc, want):
                problems.append(
                    f"seed {case.seed} [{case.stage}/{case.kind}]: "
                    f"raised {type(exc).__name__}, wanted "
                    f"{want.__name__}")
            elif not str(exc):
                problems.append(
                    f"seed {case.seed} [{case.stage}/{case.kind}]: "
                    f"empty diagnostic message")
        except Exception as exc:  # noqa: BLE001 - the point of the test
            problems.append(
                f"seed {case.seed} [{case.stage}/{case.kind}]: raw "
                f"{type(exc).__name__}: {exc}")
        else:
            problems.append(
                f"seed {case.seed} [{case.stage}/{case.kind}]: "
                f"invalid program accepted")
    return problems

"""Command-line interface: ``repro <subcommand>``.

Subcommands:

* ``list`` — show the registered workloads;
* ``ir`` — dump the optimised IR of a workload;
* ``identify`` — best single cut of the hottest block (Problem 1);
* ``select`` — choose up to Ninstr instructions with any algorithm
  (Problem 2);
* ``compare`` — one Fig. 11-style row: all four algorithms side by side;
* ``afu`` — generate Verilog for the selected custom instructions.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .afu import build_datapath, emit_verilog
from .core import (
    Constraints,
    SearchLimits,
    find_best_cut,
    select_clubbing,
    select_iterative,
    select_maxmiso,
    select_optimal,
)
from .hwmodel import CostModel
from .pipeline import prepare_application
from .workloads import WORKLOADS

_ALGORITHMS = {
    "iterative": select_iterative,
    "clubbing": select_clubbing,
    "maxmiso": select_maxmiso,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="registered workload name")
    parser.add_argument("--n", type=int, default=None,
                        help="profiling run size (default: workload's)")
    parser.add_argument("--unroll", type=int, default=None,
                        help="loop unroll factor (Section 9 extension)")
    parser.add_argument("--nin", type=int, default=4,
                        help="register-file read ports (default 4)")
    parser.add_argument("--nout", type=int, default=2,
                        help="register-file write ports (default 2)")
    parser.add_argument("--limit", type=int, default=None,
                        help="max cuts considered per search")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for per-block searches "
                             "(default: $REPRO_WORKERS, else serial; "
                             "0 = one per CPU)")


def _limits(args) -> Optional[SearchLimits]:
    if args.limit is None:
        return None
    return SearchLimits(max_considered=args.limit)


def cmd_list(_args) -> int:
    for name, workload in sorted(WORKLOADS.items()):
        star = "*" if workload.paper_benchmark else " "
        print(f"{star} {name:14s} {workload.description}")
    print("(* = benchmark of the paper's Fig. 11)")
    return 0


def cmd_ir(args) -> int:
    app = prepare_application(args.workload, n=args.n, unroll=args.unroll)
    print(app.module)
    print()
    print(app.describe())
    return 0


def cmd_identify(args) -> int:
    app = prepare_application(args.workload, n=args.n, unroll=args.unroll)
    dfg = app.hot_dfg
    constraints = Constraints(nin=args.nin, nout=args.nout)
    start = time.time()
    result = find_best_cut(dfg, constraints, limits=_limits(args))
    elapsed = time.time() - start
    print(f"hot block {dfg.name}: {dfg.n} nodes, weight {dfg.weight:g}")
    print(f"searched {result.stats.cuts_considered} cuts in "
          f"{elapsed:.2f}s (complete={result.complete})")
    if result.cut is None:
        print("no profitable cut under these constraints")
        return 1
    print(result.cut.describe())
    for label in result.cut.node_labels():
        print(f"  {label}")
    return 0


def cmd_select(args) -> int:
    app = prepare_application(args.workload, n=args.n, unroll=args.unroll)
    constraints = Constraints(nin=args.nin, nout=args.nout,
                              ninstr=args.ninstr)
    if args.algo == "optimal":
        result = select_optimal(app.dfgs, constraints,
                                limits=_limits(args),
                                max_nodes=args.max_nodes,
                                workers=args.workers)
    else:
        algo = _ALGORITHMS[args.algo]
        if args.algo == "iterative":
            result = algo(app.dfgs, constraints, limits=_limits(args),
                          workers=args.workers)
        else:
            if args.workers is not None:
                print(f"note: --workers has no effect for --algo "
                      f"{args.algo}", file=sys.stderr)
            result = algo(app.dfgs, constraints)
    print(result.describe())
    return 0


def cmd_compare(args) -> int:
    app = prepare_application(args.workload, n=args.n, unroll=args.unroll)
    constraints = Constraints(nin=args.nin, nout=args.nout,
                              ninstr=args.ninstr)
    limits = _limits(args) or SearchLimits(max_considered=2_000_000)
    rows = [
        ("Iterative", select_iterative(app.dfgs, constraints,
                                       limits=limits,
                                       workers=args.workers)),
        ("Clubbing", select_clubbing(app.dfgs, constraints)),
        ("MaxMISO", select_maxmiso(app.dfgs, constraints)),
    ]
    print(f"{args.workload}  Nin={args.nin} Nout={args.nout} "
          f"Ninstr={args.ninstr}")
    for name, result in rows:
        flag = "" if result.complete else " (budget hit)"
        print(f"  {name:10s} speedup {result.speedup:6.3f}x  "
              f"merit {result.total_merit:10.0f}  "
              f"instrs {result.num_instructions:2d}{flag}")
    return 0


def cmd_afu(args) -> int:
    app = prepare_application(args.workload, n=args.n, unroll=args.unroll)
    constraints = Constraints(nin=args.nin, nout=args.nout,
                              ninstr=args.ninstr)
    result = select_iterative(app.dfgs, constraints, limits=_limits(args),
                              workers=args.workers)
    if not result.cuts:
        print("no instructions selected")
        return 1
    for k, cut in enumerate(result.cuts):
        afu = build_datapath(cut, name=f"ise{k}")
        print(emit_verilog(afu))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic instruction-set extensions under "
                    "microarchitectural constraints (Atasu et al., 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=cmd_list)

    p = sub.add_parser("ir", help="dump optimised IR")
    p.add_argument("workload")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--unroll", type=int, default=None)
    p.set_defaults(fn=cmd_ir)

    p = sub.add_parser("identify", help="best single cut (Problem 1)")
    _add_common(p)
    p.set_defaults(fn=cmd_identify)

    p = sub.add_parser("select", help="select Ninstr cuts (Problem 2)")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=16)
    p.add_argument("--algo", choices=["iterative", "optimal", "clubbing",
                                      "maxmiso"], default="iterative")
    p.add_argument("--max-nodes", type=int, default=40,
                   help="node guard for the optimal algorithm")
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("compare", help="compare all algorithms")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=16)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("afu", help="emit Verilog for selected AFUs")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=2)
    p.set_defaults(fn=cmd_afu)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``repro <subcommand>``.

Subcommands:

* ``list`` — show the registered workloads (``--json`` for machines);
* ``ir`` — dump the optimised IR of a workload;
* ``identify`` — best single cut of the hottest block (Problem 1);
* ``select`` — choose up to Ninstr instructions with any algorithm
  (Problem 2), including area-constrained selection (Section 9);
* ``compare`` — one Fig. 11-style row: all four algorithms side by side;
* ``sweep`` — a whole design-space grid (workloads x ports x Ninstr x
  algorithms x cost models) in one invocation, with memoized per-block
  identification and JSON/CSV artifacts (``--measure`` adds executed
  speedups per grid point);
* ``speedup`` — measure end-to-end speedup by actually executing the
  selected instructions: rewrite each workload, run baseline and
  rewritten programs, check outputs bit-for-bit, report cycle counts
  (the paper's Fig. 9/10 numbers);
* ``run`` — execute one workload (optionally after the ISE rewrite)
  and print its result, step count and wall time — the quickest way to
  eyeball a program or compare execution backends;
* ``check`` — statically verify a workload end to end: baseline IR
  (CFG/opcode/dataflow invariants), every selected cut through the
  independent mask-based constraint checker, and the rewritten clone
  (ISE contracts, memory-chain preservation) — text or ``--json``,
  exit 1 on any error diagnostic, nothing executed;
* ``fuzz`` — differential fuzzing: seeded generated programs through
  the whole stack (three backends, baseline vs rewritten, single vs
  batched lanes, verifier + selection checker), failures shrunk to
  minimal reproducers; ``--soak`` for open-ended runs;
* ``chaos`` — seeded fault-injection soak (DESIGN.md §16): a
  store-backed cluster sweep under injected store/wire/worker faults
  plus a mid-run store-server restart, asserted bit-identical to the
  fault-free serial run (exit 1 on any divergence);
* ``afu`` — generate Verilog for the selected custom instructions;
* ``cache`` — inspect or maintain the persistent artifact store;
* ``store`` — run store services: ``repro store serve`` exports a
  store over TCP so other processes and nodes mount it as
  ``--store-dir tcp://HOST:PORT``;
* ``worker`` — join a running ``repro sweep --listen`` leader and
  pull warm-phase units until its queue drains (``--cluster N``
  shards the same queue over local processes).

Verbs that execute programs accept ``--backend walk|block|compiled``
(default: ``$REPRO_BACKEND``, else the compiled backend, DESIGN.md
§11–§12); every printed table and artifact is byte-identical either
way.

Every verb bootstraps one shared :class:`repro.session.Session`, so the
expensive products (compiled modules, profiles, search results,
baseline runs) persist in the content-addressed store across
invocations: a repeated command warm-starts and prints byte-identical
results.  ``--no-store`` disables persistence for one invocation,
``--store-dir`` relocates it, and the ``REPRO_STORE`` environment
variable sets the default root (or turns the store off globally).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Tuple

from . import __version__
from .core import BlockTooLargeError, SearchLimits
from .session import Session
from .store.artifacts import ArtifactStore, resolve_store, stock_store_dir
from .workloads import WORKLOADS


def _add_store(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--store", dest="store", action="store_true",
                       default=None,
                       help="use the persistent artifact store "
                            "(the default; see also $REPRO_STORE)")
    group.add_argument("--no-store", dest="store", action="store_false",
                       help="disable the persistent store for this "
                            "invocation (results are identical, later "
                            "invocations start cold)")
    parser.add_argument("--store-dir", default=None, metavar="PATH",
                        help="store root (default: $REPRO_STORE, else "
                             "~/.cache/repro)")


def _resolve_store_args(args):
    """Store selected by the flags: ``--no-store`` wins, ``--store-dir``
    names a root, an explicit ``--store`` overrides even a
    ``$REPRO_STORE`` off-switch (falling back to the stock default
    root), and otherwise the environment decides."""
    if getattr(args, "store", None) is False:
        if getattr(args, "store_dir", None):
            print("note: --no-store wins over --store-dir "
                  f"{args.store_dir}; nothing will be persisted",
                  file=sys.stderr)
        return None
    if getattr(args, "store_dir", None):
        return resolve_store(args.store_dir)
    store = resolve_store("auto")
    if store is None and getattr(args, "store", None) is True:
        store = ArtifactStore(stock_store_dir())
    return store


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend",
                        choices=["walk", "block", "compiled"],
                        default=None,
                        help="execution backend for profiling and "
                             "measurement (default: $REPRO_BACKEND, "
                             "else compiled; results are bit-identical)")


def _make_session(args) -> Session:
    """The one shared Session bootstrap behind every verb."""
    return Session(store=_resolve_store_args(args),
                   workers=getattr(args, "workers", None),
                   backend=getattr(args, "backend", None))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="registered workload name")
    parser.add_argument("--n", type=int, default=None,
                        help="profiling run size (default: workload's)")
    parser.add_argument("--unroll", type=int, default=None,
                        help="loop unroll factor (Section 9 extension)")
    parser.add_argument("--nin", type=int, default=4,
                        help="register-file read ports (default 4)")
    parser.add_argument("--nout", type=int, default=2,
                        help="register-file write ports (default 2)")
    parser.add_argument("--limit", type=int, default=None,
                        help="max cuts considered per search")
    _add_store(parser)
    _add_backend(parser)


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for per-block searches "
                             "(default: $REPRO_WORKERS, else serial; "
                             "0 = one per CPU)")


def _limits(args) -> Optional[SearchLimits]:
    if args.limit is None:
        return None
    return SearchLimits(max_considered=args.limit)


def cmd_list(args) -> int:
    if args.json:
        records = [
            {
                "name": name,
                "entry": workload.entry,
                "default_n": workload.default_n,
                "description": workload.description,
                "paper_benchmark": workload.paper_benchmark,
            }
            for name, workload in sorted(WORKLOADS.items())
        ]
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    for name, workload in sorted(WORKLOADS.items()):
        star = "*" if workload.paper_benchmark else " "
        print(f"{star} {name:14s} {workload.description}")
    print("(* = benchmark of the paper's Fig. 11)")
    return 0


def cmd_ir(args) -> int:
    session = _make_session(args)
    app = session.prepare(args.workload, n=args.n, unroll=args.unroll)
    print(app.module)
    print()
    print(app.describe())
    return 0


def cmd_identify(args) -> int:
    session = _make_session(args)
    app = session.prepare(args.workload, n=args.n, unroll=args.unroll)
    dfg = app.hot_dfg
    start = time.time()
    result = session.identify(args.workload, nin=args.nin, nout=args.nout,
                              limits=_limits(args), n=args.n,
                              unroll=args.unroll)
    elapsed = time.time() - start
    print(f"hot block {dfg.name}: {dfg.n} nodes, weight {dfg.weight:g}")
    # Timing goes to stderr: stdout stays byte-identical warm vs. cold.
    print(f"searched {result.stats.cuts_considered} cuts in "
          f"{elapsed:.2f}s (complete={result.complete})", file=sys.stderr)
    if result.cut is None:
        print("no profitable cut under these constraints")
        return 1
    print(result.cut.describe())
    for label in result.cut.node_labels():
        print(f"  {label}")
    return 0


def cmd_select(args) -> int:
    session = _make_session(args)
    if (args.workers is not None
            and args.algo in ("clubbing", "maxmiso")):
        print(f"note: --workers has no effect for --algo {args.algo}",
              file=sys.stderr)
    result = session.select(
        args.workload, algorithm=args.algo, nin=args.nin, nout=args.nout,
        ninstr=args.ninstr, limits=_limits(args), n=args.n,
        unroll=args.unroll, max_nodes=args.max_nodes,
        area_budget=args.area_budget, area_method=args.area_method)
    print(result.describe())
    return 0


def cmd_compare(args) -> int:
    session = _make_session(args)
    limits = _limits(args) or SearchLimits(max_considered=2_000_000)
    kwargs = dict(nin=args.nin, nout=args.nout, ninstr=args.ninstr,
                  limits=limits, n=args.n, unroll=args.unroll)
    try:
        optimal = session.select(args.workload, algorithm="optimal",
                                 max_nodes=args.max_nodes, **kwargs)
        optimal_note = ""
    except BlockTooLargeError as exc:
        # Degrade like the paper's own Fig. 11 note (Optimal could not
        # be run on the largest adpcm-decode block) instead of crashing
        # the whole comparison.
        optimal = None
        optimal_note = str(exc)
    rows = [
        ("Optimal", optimal),
        ("Iterative", session.select(args.workload,
                                     algorithm="iterative", **kwargs)),
        ("Clubbing", session.select(args.workload,
                                    algorithm="clubbing", **kwargs)),
        ("MaxMISO", session.select(args.workload,
                                   algorithm="maxmiso", **kwargs)),
    ]
    print(f"{args.workload}  Nin={args.nin} Nout={args.nout} "
          f"Ninstr={args.ninstr}")
    for name, result in rows:
        if result is None:
            print(f"  {name:10s} n/a ({optimal_note})")
            continue
        flag = "" if result.complete else " (budget hit)"
        print(f"  {name:10s} speedup {result.speedup:6.3f}x  "
              f"merit {result.total_merit:10.0f}  "
              f"instrs {result.num_instructions:2d}{flag}")
    return 0


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(item) for item in _csv_list(text)]
    except ValueError:
        raise SystemExit(f"bad integer list {text!r} (expected e.g. 2,4)")


def _parse_ports(args) -> List[Tuple[int, int]]:
    """Port pairs: explicit ``--ports 2x1,4x2`` wins over the cross
    product of ``--nins`` and ``--nouts``."""
    if args.ports:
        pairs = []
        for token in _csv_list(args.ports):
            try:
                nin, nout = token.lower().split("x")
                pairs.append((int(nin), int(nout)))
            except ValueError:
                raise SystemExit(
                    f"bad --ports entry {token!r} (expected NINxNOUT, "
                    f"e.g. 4x2)")
        return pairs
    return [(nin, nout)
            for nin in _csv_ints(args.nins)
            for nout in _csv_ints(args.nouts)]


def cmd_sweep(args) -> int:
    from .explore import SweepSpec, format_table, write_csv, write_json

    try:
        spec = SweepSpec(
            workloads=tuple(_csv_list(args.workloads)),
            ports=tuple(_parse_ports(args)),
            ninstrs=tuple(_csv_ints(args.ninstr)),
            algorithms=tuple(_csv_list(args.algos)),
            models=tuple(_csv_list(args.models)),
            n=args.n,
            unroll=args.unroll,
            limit=args.limit,
            max_nodes=args.max_nodes,
            area_budget=args.area_budget,
            measure=args.measure,
        )
    except ValueError as exc:
        # A typo'd axis is a usage error, not a crash.
        raise SystemExit(f"sweep: {exc}")
    session = _make_session(args)
    echo = (lambda line: print(line, file=sys.stderr)) \
        if not args.quiet else None
    outcome = session.sweep(spec, use_cache=not args.no_cache, echo=echo,
                            cluster=args.cluster, listen=args.listen)
    print(format_table(outcome.rows))
    cache_note = ""
    if outcome.cache_stats is not None:
        cache_note = (f", cache {outcome.cache_stats['hits']} hit(s) / "
                      f"{outcome.cache_stats['misses']} miss(es)")
    # Timing footer on stderr: the stdout table is byte-identical with
    # the store enabled, disabled or pre-warmed.
    print(f"{len(outcome.rows)} grid points in {outcome.sweep_s:.2f}s "
          f"({outcome.points_per_second:.2f} points/s{cache_note})",
          file=sys.stderr)
    if args.json:
        write_json(outcome, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.csv:
        write_csv(outcome, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def cmd_speedup(args) -> int:
    from .exec import format_speedup_table

    if args.workloads.strip().lower() == "all":
        names = sorted(WORKLOADS)
    else:
        names = _csv_list(args.workloads)
    session = _make_session(args)
    try:
        rows = session.speedup(
            names,
            nin=args.nin,
            nout=args.nout,
            ninstr=args.ninstr,
            algorithm=args.algo,
            limits=_limits(args),
            n=args.n,
            unroll=args.unroll,
            max_nodes=args.max_nodes,
            area_budget=args.area_budget,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"speedup: {exc}")
    print(format_speedup_table(rows))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"rows": [row.as_dict() for row in rows]}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    broken = [row.workload for row in rows if not row.identical]
    if broken:
        print(f"\nFAIL: rewritten output diverged for "
              f"{', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


def _print_fallbacks() -> None:
    """Stderr telemetry: why blocks punted to the walker, by code.

    Empty for fully compiled programs; a non-empty breakdown names the
    diagnostic code (``C0xx`` codegen limits, ``V0xx`` ill-formed IR —
    see :data:`repro.analysis.diagnostics.CODES`) per fallback unit.
    """
    from .interp.compile import code_memo_stats

    codes = code_memo_stats().fallback_codes
    if codes:
        detail = ", ".join(f"{code}x{count}"
                           for code, count in sorted(codes.items()))
        print(f"walker fallbacks: {detail}", file=sys.stderr)


def _run_batch_mode(args, workload, module, note) -> int:
    """Batched ``repro run``: N input lanes per call (DESIGN.md §12).

    stdout stays byte-stable for CI diffing — lane counts, total steps
    and the bit-identity verdict, no timing; throughput and the
    per-lane verified tally go to stderr like every other verb's
    telemetry.  ``--inputs`` lanes replay one driver record and are
    each held bit-for-bit to a golden reference lane; ``--batch-file``
    lanes are arbitrary user records, so only trap-freeness can be
    checked (``verified: n/a``).
    """
    from .interp import Lane, driver_lanes, image_verifier, run_batch

    size = args.n if args.n is not None else workload.default_n
    if args.batch_file:
        with open(args.batch_file) as fh:
            records = json.load(fh)
        lanes = [Lane(args=tuple(rec.get("args", ())),
                      arrays=rec.get("arrays", {}),
                      max_steps=rec.get("max_steps"))
                 for rec in records]
        check = None
    else:
        lanes = driver_lanes(module, workload.driver, size, args.inputs)
        # Golden reference: one lane verified against the workload's
        # model; every timed lane is then held to its exact image.
        reference = run_batch(
            module, workload.entry, lanes[:1], backend=args.backend,
            keep_arrays=True,
            verify=lambda memory, lane: workload.verify(memory, size))
        ref = reference.lanes[0]
        if not ref.ok or ref.verified is not True:
            print(f"{args.workload} n={size} ({note})")
            detail = ref.trap if ref.trap else "golden verification failed"
            print(f"reference lane FAIL: {detail}")
            return 1
        check = image_verifier(ref.value, ref.arrays)
    start = time.perf_counter()
    batch = run_batch(module, workload.entry, lanes,
                      backend=args.backend, verify=check)
    wall = time.perf_counter() - start
    verified = batch.verified_count == len(lanes) if check else None
    print(f"{args.workload} n={size} ({note}, batch)")
    print(f"lanes:    {len(lanes)} ({batch.ok_count} ok)")
    print(f"steps:    {batch.total_steps}")
    print("verified: "
          + ("n/a" if verified is None else "yes" if verified else "NO"))
    print(f"{batch.backend} backend: {wall:.4f}s "
          f"({len(lanes) / max(wall, 1e-9):,.0f} inputs/s, "
          f"{batch.verified_count}/{len(lanes)} lanes verified)",
          file=sys.stderr)
    _print_fallbacks()
    if verified is None:
        return 0 if batch.ok_count == len(lanes) else 1
    return 0 if verified else 1


def cmd_run(args) -> int:
    from .exec.rewrite import rewrite_module
    from .interp import Interpreter, Memory
    from .workloads.registry import get_workload

    workload = get_workload(args.workload)
    if args.rewrite:
        # Selection needs the profiled application; the session memo /
        # store make repeated invocations warm-start.
        session = _make_session(args)
        app = session.prepare(args.workload, n=args.n, unroll=args.unroll)
        selection = session.select(
            args.workload, algorithm=args.algo, nin=args.nin,
            nout=args.nout, ninstr=args.ninstr, limits=_limits(args),
            n=args.n, unroll=args.unroll)
        rewritten = rewrite_module(app.module, selection.cuts,
                                   session.model)
        module = rewritten.module
        note = (f"rewritten: {rewritten.num_instructions} custom "
                f"instruction(s) in {rewritten.rewritten_blocks} "
                f"block(s)")
    else:
        # The baseline needs only the optimised module — compiling is
        # cheap; a profiling pre-run would double the verb's wall time.
        from .pipeline import compile_workload

        module = compile_workload(workload, unroll=args.unroll)
        note = "baseline"
    if args.inputs is not None or args.batch_file:
        return _run_batch_mode(args, workload, module, note)
    size = args.n if args.n is not None else workload.default_n
    memory = Memory(module)
    run_args = workload.driver(memory, size)
    interp = Interpreter(module, memory=memory, backend=args.backend)
    start = time.perf_counter()
    outcome = interp.run(workload.entry, run_args)
    wall = time.perf_counter() - start
    verified = True
    try:
        workload.verify(memory, size)
    except AssertionError:
        verified = False
    print(f"{args.workload} n={size} ({note})")
    print(f"result:   {outcome.value}")
    print(f"steps:    {outcome.steps}")
    print(f"verified: {'yes' if verified else 'NO'}")
    # Wall time on stderr: stdout stays byte-identical across backends
    # (and warm vs. cold), like every other verb.
    print(f"{interp.backend} backend: {wall:.4f}s "
          f"({outcome.steps / max(wall, 1e-9):,.0f} steps/s)",
          file=sys.stderr)
    _print_fallbacks()
    return 0 if verified else 1


def cmd_check(args) -> int:
    """Static verification gate: baseline, selection, rewritten clone.

    Pure analysis — nothing is executed; exit status 1 on any
    error-severity diagnostic (warnings are reported but pass).
    """
    if args.workload.strip().lower() == "all":
        names = sorted(WORKLOADS)
    else:
        names = _csv_list(args.workload)
    session = _make_session(args)
    reports = [
        session.check(name, algorithm=args.algo, nin=args.nin,
                      nout=args.nout, ninstr=args.ninstr,
                      limits=_limits(args), n=args.n,
                      unroll=args.unroll, max_nodes=args.max_nodes)
        for name in names
    ]
    ok = all(report.ok for report in reports)
    if args.json is not None:
        payload = json.dumps(
            {"ok": ok, "reports": [r.as_dict() for r in reports]},
            indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"wrote {args.json}", file=sys.stderr)
    else:
        for index, report in enumerate(reports):
            if index:
                print()
            print(report.render())
    return 0 if ok else 1


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign (DESIGN.md §14).

    Each generated program runs through the full pipeline — three
    backends, baseline vs. rewritten, single vs. batched lanes, the
    verifier and the selection checker — and any bit-level divergence
    is a failure, shrunk to a minimal reproducer under
    ``--artifacts``.  An invalid-program sweep of the same size rides
    along, holding the frontend to structured diagnostics.  ``--soak``
    repeats rounds (advancing the base seed) until interrupted.

    stdout carries the byte-stable summary (or ``--json``); per-round
    soak telemetry goes to stderr like every other verb's timing.
    """
    from .fuzz import check_invalid_corpus

    session = _make_session(args)
    rounds = 0
    programs = 0
    failed: List[str] = []
    totals = {"cuts": 0, "rewritten_blocks": 0, "traps": 0}
    fallbacks: dict = {}
    by_shape: dict = {}
    last = None
    start = time.perf_counter()
    try:
        while True:
            base = args.seed + rounds * args.count
            result = session.fuzz(
                count=args.count, seed=base, shape=args.shape,
                artifacts=args.artifacts, nin=args.nin,
                nout=args.nout, ninstr=args.ninstr,
                limits=_limits(args))
            problems = check_invalid_corpus(count=args.count, seed=base)
            rounds += 1
            programs += result.programs
            totals["cuts"] += result.cuts
            totals["rewritten_blocks"] += result.rewritten_blocks
            totals["traps"] += result.traps
            for shape, num in result.by_shape.items():
                by_shape[shape] = by_shape.get(shape, 0) + num
            for code, num in result.fallback_codes.items():
                fallbacks[code] = fallbacks.get(code, 0) + num
            for record in result.failures:
                where = (f" -> {record.artifact_dir}"
                         if record.artifact_dir else "")
                failed.append(
                    f"seed {record.seed} shape {record.shape} "
                    f"[{', '.join(record.stages)}]{where}")
            failed.extend(problems)
            last = result
            if not args.soak:
                break
            rate = programs / max(time.perf_counter() - start, 1e-9)
            print(f"soak round {rounds}: seeds {base}.."
                  f"{base + args.count - 1}, {len(result.failures)} "
                  f"failure(s), {len(problems)} frontend problem(s), "
                  f"{rate:.1f} programs/s", file=sys.stderr)
    except KeyboardInterrupt:
        print(f"soak interrupted after {rounds} round(s)",
              file=sys.stderr)
    if args.json and last is not None:
        payload = last.as_dict() if rounds == 1 else {
            "rounds": rounds, "programs": programs, **totals,
            "by_shape": dict(sorted(by_shape.items())),
            "fallback_codes": dict(sorted(fallbacks.items())),
            "failures": failed, "ok": not failed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if not failed else 1
    shapes = " ".join(f"{shape}={num}"
                      for shape, num in sorted(by_shape.items()))
    print(f"fuzz: {programs} program(s), base seed {args.seed}"
          + (f", {rounds} round(s)" if args.soak else ""))
    print(f"shapes:    {shapes}")
    print(f"cuts:      {totals['cuts']} "
          f"(rewritten blocks {totals['rewritten_blocks']})")
    print(f"traps:     {totals['traps']}")
    if fallbacks:
        detail = ", ".join(f"{code}x{num}"
                           for code, num in sorted(fallbacks.items()))
        print(f"fallbacks: {detail}")
    print(f"failures:  {len(failed)}")
    for line in failed:
        print(f"  {line}")
    rate = programs / max(time.perf_counter() - start, 1e-9)
    print(f"{rate:.1f} programs/s through the differential oracle",
          file=sys.stderr)
    return 0 if not failed else 1


def cmd_afu(args) -> int:
    session = _make_session(args)
    modules = session.afu(args.workload, ninstr=args.ninstr,
                          nin=args.nin, nout=args.nout,
                          limits=_limits(args), n=args.n,
                          unroll=args.unroll)
    if not modules:
        print("no instructions selected")
        return 1
    for text in modules:
        print(text)
        print()
    return 0


def cmd_worker(args) -> int:
    from .cluster import worker_loop

    echo = (lambda line: print(line, file=sys.stderr)) \
        if not args.quiet else None
    try:
        done = worker_loop(args.connect, name=args.name, echo=echo)
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"worker: cannot serve {args.connect}: {exc}")
    print(f"{done} unit(s) completed")
    return 0


def cmd_store(args) -> int:
    from .store import StoreServer, open_backend
    from .store.artifacts import default_store_spec
    from .wire import parse_address

    spec = args.store_dir or default_store_spec()
    if spec is None:
        raise SystemExit("store: persistent store disabled by "
                         "$REPRO_STORE; pass --store-dir")
    host, port = parse_address(args.listen, default_port=9723)
    backend = open_backend(spec)
    server = StoreServer(backend, host=host, port=port)
    print(f"serving {backend.spec} on {server.address} "
          f"(clients: --store-dir tcp://{server.address}); "
          f"Ctrl-C to stop", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("store: interrupted", file=sys.stderr)
    finally:
        server.shutdown()
        backend.close()
    return 0


def cmd_chaos(args) -> int:
    from .chaos import run_chaos

    echo = (lambda line: print(line, file=sys.stderr)) \
        if not args.quiet else None
    workloads = tuple(_csv_list(args.workloads))
    ports = []
    for token in _csv_list(args.ports):
        try:
            nin, nout = token.lower().split("x")
            ports.append((int(nin), int(nout)))
        except ValueError:
            raise SystemExit(f"bad --ports entry {token!r} "
                             f"(expected NINxNOUT, e.g. 4x2)")
    ninstrs = tuple(_csv_ints(args.ninstr))
    algorithms = tuple(_csv_list(args.algos))
    report = run_chaos(
        seed=args.seed, workers=args.cluster, workloads=workloads,
        ports=tuple(ports), ninstrs=ninstrs, algorithms=algorithms,
        limit=args.limit, n=args.n, server=args.server,
        unit_attempts=args.unit_attempts,
        unit_deadline=args.unit_deadline,
        cluster_deadline=args.deadline,
        workdir=args.workdir, echo=echo)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        verdict = "OK" if report.ok else "FAILED"
        print(f"chaos soak {verdict} (seed {report.seed}, "
              f"server {report.server}, {report.workers} worker(s))")
        print(f"  rows:      {report.rows} "
              f"({'bit-identical' if report.rows_identical else 'DIVERGED'})")
        keys = {True: "bit-identical", False: "DIVERGED",
                None: "skipped (server down)"}[report.keys_identical]
        print(f"  store:     keys {keys}; {report.retries} retrie(s), "
              f"{report.store_errors} error(s), "
              f"{report.degraded_events} degraded event(s)")
        print(f"  injected:  {report.injected_store} store fault(s), "
              f"{report.injected_wire} wire fault(s)")
        failed = sorted(unit["index"] for unit in report.failed_units)
        verdict = ("exactly the poison unit" if report.failed_expected
                   else "UNEXPECTED")
        print(f"  failed:    unit(s) {failed} ({verdict})")
        for note in report.notes:
            print(f"  note:      {note}")
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    store = _resolve_store_args(args)
    if store is None:
        print("persistent store disabled ($REPRO_STORE)", file=sys.stderr)
        return 1
    if args.action == "stats":
        info = store.info()
        if args.json:
            print(json.dumps({
                "root": info.root,
                "entries": info.entries,
                "bytes": info.bytes,
                "kinds": info.kinds,
            }, indent=2, sort_keys=True))
            return 0
        print(f"store {info.root}")
        print(f"  {info.entries} artifact(s), {info.bytes / 1024:.1f} KiB")
        for kind in sorted(info.kinds):
            print(f"  {kind:10s} {info.kinds[kind]}")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    if args.action == "gc":
        removed, freed = store.gc(max_age_days=args.max_age_days)
        print(f"removed {removed} artifact(s) older than "
              f"{args.max_age_days:g} day(s) ({freed / 1024:.1f} KiB) "
              f"from {store.root}")
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic instruction-set extensions under "
                    "microarchitectural constraints (Atasu et al., 2003)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list workloads")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (name, entry, "
                        "default_n, description)")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("ir", help="dump optimised IR")
    p.add_argument("workload")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--unroll", type=int, default=None)
    _add_store(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_ir)

    p = sub.add_parser("identify", help="best single cut (Problem 1)")
    _add_common(p)
    p.set_defaults(fn=cmd_identify)

    p = sub.add_parser("select", help="select Ninstr cuts (Problem 2)")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=16)
    p.add_argument("--algo", choices=["iterative", "optimal", "clubbing",
                                      "maxmiso", "area"],
                   default="iterative")
    p.add_argument("--max-nodes", type=int, default=40,
                   help="node guard for the optimal algorithm")
    p.add_argument("--area-budget", type=float, default=2.0,
                   help="silicon budget in MAC units for --algo area "
                        "(default 2.0)")
    p.add_argument("--area-method", choices=["knapsack", "greedy"],
                   default="knapsack",
                   help="area selector: exact DP or density greedy")
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("compare", help="compare all four algorithms")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=16)
    p.add_argument("--max-nodes", type=int, default=40,
                   help="node guard for the Optimal row (oversized "
                        "blocks report n/a, like the paper)")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="run a design-space grid in one invocation "
             "(memoized identification, JSON/CSV artifacts)")
    p.add_argument("--workloads", required=True,
                   help="comma-separated registry names")
    p.add_argument("--ports", default=None,
                   help="comma-separated NINxNOUT pairs, e.g. 2x1,4x2 "
                        "(overrides --nins/--nouts)")
    p.add_argument("--nins", default="4",
                   help="comma-separated Nin values (crossed with "
                        "--nouts; default 4)")
    p.add_argument("--nouts", default="2",
                   help="comma-separated Nout values (default 2)")
    p.add_argument("--ninstr", default="16",
                   help="comma-separated instruction budgets (default 16)")
    p.add_argument("--algos", default="iterative,clubbing,maxmiso",
                   help="comma-separated algorithms out of iterative,"
                        "optimal,clubbing,maxmiso,area")
    p.add_argument("--models", default="default",
                   help="comma-separated cost models (default,uniform)")
    p.add_argument("--n", type=int, default=None,
                   help="profiling run size shared by all workloads")
    p.add_argument("--unroll", type=int, default=None)
    p.add_argument("--limit", type=int, default=None,
                   help="max cuts considered per identification")
    p.add_argument("--max-nodes", type=int, default=40,
                   help="Optimal node guard (oversized -> n/a)")
    p.add_argument("--area-budget", type=float, default=2.0,
                   help="silicon budget for area rows (MAC units)")
    p.add_argument("--measure", action="store_true",
                   help="additionally execute each grid point's "
                        "selection (rewrite + run) and report the "
                        "measured speedup next to the estimate")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the identification memo AND the "
                        "persistent store (cold baseline; results are "
                        "identical, just slower)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable sweep record here")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write the flat per-point table here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines on stderr")
    p.add_argument("--cluster", type=int, default=None, metavar="N",
                   help="shard the warm phase across N local worker "
                        "processes through the leader/worker fabric "
                        "(results bit-identical to serial)")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="additionally accept remote 'repro worker "
                        "--connect' nodes on this address (use a "
                        "shared tcp:// or sqlite: --store-dir so "
                        "they reach the same artifacts)")
    _add_workers(p)
    _add_store(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "worker",
        help="join a running 'repro sweep --listen' leader and pull "
             "warm units until its queue drains")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="address of the leader to serve")
    p.add_argument("--name", default=None,
                   help="worker name in the leader's telemetry "
                        "(default: hostname-derived)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-unit progress lines on stderr")
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser(
        "speedup",
        help="measure end-to-end speedup by executing selected AFUs "
             "(bit-exactness enforced)")
    p.add_argument("--workloads", default="all",
                   help="comma-separated registry names, or 'all' "
                        "(default)")
    p.add_argument("--n", type=int, default=None,
                   help="run size for profiling AND measurement "
                        "(default: each workload's)")
    p.add_argument("--unroll", type=int, default=None,
                   help="loop unroll factor (Section 9 extension)")
    p.add_argument("--nin", type=int, default=4,
                   help="register-file read ports (default 4)")
    p.add_argument("--nout", type=int, default=2,
                   help="register-file write ports (default 2)")
    p.add_argument("--ninstr", type=int, default=16)
    p.add_argument("--limit", type=int, default=None,
                   help="max cuts considered per search")
    p.add_argument("--algo", choices=["iterative", "optimal", "clubbing",
                                      "maxmiso", "area"],
                   default="iterative")
    p.add_argument("--max-nodes", type=int, default=40,
                   help="node guard for --algo optimal")
    p.add_argument("--area-budget", type=float, default=2.0,
                   help="silicon budget in MAC units for --algo area "
                        "(default 2.0)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable rows here")
    _add_workers(p)
    _add_store(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser(
        "run",
        help="execute one workload (optionally post-rewrite) and print "
             "result, steps and wall time")
    p.add_argument("workload", help="registered workload name")
    p.add_argument("--n", type=int, default=None,
                   help="run size (default: workload's)")
    p.add_argument("--unroll", type=int, default=None,
                   help="loop unroll factor (Section 9 extension)")
    p.add_argument("--rewrite", action="store_true",
                   help="select custom instructions and execute the "
                        "ISE-rewritten program instead of the baseline")
    p.add_argument("--algo", choices=["iterative", "optimal", "clubbing",
                                      "maxmiso", "area"],
                   default="iterative",
                   help="selection algorithm for --rewrite")
    p.add_argument("--nin", type=int, default=4,
                   help="register-file read ports for --rewrite")
    p.add_argument("--nout", type=int, default=2,
                   help="register-file write ports for --rewrite")
    p.add_argument("--ninstr", type=int, default=16,
                   help="instruction budget for --rewrite")
    p.add_argument("--limit", type=int, default=None,
                   help="max cuts considered per search (--rewrite)")
    p.add_argument("--inputs", type=int, default=None, metavar="N",
                   help="batched mode: execute the workload over N "
                        "input lanes in one call (driver runs once; "
                        "every lane is verified bit-for-bit against a "
                        "golden reference lane)")
    p.add_argument("--batch-file", default=None, metavar="PATH",
                   help="batched mode with explicit lanes: a JSON list "
                        "of records {args: [...], arrays: {name: "
                        "[...]}, max_steps: int} executed in order")
    _add_store(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "check",
        help="statically verify a workload: baseline IR, selected "
             "cuts (independent checker) and the rewritten clone")
    p.add_argument("workload",
                   help="registered workload name, a comma-separated "
                        "list, or 'all'")
    p.add_argument("--n", type=int, default=None,
                   help="profiling run size (default: workload's)")
    p.add_argument("--unroll", type=int, default=None,
                   help="loop unroll factor (Section 9 extension)")
    p.add_argument("--nin", type=int, default=4,
                   help="register-file read ports (default 4)")
    p.add_argument("--nout", type=int, default=2,
                   help="register-file write ports (default 2)")
    p.add_argument("--ninstr", type=int, default=16,
                   help="instruction budget (default 16)")
    p.add_argument("--limit", type=int, default=None,
                   help="max cuts considered per search")
    p.add_argument("--algo", choices=["iterative", "optimal", "clubbing",
                                      "maxmiso", "area"],
                   default="iterative",
                   help="selection algorithm whose cuts are checked")
    p.add_argument("--max-nodes", type=int, default=40,
                   help="node guard for --algo optimal")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="machine-readable report: to PATH, or stdout "
                        "when no path is given")
    _add_workers(p)
    _add_store(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs through three "
             "backends, rewrite and batch, bit-identical or it fails")
    p.add_argument("--count", type=int, default=200,
                   help="programs per campaign/round (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; program i uses seed+i (default 0)")
    from .fuzz import SHAPES as _FUZZ_SHAPES

    p.add_argument("--shape", choices=list(_FUZZ_SHAPES), default=None,
                   help="pin one generator shape (default: round-robin "
                        "over all)")
    p.add_argument("--soak", action="store_true",
                   help="repeat rounds with advancing seeds until "
                        "interrupted (telemetry per round on stderr)")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="write failing cases (original, reduced "
                        "reproducer, report) under this directory")
    p.add_argument("--nin", type=int, default=4,
                   help="read ports for the selection phase (default 4)")
    p.add_argument("--nout", type=int, default=2,
                   help="write ports for the selection phase (default 2)")
    p.add_argument("--ninstr", type=int, default=8,
                   help="instruction budget for the selection phase "
                        "(default 8)")
    p.add_argument("--limit", type=int, default=None,
                   help="max cuts considered per search")
    p.add_argument("--json", action="store_true",
                   help="machine-readable campaign summary")
    _add_store(p)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak: a store-backed cluster "
             "sweep under store/wire/worker faults, asserted "
             "bit-identical to the fault-free run")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-schedule seed (default 0); same seed, "
                        "same faults")
    p.add_argument("--cluster", type=int, default=2, metavar="N",
                   help="local worker processes for the chaos sweep "
                        "(default 2)")
    p.add_argument("--workloads", default="fir,crc32",
                   help="comma-separated registry names "
                        "(default fir,crc32)")
    p.add_argument("--ports", default="2x1,2x2,4x1,4x2",
                   help="comma-separated NINxNOUT pairs "
                        "(default 2x1,2x2,4x1,4x2)")
    p.add_argument("--ninstr", default="2",
                   help="comma-separated instruction budgets "
                        "(default 2)")
    p.add_argument("--algos", default="iterative,maxmiso",
                   help="comma-separated algorithms (default "
                        "iterative,maxmiso)")
    p.add_argument("--n", type=int, default=16,
                   help="profiling run size (default 16)")
    p.add_argument("--limit", type=int, default=100000,
                   help="max cuts considered per identification")
    p.add_argument("--server", choices=["restart", "down", "up"],
                   default="restart",
                   help="store-server profile: restart it mid-sweep "
                        "(retries must absorb the outage), leave it "
                        "down (degraded mode must kick in), or leave "
                        "it up (pure injected faults)")
    p.add_argument("--unit-attempts", type=int, default=4,
                   help="per-unit attempt cap before quarantine "
                        "(default 4)")
    p.add_argument("--unit-deadline", type=float, default=60.0,
                   help="seconds a unit may sit on one worker before "
                        "requeue (default 60)")
    p.add_argument("--deadline", type=float, default=600.0,
                   help="overall chaos-sweep deadline in seconds "
                        "(default 600)")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the soak's stores here (default: a "
                        "fresh temp dir)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines on stderr")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("afu", help="emit Verilog for selected AFUs")
    _add_common(p)
    _add_workers(p)
    p.add_argument("--ninstr", type=int, default=2)
    p.set_defaults(fn=cmd_afu)

    p = sub.add_parser(
        "cache",
        help="inspect or maintain the persistent artifact store")
    p.add_argument("action", choices=["stats", "clear", "gc"],
                   help="stats: entry/byte counts per artifact kind; "
                        "clear: drop everything; gc: drop old entries")
    p.add_argument("--max-age-days", type=float, default=30.0,
                   help="gc cutoff in days (default 30)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats output")
    p.add_argument("--store-dir", default=None, metavar="PATH",
                   help="store root (default: $REPRO_STORE, else "
                        "~/.cache/repro)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "store",
        help="run store services (serve: export a store over TCP "
             "for tcp:// clients and remote sweep workers)")
    p.add_argument("action", choices=["serve"],
                   help="serve: accept tcp:// store clients until "
                        "interrupted")
    p.add_argument("--listen", default="127.0.0.1:9723",
                   metavar="HOST:PORT",
                   help="bind address (default 127.0.0.1:9723; trusted "
                        "networks only — the protocol is unauthenticated)")
    p.add_argument("--store-dir", default=None, metavar="PATH",
                   help="backing store spec: a directory or "
                        "sqlite:PATH (default: $REPRO_STORE, else "
                        "~/.cache/repro)")
    p.set_defaults(fn=cmd_store)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

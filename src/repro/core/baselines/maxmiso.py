"""The *MaxMISO* baseline (Alippi et al., DATE 1999; paper ref. 13).

Partitions each DFG into **maximal single-output subgraphs**: a node joins
the subgraph of its consumers when *all* of its consumers lie in the same
subgraph and the node's value is not needed elsewhere (not live out of the
block).  Every MaxMISO therefore produces exactly one result, uses an
unbounded number of inputs, and the partition is unique — matching the
original linear-time formulation.

Selection keeps, among the MaxMISOs that contain only AFU-legal operations
and respect the *input* constraint, the ``Ninstr`` with the largest merit.
The output constraint is trivially satisfied (single output), which is why
this baseline cannot profit from extra write ports — one of the effects
Fig. 11 of the paper demonstrates.  Its other structural weakness is also
faithfully preserved: a profitable *small* cut buried inside a larger
MaxMISO (like M1 inside M2 in the paper's Fig. 3) is invisible when the
larger graph violates the input constraint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...hwmodel.latency import CostModel
from ...ir.dfg import DataFlowGraph
from ..cut import Constraints, Cut, evaluate_cut
from ..selection import SelectionResult, make_result


def maxmiso_partition(dfg: DataFlowGraph) -> List[List[int]]:
    """Partition the nodes of *dfg* into MaxMISOs.

    Returns a list of node-index lists.  Forbidden nodes (loads, stores,
    calls, supernodes) each form a degenerate singleton group that callers
    must filter out.
    """
    group: Dict[int, int] = {}
    groups: List[List[int]] = []

    # Node order is reverse topological (consumers first), so when node i
    # is processed every consumer already has a group.
    for i in range(dfg.n):
        node = dfg.nodes[i]
        succs = dfg.succs[i]
        mergeable = (
            not node.forbidden
            and not node.forced_out
            and len(succs) > 0
            and all(not dfg.nodes[s].forbidden for s in succs)
        )
        if mergeable:
            consumer_groups = {group[s] for s in succs}
            if len(consumer_groups) == 1:
                g = consumer_groups.pop()
                group[i] = g
                groups[g].append(i)
                continue
        # i roots a new MaxMISO (it is an output node of the partition).
        group[i] = len(groups)
        groups.append([i])

    return groups


def maxmiso_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: CostModel,
) -> List[Cut]:
    """Evaluate the legal MaxMISOs of one block under *constraints*.

    MaxMISOs violating the input-port constraint are dropped whole — the
    original algorithm has no way to shrink them (cf. Section 8 of the
    paper on adpcm-decode with two input ports).
    """
    cuts: List[Cut] = []
    for members in maxmiso_partition(dfg):
        if any(dfg.nodes[i].forbidden for i in members):
            continue
        cut = evaluate_cut(dfg, members, model)
        if cut.num_inputs > constraints.nin:
            continue
        cuts.append(cut)
    return cuts


def select_maxmiso(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> SelectionResult:
    """Run MaxMISO over all blocks; keep the best ``Ninstr`` subgraphs."""
    model = model or CostModel()
    candidates: List[Cut] = []
    for dfg in dfgs:
        candidates.extend(maxmiso_cuts(dfg, constraints, model))
    candidates = [c for c in candidates if c.merit > 0]
    candidates.sort(key=lambda c: -c.merit)
    chosen = candidates[:constraints.ninstr]
    return make_result(
        algorithm="MaxMISO",
        constraints=constraints,
        cuts=chosen,
        dfgs=dfgs,
        model=model,
    )

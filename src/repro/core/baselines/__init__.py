"""State-of-the-art baselines the paper compares against (Section 7)."""

from .clubbing import clubs_of_block, select_clubbing
from .maxmiso import maxmiso_cuts, maxmiso_partition, select_maxmiso

__all__ = [
    "select_clubbing", "clubs_of_block",
    "select_maxmiso", "maxmiso_cuts", "maxmiso_partition",
]

"""The *Clubbing* baseline (Baleani et al., CODES 2002; paper ref. 16).

A greedy, linear-complexity clustering: instructions are scanned in program
order (which is a topological order of the DFG) and each legal operation is
appended to the currently growing "club" as long as the club remains
feasible — within the input/output port limits, convex and made of
AFU-legal operations.  When an operation cannot join, the club is closed
and a new one starts.  Selection then simply keeps the ``Ninstr`` clubs
with the largest merit.

This reproduces the baseline's key weakness the paper highlights: clubs are
grown through one greedy pass, so they stay small and connected-ish, and
the algorithm cannot trade a small early cluster for a larger later one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...hwmodel.latency import CostModel
from ...ir.dfg import DataFlowGraph
from ..cut import Constraints, Cut, cut_is_feasible, evaluate_cut
from ..selection import SelectionResult, make_result


def clubs_of_block(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: CostModel,
) -> List[Cut]:
    """Partition the legal operations of one block into clubs."""
    # Program order == descending node index (producers have larger
    # indices in reverse topological numbering, and the numbering is the
    # reverse of a producers-first order).  Scan producers-first so the
    # "current club" grows downstream, as in the original formulation.
    order = list(range(dfg.n - 1, -1, -1))
    clubs: List[List[int]] = []
    current: List[int] = []

    for i in order:
        if dfg.nodes[i].forbidden:
            if current:
                clubs.append(current)
                current = []
            continue
        candidate = current + [i]
        if cut_is_feasible(dfg, candidate, constraints):
            current = candidate
        else:
            if current:
                clubs.append(current)
            current = [i]
            if not cut_is_feasible(dfg, current, constraints):
                # A single operation violating the ports (e.g. a 3-input
                # select with Nin=2) stays in software.
                current = []
    if current:
        clubs.append(current)

    return [evaluate_cut(dfg, club, model) for club in clubs]


def select_clubbing(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> SelectionResult:
    """Run Clubbing over all blocks; keep the best ``Ninstr`` clubs."""
    model = model or CostModel()
    candidates: List[Cut] = []
    for dfg in dfgs:
        candidates.extend(clubs_of_block(dfg, constraints, model))
    candidates = [c for c in candidates if c.merit > 0]
    candidates.sort(key=lambda c: -c.merit)
    chosen = candidates[:constraints.ninstr]
    return make_result(
        algorithm="Clubbing",
        constraints=constraints,
        cuts=chosen,
        dfgs=dfgs,
        model=model,
    )
